//! Disambiguated updates beyond route-maps: inserting an ACL entry and a
//! prefix-list entry (the latter is the paper's §7 future work).
//!
//! ```sh
//! cargo run --example acl_update
//! ```

use clarify::core::{
    insert_acl_with_oracle, insert_prefix_entry_with_oracle, AclIntentOracle, PlacementStrategy,
    PrefixIntentOracle,
};
use clarify::llm::{Pipeline, PipelineOutcome, SemanticBackend};
use clarify::netconfig::{insert_acl_entry, insert_prefix_list_entry, Config, PrefixListEntry};

fn main() {
    // ---- ACL update ---------------------------------------------------
    let base = Config::parse(
        "ip access-list extended EDGE\n \
         deny tcp any any eq 22\n \
         permit tcp 10.0.0.0/8 any\n \
         deny udp any any range 8000 8100\n \
         permit ip any any\n",
    )
    .expect("base config parses");
    println!("--- existing ACL ---\n{}", base.acl("EDGE").expect("acl"));

    let prompt = "Write an access-list rule that permits tcp packets from host 10.9.9.9 to any.";
    println!("--- intent ---\n{prompt}\n");

    let mut pipeline = Pipeline::new(SemanticBackend::new(), 3);
    let PipelineOutcome::Acl {
        entry, llm_calls, ..
    } = pipeline.synthesize(prompt).expect("pipeline runs")
    else {
        panic!("expected an ACL outcome");
    };
    println!("--- synthesized entry ({llm_calls} LLM calls) ---\n{entry}\n");

    // The user wants the bastion host exempt from the ssh block: intent =
    // insert at the very top. The oracle plays that user.
    let intended_cfg = insert_acl_entry(&base, "EDGE", entry.clone(), 0).expect("insert");
    let intended = intended_cfg.acl("EDGE").expect("acl").clone();
    let mut oracle = AclIntentOracle {
        intended: &intended,
    };
    let result = insert_acl_with_oracle(
        &base,
        "EDGE",
        &entry,
        PlacementStrategy::BinarySearch,
        &mut oracle,
    )
    .expect("disambiguation");
    println!(
        "entry overlaps {} existing rules; {} question(s) asked:",
        result.overlap_candidates, result.questions
    );
    for (q, answer) in &result.transcript {
        println!("\n{q}\n  -> user chose {answer:?}");
    }
    println!(
        "\n--- updated ACL (entry at position {}) ---\n{}",
        result.position,
        result.config.acl("EDGE").expect("acl")
    );

    // ---- prefix-list update (paper §7 future work) ---------------------
    let base = Config::parse(
        "ip prefix-list CUSTOMERS seq 5 deny 10.1.0.0/16 le 24\n\
         ip prefix-list CUSTOMERS seq 10 permit 10.0.0.0/8 le 24\n",
    )
    .expect("prefix config parses");
    println!(
        "\n--- existing prefix list ---\n{}",
        base.prefix_lists["CUSTOMERS"]
    );

    // The new entry re-opens half of the denied block.
    let entry = PrefixListEntry {
        seq: 0,
        action: clarify::netconfig::Action::Permit,
        range: "10.1.128.0/17 le 24".parse().expect("range"),
    };
    println!("new entry: permit {}\n", entry.range);
    let intended_cfg =
        insert_prefix_list_entry(&base, "CUSTOMERS", entry.clone(), 0).expect("insert");
    let intended = intended_cfg.prefix_lists["CUSTOMERS"].clone();
    let mut oracle = PrefixIntentOracle {
        intended: &intended,
    };
    let result = insert_prefix_entry_with_oracle(
        &base,
        "CUSTOMERS",
        &entry,
        PlacementStrategy::BinarySearch,
        &mut oracle,
    )
    .expect("disambiguation");
    for (q, answer) in &result.transcript {
        println!("{q}\n  -> user chose {answer:?}\n");
    }
    println!(
        "--- updated prefix list (entry at position {}) ---\n{}",
        result.position, result.config.prefix_lists["CUSTOMERS"]
    );
}
