//! Build the Figure 3 datacenter's routing policies from English intents,
//! then verify the five global policies on a simulated BGP network.
//!
//! ```sh
//! cargo run --example incremental_datacenter
//! ```
//!
//! This is the §5 evaluation as an application: each router's route-maps
//! are synthesized stanza by stanza through the full Clarify loop
//! (classify → synthesize → verify → disambiguate → insert), and the
//! resulting configurations are loaded into the BGP simulator.

use clarify_bench::figure3;

fn main() {
    println!("synthesizing router M (management aggregation)...");
    let (m_cfg, m) = figure3::synthesize_router(&figure3::plan_m()).expect("M synthesizes");
    println!(
        "  {} route-maps, {} stanzas, {} questions answered",
        m.route_maps, m.synthesis_calls, m.disambiguations
    );

    println!("synthesizing border router R1...");
    let (r1_cfg, r1) = figure3::synthesize_router(&figure3::plan_border(
        "R1",
        "10.3.128.0/17",
        "65001:10",
        "65000:20",
    ))
    .expect("R1 synthesizes");
    println!(
        "  {} route-maps, {} stanzas, {} questions answered",
        r1.route_maps, r1.synthesis_calls, r1.disambiguations
    );

    println!("synthesizing border router R2...");
    let (r2_cfg, r2) = figure3::synthesize_router(&figure3::plan_border(
        "R2",
        "10.4.128.0/17",
        "65002:10",
        "65000:21",
    ))
    .expect("R2 synthesizes");
    println!(
        "  {} route-maps, {} stanzas, {} questions answered",
        r2.route_maps, r2.synthesis_calls, r2.disambiguations
    );

    println!("\n--- M's synthesized configuration ---\n{m_cfg}");

    println!("converging the BGP network...");
    let net = figure3::build_network(m_cfg, r1_cfg, r2_cfg).expect("network converges");

    println!("\n--- global policy checks ---");
    for (desc, ok) in figure3::check_policies(&net) {
        println!("[{}] {desc}", if ok { "PASS" } else { "FAIL" });
    }

    println!("\n--- RIBs ---");
    for router in ["M", "R1", "DC1", "MGMT", "ISP1"] {
        println!("{router}:");
        if let Some(rib) = net.rib(router) {
            for (p, e) in rib {
                println!(
                    "  {p:<18} via {:<5} lp {:<4} path {}",
                    e.learned_from.as_deref().unwrap_or("local"),
                    e.route.local_pref,
                    e.route.as_path
                );
            }
        }
    }
}
