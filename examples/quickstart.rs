//! Quickstart: one English sentence in, a verified and correctly placed
//! route-map stanza out.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use clarify::core::{
    AddStanzaOutcome, ClarifySession, Disambiguator, IntentOracle, PlacementStrategy,
};
use clarify::llm::SemanticBackend;
use clarify::netconfig::Config;

fn main() {
    // The device's existing policy: a route-map with one deny stanza.
    let base = Config::parse(
        "ip prefix-list OLD seq 5 permit 100.0.0.0/8 le 32\n\
         route-map EDGE deny 10\n match ip address prefix-list OLD\n",
    )
    .expect("base config parses");

    // What the user ultimately wants (here played by an oracle; a real
    // deployment asks the actual user the same questions interactively).
    let intended = Config::parse(
        "ip prefix-list OLD seq 5 permit 100.0.0.0/8 le 32\n\
         ip prefix-list NEW seq 5 permit 100.0.0.0/16 le 23\n\
         route-map EDGE permit 10\n match ip address prefix-list NEW\n set metric 55\n\
         route-map EDGE deny 20\n match ip address prefix-list OLD\n",
    )
    .expect("intended config parses");
    let mut user = IntentOracle::new(&intended, "EDGE");

    // The Clarify session: simulated LLM + binary-search disambiguator.
    let mut session = ClarifySession::new(
        SemanticBackend::new(),
        3,
        Disambiguator::new(PlacementStrategy::BinarySearch),
    );

    let prompt = "Write a route-map stanza that permits routes containing the prefix \
                  100.0.0.0/16 with mask length less than or equal to 23. \
                  Their MED value should be set to 55.";
    println!("prompt: {prompt}\n");

    match session
        .add_stanza(&base, "EDGE", prompt, &mut user)
        .expect("session runs")
    {
        AddStanzaOutcome::Inserted {
            config,
            result,
            llm_calls,
        } => {
            println!(
                "inserted at position {} after {} LLM calls and {} disambiguation question(s)\n",
                result.position, llm_calls, result.questions
            );
            for (i, (q, answer)) in result.transcript.iter().enumerate() {
                println!(
                    "--- question {} (user answered {answer:?}) ---\n{q}\n",
                    i + 1
                );
            }
            println!("--- final configuration ---\n{config}");
        }
        AddStanzaOutcome::Punted { reason, .. } => {
            println!("the LLM could not produce a verified stanza: {reason}");
        }
    }
}
