//! Audit a configuration population for overlapping and conflicting rules
//! — the §3 measurement as a reusable tool.
//!
//! ```sh
//! cargo run --release --example campus_audit            # full 11,088 ACLs
//! cargo run --example campus_audit -- --seed 7 --top 5
//! ```

use clarify::analysis::{acl_overlaps, route_map_overlaps, RouteSpace};
use clarify::workload::{campus, AclCensus, RouteMapCensus};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let top: usize = arg("--top").and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("generating the campus population (seed {seed})...");
    let w = campus(seed);

    println!("auditing {} ACLs...", w.acls.len());
    let mut reports: Vec<(usize, _)> = w
        .acls
        .iter()
        .enumerate()
        .map(|(i, acl)| (i, acl_overlaps(acl)))
        .collect();
    let census = AclCensus::of(reports.iter().map(|(_, r)| r));

    println!("\n--- ACL census ---");
    println!(
        "ACLs with conflicting overlaps: {:.1}%",
        100.0 * census.conflict_fraction()
    );
    println!(
        "  of those, more than 20 conflicts: {:.1}%",
        100.0 * census.gt20_of_conflicting()
    );
    println!(
        "non-trivial (after subset filtering): {:.1}%",
        100.0 * census.nontrivial_fraction()
    );
    println!(
        "  of those, more than 20: {:.1}%",
        100.0 * census.gt20_of_nontrivial()
    );

    reports.sort_by_key(|(_, r)| std::cmp::Reverse(r.count()));
    println!("\n--- top {top} ACLs by overlapping pairs ---");
    for (i, r) in reports.iter().take(top) {
        let acl = &w.acls[*i];
        println!(
            "{}: {} rules, {} overlapping pairs ({} conflicting, {} non-trivial)",
            acl.name,
            r.num_rules,
            r.count(),
            r.conflict_count(),
            r.nontrivial_conflict_count()
        );
        // Show the first conflicting pair as a concrete finding.
        if let Some(p) = r.pairs.iter().find(|p| p.conflicting) {
            println!("  e.g. rule {} vs rule {}:", p.i, p.j);
            println!("   {}", acl.entries[p.i]);
            println!("   {}", acl.entries[p.j]);
        }
    }

    println!("\nauditing {} route-maps...", w.route_maps.len());
    let mut census = RouteMapCensus::default();
    for (cfg, name) in &w.route_maps {
        let rm = cfg.route_map(name).expect("map exists").clone();
        let mut space = RouteSpace::new(&[cfg]).expect("space");
        let r = route_map_overlaps(&mut space, cfg, &rm).expect("analysis");
        if r.count() > 0 {
            println!(
                "  {name}: {} overlapping stanza pairs ({} conflicting)",
                r.count(),
                r.pairs.iter().filter(|p| p.conflicting).count()
            );
        }
        census.add(&r);
    }
    println!(
        "route-maps with overlapping stanzas: {} of {}",
        census.with_overlap, census.total
    );
}
