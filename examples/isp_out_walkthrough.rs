//! The paper's §2 walkthrough, optionally interactive.
//!
//! ```sh
//! cargo run --example isp_out_walkthrough                # auto-answers
//! cargo run --example isp_out_walkthrough -- --interactive
//! ```
//!
//! In interactive mode you play the user: the disambiguator shows each
//! differential route with its two possible behaviours and you type `1`
//! or `2`, exactly the exchange in §2.2 of the paper.

use std::io::Write;

use clarify::core::{Choice, Disambiguator, FnOracle, PlacementStrategy};
use clarify::llm::{Pipeline, PipelineOutcome, SemanticBackend};
use clarify::netconfig::Config;

const ISP_OUT: &str = "\
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
";

const PROMPT: &str = "Write a route-map stanza that permits routes containing the prefix \
100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. \
Their MED value should be set to 55.";

fn main() {
    let interactive = std::env::args().any(|a| a == "--interactive");
    let base = Config::parse(ISP_OUT).expect("paper config parses");

    println!("--- existing route-map ---\n{ISP_OUT}");
    println!("--- your intent ---\n{PROMPT}\n");

    let mut pipeline = Pipeline::new(SemanticBackend::new(), 3);
    let PipelineOutcome::RouteMap {
        snippet,
        map_name,
        spec,
        ..
    } = pipeline.synthesize(PROMPT).expect("pipeline runs")
    else {
        panic!("expected a route-map outcome");
    };
    println!("--- synthesized and verified snippet ---\n{snippet}");
    println!("--- extracted specification (please confirm it matches your intent) ---");
    println!("{}\n", spec.to_json());

    let mut ask = FnOracle(move |q: &clarify::core::DisambiguationQuestion| {
        println!(
            "The new stanza interacts with existing stanza {}.",
            q.pivot_seq
        );
        println!("For the following input route, which behaviour do you want?\n\n{q}\n");
        if interactive {
            loop {
                print!("your choice [1/2]: ");
                std::io::stdout().flush().expect("flush");
                let mut line = String::new();
                if std::io::stdin().read_line(&mut line).is_err() {
                    return Choice::First;
                }
                match line.trim() {
                    "1" => return Choice::First,
                    "2" => return Choice::Second,
                    _ => println!("please answer 1 or 2"),
                }
            }
        } else {
            println!("(auto mode: choosing OPTION 1)\n");
            Choice::First
        }
    });

    let result = Disambiguator::new(PlacementStrategy::BinarySearch)
        .insert(&base, "ISP_OUT", &snippet, &map_name, &mut ask)
        .expect("disambiguation succeeds");

    println!(
        "--- disambiguation complete: {} question(s), stanza placed at position {} ---\n",
        result.questions, result.position
    );
    println!("--- final configuration ---\n{}", result.config);
}
