//! Random structural edits over a [`Config`], for differential testing of
//! the incremental linter.
//!
//! [`apply_random_edit`] mutates the config in place — inserting, deleting,
//! or rewriting one stanza/entry, or adding/removing a whole object — and
//! returns a one-line description of what it did (shown in shrunk failure
//! reports). Every decision is drawn from the [`Source`] choice stream, so
//! edit sequences replay and shrink exactly like any other generated input:
//! the all-zeros stream maps to the first (simplest) operation, an
//! action-flip on the first entry of the first object.
//!
//! The operation mix is chosen to exercise the incremental linter's
//! invalidation paths specifically:
//!
//! - in-place mutation of one object (only that object should re-lint);
//! - edits to ancillary lists that keep the regex-pattern text unchanged
//!   (action flips), which must dirty dependent route-maps *without*
//!   rebuilding the atom environment;
//! - insertion/deletion of whole objects (added / removed cache keys);
//! - deletion of a *referenced* prefix list (dangling refs: the dependent
//!   map turns broken and must drop out of the symbolic pass identically
//!   in both the full and incremental paths).

use std::net::Ipv4Addr;

use clarify_automata::Regex;
use clarify_netconfig::{
    Acl, AclEntry, Action, AddrMatch, AsPathList, AsPathListEntry, Config, PrefixList,
    PrefixListEntry, RouteMapMatch, RouteMapStanza,
};
use clarify_nettypes::{PortRange, Prefix, PrefixRange, Protocol};
use clarify_rng::Rng;

use crate::Source;

/// Applies one random structural edit to `cfg`, returning a description.
///
/// The config is always left in a state the linter accepts (objects may
/// become empty or dangle references — both are valid inputs, and the
/// incremental result must still match a cold full lint byte for byte).
pub fn apply_random_edit(g: &mut Source, cfg: &mut Config) -> String {
    // Draw an operation; not every operation applies to every config
    // (can't delete from an empty map), so fall through a bounded number
    // of times before taking the always-applicable fallback.
    for _ in 0..8 {
        let op = g.gen_range(0usize..13);
        let done = match op {
            0 => flip_acl_entry(g, cfg),
            1 => flip_prefix_entry(g, cfg),
            2 => flip_stanza_action(g, cfg),
            3 => flip_list_entry(g, cfg),
            4 => mutate_acl_entry(g, cfg),
            5 => mutate_prefix_entry(g, cfg),
            6 => insert_acl_entry(g, cfg),
            7 => insert_prefix_entry(g, cfg),
            8 => insert_stanza(g, cfg),
            9 => delete_entry(g, cfg),
            10 => delete_object(g, cfg),
            11 => Some(add_prefix_list(g, cfg)),
            12 => Some(grow_as_path_list(g, cfg)),
            _ => unreachable!(),
        };
        if let Some(desc) = done {
            return desc;
        }
    }
    add_prefix_list(g, cfg)
}

fn pick_key<T>(g: &mut Source, map: &std::collections::BTreeMap<String, T>) -> Option<String> {
    if map.is_empty() {
        return None;
    }
    let i = g.gen_range(0..map.len());
    map.keys().nth(i).cloned()
}

fn flip_acl_entry(g: &mut Source, cfg: &mut Config) -> Option<String> {
    let name = pick_key(g, &cfg.acls)?;
    let acl = cfg.acls.get_mut(&name).unwrap();
    if acl.entries.is_empty() {
        return None;
    }
    let i = g.gen_range(0..acl.entries.len());
    let e = &mut acl.entries[i];
    e.action = flip(e.action);
    Some(format!("flip action of acl {name} entry {i}"))
}

fn flip_prefix_entry(g: &mut Source, cfg: &mut Config) -> Option<String> {
    let name = pick_key(g, &cfg.prefix_lists)?;
    let pl = cfg.prefix_lists.get_mut(&name).unwrap();
    if pl.entries.is_empty() {
        return None;
    }
    let i = g.gen_range(0..pl.entries.len());
    let e = &mut pl.entries[i];
    e.action = flip(e.action);
    Some(format!("flip action of prefix-list {name} seq {}", e.seq))
}

fn flip_stanza_action(g: &mut Source, cfg: &mut Config) -> Option<String> {
    let name = pick_key(g, &cfg.route_maps)?;
    let map = cfg.route_maps.get_mut(&name).unwrap();
    if map.stanzas.is_empty() {
        return None;
    }
    let i = g.gen_range(0..map.stanzas.len());
    let s = &mut map.stanzas[i];
    s.action = flip(s.action);
    Some(format!("flip action of route-map {name} seq {}", s.seq))
}

/// Flips one as-path / community list entry's action. The regex text is
/// untouched, so the atom environment is stable — this must dirty exactly
/// the route-maps that reference the list.
fn flip_list_entry(g: &mut Source, cfg: &mut Config) -> Option<String> {
    let as_paths = !cfg.as_path_lists.is_empty();
    let comms = !cfg.community_lists.is_empty();
    let use_as_path = match (as_paths, comms) {
        (false, false) => return None,
        (true, false) => true,
        (false, true) => false,
        (true, true) => g.gen_range(0usize..2) == 0,
    };
    if use_as_path {
        let name = pick_key(g, &cfg.as_path_lists)?;
        let list = cfg.as_path_lists.get_mut(&name).unwrap();
        if list.entries.is_empty() {
            return None;
        }
        let i = g.gen_range(0..list.entries.len());
        let e = &mut list.entries[i];
        e.action = flip(e.action);
        Some(format!("flip action of as-path list {name} entry {i}"))
    } else {
        let name = pick_key(g, &cfg.community_lists)?;
        let list = cfg.community_lists.get_mut(&name).unwrap();
        if list.entries.is_empty() {
            return None;
        }
        let i = g.gen_range(0..list.entries.len());
        let e = &mut list.entries[i];
        e.action = flip(e.action);
        Some(format!("flip action of community list {name} entry {i}"))
    }
}

fn mutate_acl_entry(g: &mut Source, cfg: &mut Config) -> Option<String> {
    let name = pick_key(g, &cfg.acls)?;
    let acl = cfg.acls.get_mut(&name).unwrap();
    if acl.entries.is_empty() {
        return None;
    }
    let i = g.gen_range(0..acl.entries.len());
    let port = g.gen_range(0u16..1024);
    acl.entries[i].dst_ports = PortRange::new(port, port.saturating_add(g.gen_range(0u16..400)));
    Some(format!("retarget dst ports of acl {name} entry {i}"))
}

fn mutate_prefix_entry(g: &mut Source, cfg: &mut Config) -> Option<String> {
    let name = pick_key(g, &cfg.prefix_lists)?;
    let pl = cfg.prefix_lists.get_mut(&name).unwrap();
    if pl.entries.is_empty() {
        return None;
    }
    let i = g.gen_range(0..pl.entries.len());
    let e = &mut pl.entries[i];
    e.range = random_range(g);
    Some(format!("rewrite range of prefix-list {name} seq {}", e.seq))
}

fn insert_acl_entry(g: &mut Source, cfg: &mut Config) -> Option<String> {
    let name = pick_key(g, &cfg.acls)?;
    let acl = cfg.acls.get_mut(&name).unwrap();
    let pos = g.gen_range(0..=acl.entries.len());
    acl.entries.insert(pos, random_acl_entry(g));
    Some(format!("insert entry at {pos} of acl {name}"))
}

fn insert_prefix_entry(g: &mut Source, cfg: &mut Config) -> Option<String> {
    let name = pick_key(g, &cfg.prefix_lists)?;
    let pl = cfg.prefix_lists.get_mut(&name).unwrap();
    let seq = pl.entries.iter().map(|e| e.seq).max().unwrap_or(0) + 5;
    pl.entries.push(PrefixListEntry {
        seq,
        action: random_action(g),
        range: random_range(g),
    });
    Some(format!("append seq {seq} to prefix-list {name}"))
}

/// Appends a stanza to a route-map: either match-all, or matching one of
/// the config's prefix lists (possibly one "owned" by a different map —
/// cross-object dependencies are the interesting case), or a dangling
/// reference that turns the map broken.
fn insert_stanza(g: &mut Source, cfg: &mut Config) -> Option<String> {
    let name = pick_key(g, &cfg.route_maps)?;
    let kind = g.gen_range(0usize..3);
    let matches = match kind {
        0 => Vec::new(),
        1 => match pick_key(g, &cfg.prefix_lists) {
            Some(pl) => vec![RouteMapMatch::PrefixList(vec![pl])],
            None => Vec::new(),
        },
        _ => vec![RouteMapMatch::PrefixList(vec!["NO_SUCH_LIST".to_string()])],
    };
    let map = cfg.route_maps.get_mut(&name).unwrap();
    let seq = map.stanzas.iter().map(|s| s.seq).max().unwrap_or(0) + 10;
    let action = random_action(g);
    map.stanzas.push(RouteMapStanza {
        seq,
        action,
        matches,
        sets: Vec::new(),
    });
    Some(format!("append seq {seq} to route-map {name}"))
}

/// Deletes one entry/stanza from some object (never the last one, so the
/// object itself survives; whole-object removal is `delete_object`).
fn delete_entry(g: &mut Source, cfg: &mut Config) -> Option<String> {
    match g.gen_range(0usize..3) {
        0 => {
            let name = pick_key(g, &cfg.acls)?;
            let acl = cfg.acls.get_mut(&name).unwrap();
            if acl.entries.len() < 2 {
                return None;
            }
            let i = g.gen_range(0..acl.entries.len());
            acl.entries.remove(i);
            Some(format!("delete entry {i} of acl {name}"))
        }
        1 => {
            let name = pick_key(g, &cfg.prefix_lists)?;
            let pl = cfg.prefix_lists.get_mut(&name).unwrap();
            if pl.entries.len() < 2 {
                return None;
            }
            let i = g.gen_range(0..pl.entries.len());
            let seq = pl.entries.remove(i).seq;
            Some(format!("delete seq {seq} of prefix-list {name}"))
        }
        _ => {
            let name = pick_key(g, &cfg.route_maps)?;
            let map = cfg.route_maps.get_mut(&name).unwrap();
            if map.stanzas.len() < 2 {
                return None;
            }
            let i = g.gen_range(0..map.stanzas.len());
            let seq = map.stanzas.remove(i).seq;
            Some(format!("delete seq {seq} of route-map {name}"))
        }
    }
}

/// Removes a whole object. Removing a prefix list that a route-map still
/// references leaves dangling refs — a legal config the linter reports.
fn delete_object(g: &mut Source, cfg: &mut Config) -> Option<String> {
    match g.gen_range(0usize..3) {
        0 => {
            let name = pick_key(g, &cfg.acls)?;
            cfg.acls.remove(&name);
            Some(format!("delete acl {name}"))
        }
        1 => {
            let name = pick_key(g, &cfg.prefix_lists)?;
            cfg.prefix_lists.remove(&name);
            Some(format!("delete prefix-list {name}"))
        }
        _ => {
            let name = pick_key(g, &cfg.route_maps)?;
            cfg.route_maps.remove(&name);
            Some(format!("delete route-map {name}"))
        }
    }
}

/// Always applicable: adds (or replaces) a small generated object.
fn add_prefix_list(g: &mut Source, cfg: &mut Config) -> String {
    let id = g.gen_range(0u64..8);
    let name = format!("GEN_PL_{id}");
    let n = g.gen_range(1usize..4);
    let entries = (0..n)
        .map(|i| PrefixListEntry {
            seq: (i as u32 + 1) * 5,
            action: random_action(g),
            range: random_range(g),
        })
        .collect();
    let verb = if cfg.prefix_lists.contains_key(&name) {
        "replace"
    } else {
        "add"
    };
    cfg.prefix_lists.insert(
        name.clone(),
        PrefixList {
            name: name.clone(),
            entries,
        },
    );
    format!("{verb} prefix-list {name}")
}

/// Appends an entry with a (possibly new) regex pattern to an as-path
/// list, creating the list if the config has none. A pattern the config
/// has never seen changes the *atom environment* — the incremental linter
/// must respond by rebuilding the route space and dirtying every
/// route-map, and the result must still match a cold full lint.
fn grow_as_path_list(g: &mut Source, cfg: &mut Config) -> String {
    const POOL: [&str; 4] = ["_32$", "^100_", "_200_", "^65000_"];
    let pattern = POOL[g.gen_range(0..POOL.len())];
    let entry = AsPathListEntry {
        action: random_action(g),
        regex: Regex::parse(pattern).expect("pool pattern parses"),
    };
    let name = match pick_key(g, &cfg.as_path_lists) {
        Some(n) => n,
        None => {
            let n = "GEN_PATHS".to_string();
            cfg.as_path_lists.insert(
                n.clone(),
                AsPathList {
                    name: n.clone(),
                    entries: Vec::new(),
                },
            );
            n
        }
    };
    let list = cfg.as_path_lists.get_mut(&name).unwrap();
    list.entries.push(entry);
    format!("append {pattern} to as-path list {name}")
}

/// Adds (or replaces) a small generated ACL; used by callers that want a
/// whole-object insertion on the packet side too.
pub fn add_acl(g: &mut Source, cfg: &mut Config) -> String {
    let id = g.gen_range(0u64..8);
    let name = format!("GEN_ACL_{id}");
    let n = g.gen_range(1usize..4);
    let entries = (0..n).map(|_| random_acl_entry(g)).collect();
    let verb = if cfg.acls.contains_key(&name) {
        "replace"
    } else {
        "add"
    };
    cfg.acls.insert(
        name.clone(),
        Acl {
            name: name.clone(),
            entries,
        },
    );
    format!("{verb} acl {name}")
}

fn flip(a: Action) -> Action {
    match a {
        Action::Permit => Action::Deny,
        Action::Deny => Action::Permit,
    }
}

fn random_action(g: &mut Source) -> Action {
    if g.gen_range(0usize..2) == 0 {
        Action::Permit
    } else {
        Action::Deny
    }
}

fn random_range(g: &mut Source) -> PrefixRange {
    let a = g.gen_range(10u8..30);
    let b = g.gen_range(0u8..=255);
    let len = g.gen_range(8u8..=24);
    let prefix = Prefix::new(Ipv4Addr::new(a, b, 0, 0), len);
    let max = g.gen_range(len..=32);
    PrefixRange {
        prefix,
        min_len: len,
        max_len: max,
    }
}

fn random_acl_entry(g: &mut Source) -> AclEntry {
    let proto = if g.gen_range(0usize..2) == 0 {
        Protocol::Tcp
    } else {
        Protocol::Udp
    };
    let src = Prefix::new(
        Ipv4Addr::new(10, g.gen_range(0u8..=255), 0, 0),
        g.gen_range(8u8..=24),
    );
    let port = g.gen_range(0u16..1024);
    AclEntry {
        action: random_action(g),
        protocol: proto,
        src: AddrMatch::Net(src),
        src_ports: PortRange::ANY,
        dst: AddrMatch::Any,
        dst_ports: PortRange::new(port, port.saturating_add(g.gen_range(0u16..400))),
    }
}
