//! A minimal, dependency-free property-testing harness and micro-bench
//! runner for the clarify workspace.
//!
//! # Property testing
//!
//! Properties are written with the [`property!`] macro. Each argument is
//! drawn from a *generator* — any `Fn(&mut Source) -> T` — and the body
//! runs once per case with standard `assert!`-style macros:
//!
//! ```
//! use clarify_testkit::{gens, property, prop_assert, Rng, Source};
//!
//! fn arb_len(g: &mut Source) -> usize {
//!     g.gen_range(0usize..10)
//! }
//!
//! property! {
//!     fn vectors_have_their_length(n in arb_len, fill in gens::ints(0u8..=9)) {
//!         prop_assert!(vec![fill; n].len() == n);
//!     }
//! }
//! ```
//!
//! The harness draws every random decision from a recorded stream of
//! `u64` *choices* ([`Source`]). On failure it greedily shrinks that
//! stream — truncating it and zeroing / halving / decrementing individual
//! choices — and re-runs the property until no smaller stream still fails.
//! Because generators map the all-zeros stream to their simplest value
//! (ranges collapse to their lower bound, lengths to their minimum), this
//! shrinks composite inputs without any per-type shrinker. The final
//! report names the failing case seed (replayable via `CLARIFY_PROP_SEED`)
//! and the shrunk input.
//!
//! Runs are fully deterministic: the base seed is a fixed constant unless
//! `CLARIFY_PROP_SEED` overrides it, so CI failures reproduce locally
//! byte-for-byte.
//!
//! # Micro-benches
//!
//! The [`mod@bench`] module exposes a Criterion-shaped API (`Criterion`,
//! `benchmark_group`, `bench_function`, `criterion_group!`,
//! `criterion_main!`) backed by plain `std::time::Instant` timing, so the
//! workspace's benches build and run with zero external dependencies.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};

pub use clarify_rng::{Rng, RngCore, SplitMix64, StdRng};

pub mod bench;
pub mod edits;
pub mod gens;

/// Default number of cases per property (override per-property with
/// `cases N`, or globally with the `CLARIFY_PROP_CASES` env var).
pub const DEFAULT_CASES: u32 = 256;

const SHRINK_BUDGET: usize = 768;

/// The stream of random choices a property draws from.
///
/// In *record* mode (normal generation) every `u64` comes from a seeded
/// [`StdRng`] and is logged. In *replay* mode (shrinking) the stream is a
/// fixed buffer; draws past its end return 0, which by construction maps
/// to each generator's simplest value.
pub struct Source {
    mode: Mode,
}

enum Mode {
    Record { rng: StdRng, choices: Vec<u64> },
    Replay { data: Vec<u64>, pos: usize },
}

impl Source {
    /// A recording source seeded with `seed`.
    pub fn recording(seed: u64) -> Source {
        Source {
            mode: Mode::Record {
                rng: StdRng::seed_from_u64(seed),
                choices: Vec::new(),
            },
        }
    }

    /// A replaying source over a fixed choice buffer.
    pub fn replaying(data: Vec<u64>) -> Source {
        Source {
            mode: Mode::Replay { data, pos: 0 },
        }
    }

    fn choices(&self) -> &[u64] {
        match &self.mode {
            Mode::Record { choices, .. } => choices,
            Mode::Replay { data, .. } => data,
        }
    }

    /// Generates a `Vec` whose length is drawn from `[min, max]` and whose
    /// items come from `item`. Shrinks toward `min` elements.
    pub fn vec<T>(
        &mut self,
        min: usize,
        max: usize,
        mut item: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let n = self.gen_range(min..=max);
        (0..n).map(|_| item(self)).collect()
    }

    /// A string of up to `max_len` printable ASCII characters (the
    /// `[ -~]{0,N}` pattern), optionally extended with `extra` characters.
    pub fn ascii(&mut self, max_len: usize, extra: &[char]) -> String {
        let n = self.gen_range(0..=max_len);
        (0..n)
            .map(|_| {
                let printable = ('~' as usize - ' ' as usize) + 1;
                let k = self.gen_range(0..printable + extra.len());
                if k < printable {
                    (b' ' + k as u8) as char
                } else {
                    extra[k - printable]
                }
            })
            .collect()
    }

    /// Picks one of `options`, cloned. Shrinks toward the first option, so
    /// list the simplest alternative first.
    pub fn pick<T: Clone>(&mut self, options: &[T]) -> T {
        assert!(!options.is_empty(), "pick from empty options");
        options[self.gen_range(0..options.len())].clone()
    }
}

impl RngCore for Source {
    fn next_u64(&mut self) -> u64 {
        match &mut self.mode {
            Mode::Record { rng, choices } => {
                let v = rng.next_u64();
                choices.push(v);
                v
            }
            Mode::Replay { data, pos } => {
                let v = data.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        }
    }
}

thread_local! {
    static CURRENT_INPUT: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Records a human-readable description of the current case's generated
/// input. Called by the [`property!`] expansion; the last value recorded
/// before a failure is what the report shows as the (shrunk) input.
pub fn record_input(desc: String) {
    CURRENT_INPUT.with(|c| *c.borrow_mut() = desc);
}

fn take_input() -> String {
    CURRENT_INPUT.with(|c| std::mem::take(&mut *c.borrow_mut()))
}

/// Everything known about a property failure after shrinking.
#[derive(Debug)]
pub struct Failure {
    /// Zero-based index of the failing case.
    pub case: u32,
    /// The per-case seed that reproduces the failure from scratch.
    pub seed: u64,
    /// Description of the shrunk input (from [`record_input`]).
    pub input: String,
    /// The panic message of the shrunk failure.
    pub message: String,
    /// How many accepted shrink steps led to the final input.
    pub shrink_steps: u32,
    /// The shrunk choice stream (trailing zeros stripped).
    pub choices: Vec<u64>,
}

/// Drives one property: generates cases, shrinks failures, reports.
pub struct Runner {
    name: String,
    cases: u32,
}

impl Runner {
    /// A runner named after the property (used in failure reports).
    pub fn new(name: &str) -> Runner {
        let cases = std::env::var("CLARIFY_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        Runner {
            name: name.to_string(),
            cases,
        }
    }

    /// Sets the number of cases (unless `CLARIFY_PROP_CASES` overrides).
    pub fn cases(mut self, n: u32) -> Runner {
        if std::env::var("CLARIFY_PROP_CASES").is_err() {
            self.cases = n;
        }
        self
    }

    /// Runs the property, panicking with a full report on failure.
    pub fn run<F: Fn(&mut Source)>(&self, f: F) {
        if let Some(fail) = self.run_impl(&f) {
            panic!(
                "[clarify-testkit] property '{}' failed\n  \
                 case {} of {}, seed {:#018x}\n  \
                 shrunk input ({} choices after {} shrink steps):\n    {}\n  \
                 panic: {}\n  \
                 replay: CLARIFY_PROP_SEED={:#x} cargo test {}",
                self.name,
                fail.case + 1,
                self.cases,
                fail.seed,
                fail.choices.len(),
                fail.shrink_steps,
                if fail.input.is_empty() {
                    "<no recorded input>"
                } else {
                    &fail.input
                },
                fail.message,
                fail.seed,
                self.name.rsplit("::").next().unwrap_or(&self.name),
            );
        }
    }

    /// Like [`Runner::run`] but returns the failure instead of panicking
    /// (used by the harness's own tests).
    pub fn run_impl<F: Fn(&mut Source)>(&self, f: &F) -> Option<Failure> {
        // A pinned seed replays exactly one case.
        if let Some(seed) = env_seed() {
            return self.run_case(0, seed, f);
        }
        let base = 0x436c_6172_6966_7921; // "Clarify!"
        for case in 0..self.cases {
            let mix = (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let seed = SplitMix64::new(base ^ mix).next_u64();
            if let Some(fail) = self.run_case(case, seed, f) {
                return Some(fail);
            }
        }
        None
    }

    fn run_case<F: Fn(&mut Source)>(&self, case: u32, seed: u64, f: &F) -> Option<Failure> {
        record_input(String::new());
        let mut src = Source::recording(seed);
        let first = panic::catch_unwind(AssertUnwindSafe(|| f(&mut src)));
        if first.is_ok() {
            return None;
        }
        // Genuine failure: shrink quietly (suppress the per-attempt panic
        // printouts), then replay the winner to capture its input/message.
        let recorded = strip_trailing_zeros(src.choices().to_vec());
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let (choices, shrink_steps) = shrink(recorded, f);
        record_input(String::new());
        let mut replay = Source::replaying(choices.clone());
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&mut replay)));
        panic::set_hook(prev_hook);
        let message = match outcome {
            Err(payload) => payload_message(&*payload),
            // Should be impossible — shrinking only accepts failing
            // candidates — but report rather than hide the original.
            Ok(()) => payload_message(&*first.unwrap_err()),
        };
        Some(Failure {
            case,
            seed,
            input: take_input(),
            message,
            shrink_steps,
            choices,
        })
    }
}

fn env_seed() -> Option<u64> {
    let v = std::env::var("CLARIFY_PROP_SEED").ok()?;
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn strip_trailing_zeros(mut v: Vec<u64>) -> Vec<u64> {
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

/// Greedy shrink: repeatedly try simpler choice streams (shorter, then
/// element-wise zero / halve / decrement), keeping the first candidate
/// that still fails, until a full pass makes no progress or the replay
/// budget runs out. Returns the shrunk stream and accepted step count.
fn shrink<F: Fn(&mut Source)>(mut best: Vec<u64>, f: &F) -> (Vec<u64>, u32) {
    let mut budget = SHRINK_BUDGET;
    let mut steps = 0u32;
    let still_fails = |cand: &[u64]| -> bool {
        record_input(String::new());
        let mut src = Source::replaying(cand.to_vec());
        panic::catch_unwind(AssertUnwindSafe(|| f(&mut src))).is_err()
    };
    loop {
        let mut improved = false;

        // Truncation: cut the tail (replay pads with zeros, so this also
        // covers "zero the whole suffix").
        let mut cut = best.len() / 2;
        while cut < best.len() && budget > 0 {
            budget -= 1;
            let cand = strip_trailing_zeros(best[..cut].to_vec());
            if cand.len() < best.len() && still_fails(&cand) {
                best = cand;
                steps += 1;
                improved = true;
                cut = best.len() / 2;
            } else {
                // Move the cut point toward the full length.
                cut += (best.len() - cut).div_ceil(2).max(1);
            }
        }

        // Element-wise simplification: zero fast path, then a binary
        // descent toward the smallest value of this choice that still
        // fails (exact when failure is monotone in the choice, and a
        // cheap downhill step otherwise — the outer loop retries).
        for i in 0.. {
            // `best` may have been truncated by an accepted candidate.
            if i >= best.len() || budget == 0 {
                break;
            }
            if best[i] == 0 {
                continue;
            }
            let mut cand = best.clone();
            cand[i] = 0;
            budget -= 1;
            if still_fails(&cand) {
                best = strip_trailing_zeros(cand);
                steps += 1;
                improved = true;
                continue;
            }
            let (mut lo, mut hi) = (0u64, best[i]);
            while lo < hi && budget > 0 {
                budget -= 1;
                let mid = lo + (hi - lo) / 2;
                cand[i] = mid;
                if still_fails(&cand) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if hi < best[i] {
                best[i] = hi;
                steps += 1;
                improved = true;
            }
        }

        if !improved || budget == 0 {
            return (best, steps);
        }
    }
}

/// Defines `#[test]` functions that check a property over generated
/// inputs.
///
/// ```ignore
/// property! {
///     /// Doc comments and attributes pass through.
///     fn name(x in gen_a, y in gen_b) cases 512 { body }
///     fn other(x in gens::ints(0u8..=32)) { body }
/// }
/// ```
///
/// Each generator is any expression callable as `Fn(&mut Source) -> T`
/// with `T: Debug`. `cases N` is optional (default
/// [`DEFAULT_CASES`][crate::DEFAULT_CASES]).
#[macro_export]
macro_rules! property {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) cases $cases:literal $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::Runner::new(concat!(module_path!(), "::", stringify!($name)))
                .cases($cases)
                .run(|__g: &mut $crate::Source| {
                    $(let $arg = ($gen)(__g);)+
                    $crate::record_input(format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    ));
                    $body
                });
        }
        $crate::property! { $($rest)* }
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::Runner::new(concat!(module_path!(), "::", stringify!($name)))
                .run(|__g: &mut $crate::Source| {
                    $(let $arg = ($gen)(__g);)+
                    $crate::record_input(format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    ));
                    $body
                });
        }
        $crate::property! { $($rest)* }
    };
}

/// `assert!` under a property (kept distinct so ported suites read the
/// same as their proptest originals).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests;
