use crate::{gens, Rng, Runner, Source};

#[test]
fn passing_property_runs_all_cases() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let count = AtomicU32::new(0);
    let fail = Runner::new("always_passes")
        .cases(64)
        .run_impl(&|g: &mut Source| {
            count.fetch_add(1, Ordering::SeqCst);
            let _ = g.gen_range(0u32..100);
        });
    assert!(fail.is_none());
    assert_eq!(count.load(Ordering::SeqCst), 64);
}

#[test]
fn failure_is_shrunk_to_the_boundary() {
    // "All u32 < 100_000 are < 1000" is false; the minimal counterexample
    // is exactly 1000 and greedy shrinking must find it.
    let fail = Runner::new("boundary")
        .cases(256)
        .run_impl(&|g: &mut Source| {
            let v = g.gen_range(0u32..100_000);
            assert!(v < 1000, "too big: {v}");
        })
        .expect("property must fail");
    // Replay the shrunk choices to recover the value.
    let mut src = Source::replaying(fail.choices.clone());
    let v = src.gen_range(0u32..100_000);
    assert_eq!(v, 1000, "shrunk to the exact boundary: {fail:?}");
    assert!(
        fail.message.contains("too big"),
        "actual message: {:?}",
        fail.message
    );
}

#[test]
fn vec_failures_shrink_toward_short_vectors() {
    // Vectors with any element >= 10 fail; minimal counterexample is a
    // single element of exactly 10.
    let fail = Runner::new("vec_shrink")
        .cases(256)
        .run_impl(&|g: &mut Source| {
            let v = g.vec(0, 20, |g| g.gen_range(0u32..1000));
            assert!(v.iter().all(|&x| x < 10), "{v:?}");
        })
        .expect("property must fail");
    let mut src = Source::replaying(fail.choices.clone());
    let v = src.vec(0, 20, |g| g.gen_range(0u32..1000));
    // Greedy shrinking pins the offending element at the exact boundary
    // and zeroes everything else (it may not always delete the zeroed
    // prefix, so assert shape rather than exact equality with [10]).
    assert_eq!(v.iter().filter(|&&x| x == 10).count(), 1, "{fail:?}");
    assert!(v.iter().all(|&x| x == 0 || x == 10), "{fail:?}");
    assert!(v.len() <= 20, "{fail:?}");
}

#[test]
fn failures_are_deterministic() {
    let run = || {
        Runner::new("det")
            .cases(64)
            .run_impl(&|g: &mut Source| {
                let v = g.gen_range(0u64..1 << 40);
                assert!(v % 7 != 3);
            })
            .expect("fails")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.case, b.case);
    assert_eq!(a.choices, b.choices);
}

#[test]
fn replay_pads_with_zeros() {
    let mut src = Source::replaying(vec![5]);
    assert_eq!(src.gen_range(0u32..10), 5);
    assert_eq!(src.gen_range(0u32..10), 0, "exhausted stream yields zeros");
    assert_eq!(src.gen_range(3u32..10), 3, "zero maps to the lower bound");
}

#[test]
fn ascii_strings_are_printable() {
    let mut src = Source::recording(1);
    for _ in 0..50 {
        let s = src.ascii(40, &['\n']);
        assert!(s.len() <= 40);
        assert!(
            s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)),
            "{s:?}"
        );
    }
}

// The macro surface itself, exercised as real #[test]s.
property! {
    /// Sorting is idempotent.
    fn sort_idempotent(v in gens::vec_of(gens::ints(0i64..=100), 0, 12)) {
        let mut once = v.clone();
        once.sort();
        let mut twice = once.clone();
        twice.sort();
        prop_assert_eq!(once, twice);
    }

    fn pick_stays_in_options(x in gens::sampled(vec!["a", "b", "c"])) cases 64 {
        prop_assert!(["a", "b", "c"].contains(&x));
    }

    fn boolean_generates(b in gens::boolean(), n in gens::ints(0u8..=7)) cases 64 {
        prop_assert!(n <= 7);
        let _ = b;
    }
}
