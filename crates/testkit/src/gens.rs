//! Reusable generator combinators: free functions returning
//! `Fn(&mut Source) -> T` closures, composable with hand-written
//! generator functions.

use crate::Source;
use clarify_rng::{Rng, SampleRange, SampleUniform};

/// Uniform integers from a `lo..hi` or `lo..=hi` range.
pub fn ints<T, R>(range: R) -> impl Fn(&mut Source) -> T + Clone
where
    T: SampleUniform,
    R: SampleRange<T> + Clone,
{
    move |g| g.gen_range(range.clone())
}

/// Always the same value (the `Just` of proptest).
pub fn just<T: Clone>(value: T) -> impl Fn(&mut Source) -> T + Clone {
    move |_| value.clone()
}

/// A uniformly chosen clone of one of `options`. Shrinks toward the first
/// option, so list the simplest one first.
pub fn sampled<T: Clone>(options: Vec<T>) -> impl Fn(&mut Source) -> T + Clone {
    move |g| g.pick(&options)
}

/// Uniform booleans. Shrinks toward `false`.
pub fn boolean() -> impl Fn(&mut Source) -> bool + Clone {
    |g| g.gen_range(0u8..=1) == 1
}

/// Vectors with length in `[min_len, max_len]` and items from `item`.
pub fn vec_of<T, G>(item: G, min_len: usize, max_len: usize) -> impl Fn(&mut Source) -> Vec<T>
where
    G: Fn(&mut Source) -> T,
{
    move |g| g.vec(min_len, max_len, |g| item(g))
}

/// Printable-ASCII strings up to `max_len` chars (proptest's
/// `"[ -~]{0,N}"`).
pub fn ascii_string(max_len: usize) -> impl Fn(&mut Source) -> String + Clone {
    move |g| g.ascii(max_len, &[])
}

/// Printable-ASCII-plus-newline strings up to `max_len` chars
/// (proptest's `"[ -~\n]{0,N}"`).
pub fn ascii_string_with_newlines(max_len: usize) -> impl Fn(&mut Source) -> String + Clone {
    move |g| g.ascii(max_len, &['\n'])
}

/// Strings built by concatenating `len` draws from a character set.
pub fn string_from(chars: Vec<char>, max_len: usize) -> impl Fn(&mut Source) -> String + Clone {
    move |g| {
        let n = g.gen_range(0..=max_len);
        (0..n).map(|_| g.pick(&chars)).collect()
    }
}
