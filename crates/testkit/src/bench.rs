//! A Criterion-shaped micro-bench facade over `std::time::Instant`.
//!
//! The workspace's benches keep their Criterion structure —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with per-group sample sizes, `BenchmarkId` — but the
//! measurements come from a simple calibrate-then-sample loop: each
//! sample runs enough iterations to cover a few milliseconds, and the
//! report shows the median, minimum, and maximum time per iteration.
//!
//! This is deliberately *not* a statistics engine. It exists so `cargo
//! bench` works offline and regressions of 2x+ are visible; fine-grained
//! confidence intervals were never load-bearing in this repo.
//!
//! Set `CLARIFY_BENCH_JSON=<path>` to additionally append one JSON record
//! per benchmark (name, median/min/max ns per iteration, sample and
//! iteration counts) to that file — the format the repo's `BENCH_*.json`
//! trajectory files are built from.
//!
//! Set `CLARIFY_BENCH_QUICK=1` for a fast smoke pass (CI's bench job):
//! the per-sample target drops to 500µs and every benchmark takes at most
//! 5 samples, trading precision for wall-clock time while keeping the
//! same output format.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time for one sample batch.
const SAMPLE_TARGET: Duration = Duration::from_millis(4);
const DEFAULT_SAMPLES: usize = 15;

/// Quick-mode settings (`CLARIFY_BENCH_QUICK=1`): much smaller batches,
/// few samples — a smoke pass proving the benches run, not a measurement.
const QUICK_SAMPLE_TARGET: Duration = Duration::from_micros(500);
const QUICK_SAMPLES: usize = 5;

/// Whether `CLARIFY_BENCH_QUICK` asks for the fast smoke pass.
fn quick_mode() -> bool {
    std::env::var("CLARIFY_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Entry point handed to every bench function (mirrors
/// `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark (min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        run_bench(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// A benchmark identifier derived from its parameter (mirrors
/// `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f` (the measurement the runner
    /// aggregates).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let (sample_target, samples) = if quick_mode() {
        (QUICK_SAMPLE_TARGET, samples.min(QUICK_SAMPLES))
    } else {
        (SAMPLE_TARGET, samples)
    };
    // Calibrate: grow the iteration count until one batch costs at least
    // the sample target (or a cap is hit, for very slow bodies).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= sample_target || iters >= 1 << 20 {
            break;
        }
        // At least double; overshoot toward the target in one step when
        // the measured time says we can.
        let scale = (sample_target.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 1024);
        iters = iters.saturating_mul(scale as u64).min(1 << 20);
    }

    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "bench {name:<48} {:>12}/iter  (min {}, max {}, {} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        per_iter.len(),
        iters,
    );
    if let Ok(path) = std::env::var("CLARIFY_BENCH_JSON") {
        if !path.is_empty() {
            append_json(&path, name, median, min, max, per_iter.len(), iters);
        }
    }
}

/// Emits one benchmark record outside the calibrate-then-sample loop —
/// for harnesses that measure their own distribution (latency
/// percentiles, throughput under concurrent load) but want the standard
/// reporting: the human `bench ...` line plus a `CLARIFY_BENCH_JSON`
/// record in the exact shape the sampling runner's records use, so the
/// `BENCH_*.json` trajectory tooling ingests both alike.
///
/// `median_ns` is whatever statistic the harness chose to headline (a
/// percentile, a mean); `min_ns`/`max_ns` bound the observed
/// distribution; `samples` is the number of observations behind it and
/// `iters` how many operations each observation covered.
pub fn emit_record(
    name: &str,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters: u64,
) {
    println!(
        "bench {name:<48} {:>12}/iter  (min {}, max {}, {} samples x {} iters)",
        fmt_ns(median_ns),
        fmt_ns(min_ns),
        fmt_ns(max_ns),
        samples,
        iters,
    );
    if let Ok(path) = std::env::var("CLARIFY_BENCH_JSON") {
        if !path.is_empty() {
            append_json(&path, name, median_ns, min_ns, max_ns, samples, iters);
        }
    }
}

/// Appends one JSON object (own line) describing a finished benchmark to
/// `path`. Failures are reported but never fail the bench run.
fn append_json(
    path: &str,
    name: &str,
    median: f64,
    min: f64,
    max: f64,
    samples: usize,
    iters: u64,
) {
    use std::io::Write as _;
    let name: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let record = format!(
        "{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\
         \"max_ns\":{max:.1},\"samples\":{samples},\"iters\":{iters}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    if let Err(e) = written {
        eprintln!("CLARIFY_BENCH_JSON: cannot append to {path}: {e}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundles bench functions into a group runnable by [`criterion_main!`]
/// (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench binary (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};
