//! Deterministic finite automata over ASCII, with an alphabet compressed
//! into byte-equivalence classes.

use std::collections::{BTreeMap, VecDeque};

use crate::ast::{Ast, ByteClass};
use crate::nfa::Nfa;
use crate::{ETX, STX};

/// A complete, minimized DFA.
///
/// The 128-byte ASCII alphabet is compressed to equivalence classes: bytes
/// that no pattern distinguishes share a class, which keeps transition
/// tables small. Every DFA is *complete* (a dead state absorbs unmatched
/// input), so complementation is a flip of the accept flags.
#[derive(Clone, PartialEq, Eq)]
pub struct Dfa {
    /// Byte → symbol-class index.
    class_of: [u8; 128],
    num_classes: usize,
    /// Smallest byte in each class, used to render witnesses.
    reps: Vec<u8>,
    /// Row-major transition table: `trans[state * num_classes + class]`.
    trans: Vec<u32>,
    accept: Vec<bool>,
    start: u32,
}

impl std::fmt::Debug for Dfa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dfa")
            .field("states", &self.accept.len())
            .field("classes", &self.num_classes)
            .field("start", &self.start)
            .finish()
    }
}

/// Builds the byte partition induced by a set of byte classes.
fn partition_bytes(classes: &[ByteClass]) -> ([u8; 128], usize, Vec<u8>) {
    // Signature of byte b = the subset of `classes` containing b.
    let mut sig_to_class: BTreeMap<Vec<bool>, u8> = BTreeMap::new();
    let mut class_of = [0u8; 128];
    let mut reps: Vec<u8> = Vec::new();
    for b in 0u8..128 {
        let sig: Vec<bool> = classes.iter().map(|c| c.contains(b)).collect();
        let next = sig_to_class.len() as u8;
        let id = *sig_to_class.entry(sig).or_insert_with(|| {
            reps.push(b);
            next
        });
        class_of[b as usize] = id;
    }
    let n = sig_to_class.len();
    (class_of, n, reps)
}

/// Compiles an AST to a complete minimized DFA.
pub(crate) fn compile(ast: &Ast) -> Dfa {
    let nfa = Nfa::compile(ast);
    let (class_of, num_classes, reps) = partition_bytes(&nfa.classes());

    // Subset construction over symbol classes.
    let start_set = nfa.eps_closure(&[nfa.start]);
    let mut state_ids: BTreeMap<Vec<usize>, u32> = BTreeMap::new();
    state_ids.insert(start_set.clone(), 0);
    let mut worklist = VecDeque::from([start_set]);
    let mut trans: Vec<u32> = Vec::new();
    let mut accept: Vec<bool> = Vec::new();
    // Reserve row 0 lazily as we pop.
    while let Some(set) = worklist.pop_front() {
        let id = state_ids[&set] as usize;
        if trans.len() < (id + 1) * num_classes {
            trans.resize((id + 1) * num_classes, 0);
            accept.resize(id + 1, false);
        }
        accept[id] = set.contains(&nfa.accept);
        for class in 0..num_classes {
            let rep = reps[class];
            let mut next: Vec<usize> = Vec::new();
            for &s in &set {
                if let Some((c, t)) = nfa.states[s].byte_edge {
                    if c.contains(rep) {
                        next.push(t);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            let closed = nfa.eps_closure(&next);
            let next_id = match state_ids.get(&closed) {
                Some(&i) => i,
                None => {
                    let i = state_ids.len() as u32;
                    state_ids.insert(closed.clone(), i);
                    worklist.push_back(closed);
                    i
                }
            };
            trans[id * num_classes + class] = next_id;
        }
    }
    let dfa = Dfa {
        class_of,
        num_classes,
        reps,
        trans,
        accept,
        start: 0,
    };
    dfa.minimize()
}

impl Dfa {
    /// A DFA accepting nothing, over the trivial one-class alphabet.
    pub fn empty() -> Dfa {
        Dfa {
            class_of: [0; 128],
            num_classes: 1,
            reps: vec![0],
            trans: vec![0],
            accept: vec![false],
            start: 0,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// Runs the DFA on raw bytes (no sentinel wrapping).
    pub fn accepts_bytes(&self, bytes: &[u8]) -> bool {
        let mut s = self.start;
        for &b in bytes {
            if b >= 128 {
                return false;
            }
            let c = self.class_of[b as usize] as usize;
            s = self.trans[s as usize * self.num_classes + c];
        }
        self.accept[s as usize]
    }

    /// Cisco-style match: wraps `text` in the `STX`/`ETX` sentinels and runs
    /// the automaton. Use with DFAs produced by [`crate::Regex::to_dfa`].
    pub fn matches(&self, text: &str) -> bool {
        let mut bytes = Vec::with_capacity(text.len() + 2);
        bytes.push(STX);
        bytes.extend_from_slice(text.as_bytes());
        bytes.push(ETX);
        self.accepts_bytes(&bytes)
    }

    /// Language complement (flip accepting states; the DFA is complete).
    pub fn complement(&self) -> Dfa {
        let mut d = self.clone();
        for a in &mut d.accept {
            *a = !*a;
        }
        d.minimize()
    }

    /// Language intersection.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Language union.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Language difference `self \ other`.
    pub fn minus(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && !b)
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        self.witness_bytes().is_none()
    }

    /// Whether both DFAs accept exactly the same language.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.minus(other).is_empty() && other.minus(self).is_empty()
    }

    /// Shortest accepted byte string (ties broken towards the smallest
    /// representative byte), or `None` for the empty language.
    pub fn witness_bytes(&self) -> Option<Vec<u8>> {
        // BFS over states; classes are explored in representative order,
        // which is ascending by construction.
        let n = self.num_states();
        let mut prev: Vec<Option<(u32, u8)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::from([self.start]);
        seen[self.start as usize] = true;
        let mut hit: Option<u32> = if self.accept[self.start as usize] {
            Some(self.start)
        } else {
            None
        };
        'bfs: while let Some(s) = q.pop_front() {
            if hit.is_some() {
                break;
            }
            for class in 0..self.num_classes {
                let t = self.trans[s as usize * self.num_classes + class];
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    prev[t as usize] = Some((s, self.reps[class]));
                    if self.accept[t as usize] {
                        hit = Some(t);
                        break 'bfs;
                    }
                    q.push_back(t);
                }
            }
        }
        let mut cur = hit?;
        let mut out = Vec::new();
        while let Some((p, b)) = prev[cur as usize] {
            out.push(b);
            cur = p;
        }
        out.reverse();
        Some(out)
    }

    /// Shortest accepted string with the sentinels stripped, or `None`.
    pub fn witness(&self) -> Option<String> {
        let bytes = self.witness_bytes()?;
        Some(
            bytes
                .into_iter()
                .filter(|&b| b != STX && b != ETX)
                .map(|b| b as char)
                .collect(),
        )
    }

    fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        // Common refinement of the two byte partitions.
        let mut sig_to_class: BTreeMap<(u8, u8), u8> = BTreeMap::new();
        let mut class_of = [0u8; 128];
        let mut reps: Vec<u8> = Vec::new();
        let mut pair_classes: Vec<(u8, u8)> = Vec::new();
        for b in 0u8..128 {
            let sig = (self.class_of[b as usize], other.class_of[b as usize]);
            let next = sig_to_class.len() as u8;
            let id = *sig_to_class.entry(sig).or_insert_with(|| {
                reps.push(b);
                pair_classes.push(sig);
                next
            });
            class_of[b as usize] = id;
        }
        let num_classes = sig_to_class.len();

        let mut ids: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        let start_pair = (self.start, other.start);
        ids.insert(start_pair, 0);
        let mut worklist = VecDeque::from([start_pair]);
        let mut trans = Vec::new();
        let mut accept = Vec::new();
        while let Some((sa, sb)) = worklist.pop_front() {
            let id = ids[&(sa, sb)] as usize;
            if trans.len() < (id + 1) * num_classes {
                trans.resize((id + 1) * num_classes, 0);
                accept.resize(id + 1, false);
            }
            accept[id] = combine(self.accept[sa as usize], other.accept[sb as usize]);
            for (class, &(ca, cb)) in pair_classes.iter().enumerate() {
                let ta = self.trans[sa as usize * self.num_classes + ca as usize];
                let tb = other.trans[sb as usize * other.num_classes + cb as usize];
                let next_id = match ids.get(&(ta, tb)) {
                    Some(&i) => i,
                    None => {
                        let i = ids.len() as u32;
                        ids.insert((ta, tb), i);
                        worklist.push_back((ta, tb));
                        i
                    }
                };
                trans[id * num_classes + class] = next_id;
            }
        }
        Dfa {
            class_of,
            num_classes,
            reps,
            trans,
            accept,
            start: 0,
        }
        .minimize()
    }

    /// Moore partition-refinement minimization (also drops unreachable
    /// states and merges alphabet classes the minimal automaton cannot
    /// distinguish is left to future work — class count is already tiny).
    fn minimize(&self) -> Dfa {
        // 1. Restrict to reachable states.
        let n = self.num_states();
        let mut reach = vec![false; n];
        let mut stack = vec![self.start];
        reach[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            for class in 0..self.num_classes {
                let t = self.trans[s as usize * self.num_classes + class];
                if !reach[t as usize] {
                    reach[t as usize] = true;
                    stack.push(t);
                }
            }
        }

        // 2. Initial partition: accepting vs non-accepting.
        let mut block: Vec<u32> = (0..n).map(|s| u32::from(self.accept[s])).collect();
        loop {
            // Signature: (current block, blocks of successors).
            let mut sig_ids: BTreeMap<Vec<u32>, u32> = BTreeMap::new();
            let mut next: Vec<u32> = vec![0; n];
            for s in 0..n {
                if !reach[s] {
                    continue;
                }
                let mut sig = Vec::with_capacity(self.num_classes + 1);
                sig.push(block[s]);
                for class in 0..self.num_classes {
                    let t = self.trans[s * self.num_classes + class];
                    sig.push(block[t as usize]);
                }
                let id = sig_ids.len() as u32;
                next[s] = *sig_ids.entry(sig).or_insert(id);
            }
            let changed = (0..n).any(|s| reach[s] && next[s] != block[s]);
            block = next;
            if !changed {
                break;
            }
        }

        // 3. Rebuild with one state per block, numbered by first occurrence
        //    in BFS order from the start block so output is deterministic.
        let mut renum: BTreeMap<u32, u32> = BTreeMap::new();
        let mut order: Vec<usize> = Vec::new(); // representative state per new id
        let mut q = VecDeque::from([self.start as usize]);
        renum.insert(block[self.start as usize], 0);
        order.push(self.start as usize);
        let mut seen_blocks = std::collections::HashSet::new();
        seen_blocks.insert(block[self.start as usize]);
        while let Some(s) = q.pop_front() {
            for class in 0..self.num_classes {
                let t = self.trans[s * self.num_classes + class] as usize;
                if seen_blocks.insert(block[t]) {
                    renum.insert(block[t], order.len() as u32);
                    order.push(t);
                    q.push_back(t);
                }
            }
        }
        let m = order.len();
        let mut trans = vec![0u32; m * self.num_classes];
        let mut accept = vec![false; m];
        for (new_id, &rep) in order.iter().enumerate() {
            accept[new_id] = self.accept[rep];
            for class in 0..self.num_classes {
                let t = self.trans[rep * self.num_classes + class] as usize;
                trans[new_id * self.num_classes + class] = renum[&block[t]];
            }
        }
        Dfa {
            class_of: self.class_of,
            num_classes: self.num_classes,
            reps: self.reps.clone(),
            trans,
            accept,
            start: 0,
        }
    }
}
