//! Cisco-style regular expressions compiled to deterministic finite automata.
//!
//! Cisco IOS uses POSIX-flavoured regexes to match BGP **AS paths**
//! (`ip as-path access-list`) and **communities** (`ip community-list
//! expanded`). Two quirks distinguish them from ordinary regexes:
//!
//! * matching is *substring* matching unless `^` / `$` anchors are used, and
//! * the `_` metacharacter matches any delimiter: space, comma, braces,
//!   parentheses, **or the start or end of the string** — this is how
//!   `_32$` matches a path that originates at AS 32 and `_300:3_` matches a
//!   route tagged with community 300:3.
//!
//! We model start/end-of-string as two sentinel bytes (`STX`/`ETX`) that
//! surround every subject string, which turns both quirks into plain
//! character-class matching. Compilation is the textbook pipeline:
//! parse → Thompson NFA → subset-construction DFA → Moore minimization.
//!
//! The crate also computes **atomic predicates**: given the set of regexes
//! appearing in a configuration, it partitions the universe of valid subject
//! strings into disjoint equivalence classes (atoms) such that every regex is
//! a union of atoms. The symbolic analysis layer then needs only one Boolean
//! variable per atom — the same construction Batfish uses for route-policy
//! reasoning.
//!
//! ```
//! use clarify_automata::Regex;
//!
//! let re = Regex::parse("_32$").unwrap();
//! let dfa = re.to_dfa();
//! assert!(dfa.matches("10 20 32"));
//! assert!(!dfa.matches("32 10"));
//! ```

#![warn(missing_docs)]

mod ast;
mod atoms;
mod dfa;
mod nfa;

pub use ast::{ByteClass, Regex, RegexError};
pub use atoms::{AtomSpace, ATOM_LIMIT};
pub use dfa::Dfa;

/// Sentinel byte prepended to every subject string (start of text).
pub const STX: u8 = 0x02;
/// Sentinel byte appended to every subject string (end of text).
pub const ETX: u8 = 0x03;

#[cfg(test)]
mod tests;
