use crate::{AtomSpace, Dfa, Regex};

fn dfa(pattern: &str) -> Dfa {
    Regex::parse(pattern).expect("pattern parses").to_dfa()
}

#[test]
fn literal_substring_semantics() {
    let d = dfa("32");
    assert!(d.matches("32"));
    assert!(d.matches("132 4"));
    assert!(d.matches("4 321"));
    assert!(!d.matches("3 2"));
    assert!(!d.matches(""));
}

#[test]
fn anchored_start() {
    let d = dfa("^32");
    assert!(d.matches("32"));
    assert!(d.matches("32 5"));
    assert!(d.matches("321"));
    assert!(!d.matches("5 32"));
}

#[test]
fn anchored_end() {
    let d = dfa("32$");
    assert!(d.matches("32"));
    assert!(d.matches("5 32"));
    assert!(d.matches("532"));
    assert!(!d.matches("32 5"));
}

#[test]
fn fully_anchored_exact() {
    let d = dfa("^32$");
    assert!(d.matches("32"));
    assert!(!d.matches("320"));
    assert!(!d.matches("132"));
    assert!(!d.matches("32 1"));
}

#[test]
fn underscore_is_cisco_delimiter() {
    // The paper's AS-path list D0: routes originating from AS 32.
    let d = dfa("_32$");
    assert!(d.matches("32"), "start-of-string counts as a delimiter");
    assert!(d.matches("10 32"));
    assert!(d.matches("10 20 32"));
    assert!(!d.matches("132"), "digit before 32 is not a delimiter");
    assert!(!d.matches("32 10"));
}

#[test]
fn underscore_community() {
    // The paper's community list: _300:3_
    let d = dfa("_300:3_");
    assert!(d.matches("300:3"));
    assert!(!d.matches("1300:3"));
    assert!(!d.matches("300:33"));
    assert!(d.matches("300:3,500:1"), "comma is a delimiter");
}

#[test]
fn dot_and_star() {
    let d = dfa("^1.3$");
    assert!(d.matches("123"));
    assert!(d.matches("1x3"));
    assert!(!d.matches("13"));
    let d = dfa("^1.*3$");
    assert!(d.matches("13"));
    assert!(d.matches("1223"));
}

#[test]
fn plus_and_opt() {
    let d = dfa("^a+b?$");
    assert!(d.matches("a"));
    assert!(d.matches("aaab"));
    assert!(!d.matches("b"));
    assert!(!d.matches("abb"));
}

#[test]
fn alternation_and_groups() {
    let d = dfa("^(ab|cd)+$");
    assert!(d.matches("ab"));
    assert!(d.matches("abcdab"));
    assert!(!d.matches("abc"));
    assert!(!d.matches(""));
}

#[test]
fn char_classes() {
    let d = dfa("^[0-9]+$");
    assert!(d.matches("0123456789"));
    assert!(!d.matches(""));
    assert!(!d.matches("12a"));
    let d = dfa("^[^0-9]+$");
    assert!(d.matches("abc"));
    assert!(!d.matches("a1c"));
}

#[test]
fn class_with_literal_dash_and_escape() {
    let d = dfa("^[a\\-c]+$");
    assert!(d.matches("a-c"));
    assert!(!d.matches("b"));
    let d = dfa("^a\\.b$");
    assert!(d.matches("a.b"));
    assert!(!d.matches("axb"));
}

#[test]
fn parse_errors_have_positions() {
    let e = Regex::parse("a(b").unwrap_err();
    assert!(e.message.contains("unclosed group"), "{e}");
    let e = Regex::parse("a[b").unwrap_err();
    assert!(e.message.contains("unclosed character class"));
    let e = Regex::parse("a)").unwrap_err();
    assert_eq!(e.position, 1);
    assert!(Regex::parse("a\\").is_err());
    assert!(Regex::parse("[z-a]").is_err());
}

#[test]
fn empty_pattern_matches_everything() {
    // An empty regex matches the empty substring of any subject.
    let d = dfa("");
    assert!(d.matches(""));
    assert!(d.matches("anything"));
}

#[test]
fn complement_flips_language() {
    let d = dfa("^ab$");
    let c = d.complement();
    assert!(!c.matches("ab"));
    assert!(c.matches("ba"));
    assert!(c.matches(""));
    assert!(d.complement().equivalent(&d.complement()));
    assert!(c.complement().equivalent(&d));
}

#[test]
fn intersection_union_difference() {
    let a = dfa("^a.*$"); // starts with a
    let b = dfa("^.*b$"); // ends with b
    let both = a.intersect(&b);
    assert!(both.matches("ab"));
    assert!(both.matches("axb"));
    assert!(!both.matches("ax"));
    assert!(!both.matches("xb"));
    let either = a.union(&b);
    assert!(either.matches("ax"));
    assert!(either.matches("xb"));
    assert!(!either.matches("x"));
    let only_a = a.minus(&b);
    assert!(only_a.matches("ax"));
    assert!(!only_a.matches("ab"));
}

#[test]
fn emptiness_and_equivalence() {
    let a = dfa("^a$");
    let impossible = a.intersect(&dfa("^b$"));
    assert!(impossible.is_empty());
    assert!(Dfa::empty().is_empty());
    let a2 = dfa("^(a)$");
    assert!(a.equivalent(&a2));
    assert!(!a.equivalent(&dfa("^b$")));
}

#[test]
fn witness_is_shortest() {
    let d = dfa("^aa+$");
    assert_eq!(d.witness().as_deref(), Some("aa"));
    let d = dfa("^[0-9][0-9]$");
    let w = d.witness().unwrap();
    assert_eq!(w.len(), 2);
    assert!(d.matches(&w));
    assert!(Dfa::empty().witness().is_none());
}

#[test]
fn witness_respects_intersection() {
    let d = dfa("^[0-9]+:[0-9]+$").intersect(&dfa("_300:3_"));
    let w = d.witness().unwrap();
    assert_eq!(w, "300:3");
}

#[test]
fn minimization_produces_small_automata() {
    // (a|b)*abb — the classic example minimizes to 4 body states; sentinel
    // handling adds a pre-STX state, a post-ETX accept, and a dead state.
    let d = dfa("^(a|b)*abb$");
    assert!(d.num_states() <= 8, "got {}", d.num_states());
    assert!(d.matches("abb"));
    assert!(d.matches("aabb"));
    assert!(!d.matches("ab"));
}

#[test]
fn atoms_partition_universe() {
    let universe = dfa("^[0-9]+:[0-9]+$");
    let pats = vec![
        Regex::parse("_300:3_").unwrap(),
        Regex::parse("^300:").unwrap(),
    ];
    let space = AtomSpace::build(&universe, &pats).unwrap();
    // Atoms: {300:3}, {300:* minus 300:3}, {everything else} = 3.
    assert_eq!(space.len(), 3);
    // Disjointness.
    for i in 0..space.len() {
        for j in (i + 1)..space.len() {
            assert!(space.atom(i).intersect(space.atom(j)).is_empty());
        }
    }
    // Coverage.
    let mut union = Dfa::empty();
    for i in 0..space.len() {
        union = union.union(space.atom(i));
    }
    assert!(union.equivalent(&universe));
    // Membership: _300:3_ is exactly one atom; ^300: covers that atom too.
    assert_eq!(space.members_of(0).len(), 1);
    assert_eq!(space.members_of(1).len(), 2);
    // Witnesses classify back to their own atom.
    for i in 0..space.len() {
        assert_eq!(space.classify(space.witness(i)), Some(i));
    }
}

#[test]
fn atoms_empty_pattern_list() {
    let universe = dfa("^[0-9]+$");
    let space = AtomSpace::build(&universe, &[]).unwrap();
    assert_eq!(space.len(), 1);
    assert_eq!(space.classify("17"), Some(0));
    assert_eq!(space.classify("x"), None);
}

#[test]
fn atoms_disjoint_pattern_outside_universe() {
    let universe = dfa("^[0-9]+$");
    let pats = vec![Regex::parse("^[a-z]+$").unwrap()];
    let space = AtomSpace::build(&universe, &pats).unwrap();
    // The pattern intersects the universe nowhere: single atom, no members.
    assert_eq!(space.len(), 1);
    assert!(space.members_of(0).is_empty());
}

#[test]
fn classify_unmatched_string() {
    let universe = dfa("^[0-9]+$");
    let space = AtomSpace::build(&universe, &[]).unwrap();
    assert_eq!(space.classify(""), None);
}

#[test]
fn pattern_roundtrip_text() {
    let r = Regex::parse("_65000:[0-9]+_").unwrap();
    assert_eq!(r.pattern(), "_65000:[0-9]+_");
}

mod properties {
    use super::*;
    use clarify_testkit::{gens, prop_assert, prop_assert_eq, property, Source};

    /// Random subjects over a small alphabet, checked against a tiny
    /// reference matcher for concatenations of literals with `.`/`*`.
    fn arb_subject(g: &mut Source) -> String {
        g.vec(0, 7, |g| g.pick(&['a', 'b', 'c']))
            .into_iter()
            .collect()
    }

    property! {
        /// De Morgan over languages: ¬(A ∪ B) = ¬A ∩ ¬B, checked pointwise.
        fn de_morgan_pointwise(s in arb_subject) {
            let a = dfa("^a.*$");
            let b = dfa("^.*b$");
            let lhs = a.union(&b).complement();
            let rhs = a.complement().intersect(&b.complement());
            prop_assert_eq!(lhs.matches(&s), rhs.matches(&s));
        }

        /// Complement truly flips membership for every subject.
        fn complement_pointwise(s in arb_subject) {
            let d = dfa("^(ab|c)+$");
            prop_assert_eq!(d.matches(&s), !d.complement().matches(&s));
        }

        /// Minimized product DFAs agree with direct evaluation.
        fn intersect_pointwise(s in arb_subject) {
            let a = dfa("_b_");
            let b = dfa("^a");
            let i = a.intersect(&b);
            prop_assert_eq!(i.matches(&s), a.matches(&s) && b.matches(&s));
        }

        /// A DFA's witness is always accepted by that DFA.
        fn witness_accepted(pat in gens::sampled(vec![
            "^a+b$", "_32$", "^(x|y)z*$", "[0-9]:[0-9]",
        ])) {
            let d = dfa(pat);
            let w = d.witness().expect("nonempty");
            prop_assert!(d.matches(&w), "witness {:?} for {}", w, pat);
        }
    }
}

/// An independent reference implementation: naive backtracking evaluation
/// of the regex AST, used to cross-validate the whole NFA→DFA pipeline on
/// randomly generated patterns.
mod reference {
    use super::*;
    use crate::ast::Ast;
    use crate::{ETX, STX};
    use clarify_testkit::{prop_assert_eq, property, Rng, Source};
    use std::collections::BTreeSet;

    /// All positions where a match of `ast` starting at `start` can end.
    fn ends(ast: &Ast, s: &[u8], start: usize) -> BTreeSet<usize> {
        match ast {
            Ast::Empty => BTreeSet::new(),
            Ast::Epsilon => BTreeSet::from([start]),
            Ast::Class(c) => {
                if start < s.len() && c.contains(s[start]) {
                    BTreeSet::from([start + 1])
                } else {
                    BTreeSet::new()
                }
            }
            Ast::Concat(parts) => {
                let mut cur = BTreeSet::from([start]);
                for p in parts {
                    let mut next = BTreeSet::new();
                    for &e in &cur {
                        next.extend(ends(p, s, e));
                    }
                    cur = next;
                    if cur.is_empty() {
                        break;
                    }
                }
                cur
            }
            Ast::Alt(alts) => {
                let mut out = BTreeSet::new();
                for a in alts {
                    out.extend(ends(a, s, start));
                }
                out
            }
            Ast::Star(inner) => {
                let mut out = BTreeSet::from([start]);
                loop {
                    let mut grew = false;
                    for e in out.clone() {
                        for e2 in ends(inner, s, e) {
                            grew |= out.insert(e2);
                        }
                    }
                    if !grew {
                        return out;
                    }
                }
            }
            Ast::Plus(inner) => {
                // inner then inner*.
                let once = ends(inner, s, start);
                let star = Ast::Star(inner.clone());
                let mut out = BTreeSet::new();
                for e in once {
                    out.extend(ends(&star, s, e));
                }
                out
            }
            Ast::Opt(inner) => {
                let mut out = BTreeSet::from([start]);
                out.extend(ends(inner, s, start));
                out
            }
        }
    }

    /// Cisco substring semantics on the sentinel-wrapped subject.
    fn naive_matches(re: &Regex, text: &str) -> bool {
        let mut s = Vec::with_capacity(text.len() + 2);
        s.push(STX);
        s.extend_from_slice(text.as_bytes());
        s.push(ETX);
        (0..=s.len()).any(|i| !ends(&re.ast, &s, i).is_empty())
    }

    /// Random pattern strings over a small alphabet, rendered from a
    /// recursive shape so they always parse. Choice 0 is a leaf, so the
    /// all-zeros shrink target is the single literal "a".
    fn arb_pattern(g: &mut Source) -> String {
        fn node(g: &mut Source, depth: usize) -> String {
            let k = if depth == 0 {
                0
            } else {
                g.gen_range(0usize..6)
            };
            match k {
                0 => g
                    .pick(&["a", "b", "0", ".", "_", "^", "$", "[ab]", "[^a]", "[0-1]"])
                    .to_string(),
                1 => format!("{}{}", node(g, depth - 1), node(g, depth - 1)),
                2 => format!("({}|{})", node(g, depth - 1), node(g, depth - 1)),
                3 => format!("({})*", node(g, depth - 1)),
                4 => format!("({})+", node(g, depth - 1)),
                _ => format!("({})?", node(g, depth - 1)),
            }
        }
        node(g, 3)
    }

    fn arb_subject(g: &mut Source) -> String {
        g.vec(0, 6, |g| g.pick(&['a', 'b', '0', '1', ' ']))
            .into_iter()
            .collect()
    }

    property! {
        /// The compiled DFA agrees with naive AST evaluation on every
        /// random (pattern, subject) pair.
        fn dfa_matches_naive_reference(pat in arb_pattern, text in arb_subject) cases 512 {
            let re = Regex::parse(&pat).expect("generated patterns parse");
            let dfa = re.to_dfa();
            prop_assert_eq!(
                dfa.matches(&text),
                naive_matches(&re, &text),
                "pattern {:?} subject {:?}", pat, text
            );
        }

        /// Complementation agrees with the negated reference.
        fn complement_matches_negated_reference(pat in arb_pattern, text in arb_subject) cases 512 {
            let re = Regex::parse(&pat).expect("generated patterns parse");
            let cdfa = re.to_dfa().complement();
            prop_assert_eq!(cdfa.matches(&text), !naive_matches(&re, &text));
        }
    }
}

mod parser_robustness {
    use super::*;
    use clarify_testkit::{gens, property};

    property! {
        /// The regex parser never panics; it parses or errors cleanly, and
        /// whatever parses also compiles without panicking.
        fn regex_parser_never_panics(input in gens::ascii_string(40)) cases 512 {
            if let Ok(re) = Regex::parse(&input) {
                let _ = re.to_dfa();
            }
        }
    }
}
