//! Atomic predicates over a set of regexes.
//!
//! Given the regexes `R1..Rn` appearing in a configuration and a *universe*
//! `U` of well-formed subject strings (e.g. "all syntactically valid
//! community strings"), the atoms are the non-empty intersections
//! `U ∩ X1 ∩ … ∩ Xn` where each `Xi` is `Ri` or its complement. Atoms are
//! pairwise disjoint, cover `U`, and every `Ri ∩ U` is a union of atoms —
//! so one BDD variable per atom represents any Boolean combination of the
//! regexes exactly. This mirrors Batfish's community/AS-path handling.

use crate::{Dfa, Regex};

/// Safety valve: refuse to build more atoms than this. With `n` regexes
/// there can be up to `2^n` atoms; Clarify analyses scope the regex universe
/// per policy, so real counts stay small.
pub const ATOM_LIMIT: usize = 4096;

/// The partition of a universe language induced by a set of regexes.
#[derive(Clone, Debug)]
pub struct AtomSpace {
    atoms: Vec<Dfa>,
    witnesses: Vec<String>,
    /// `members[p]` lists the atom indices making up pattern `p`.
    members: Vec<Vec<usize>>,
    patterns: Vec<Regex>,
}

impl AtomSpace {
    /// Partitions `universe` by the given patterns.
    ///
    /// Returns `None` if the atom count would exceed [`ATOM_LIMIT`].
    /// An empty pattern list yields the single atom `universe` (when
    /// non-empty).
    pub fn build(universe: &Dfa, patterns: &[Regex]) -> Option<AtomSpace> {
        // Each block carries (dfa, bitmask of patterns it is inside).
        let mut blocks: Vec<(Dfa, Vec<bool>)> = Vec::new();
        if !universe.is_empty() {
            blocks.push((universe.clone(), Vec::new()));
        }
        for (pi, pat) in patterns.iter().enumerate() {
            let pdfa = pat.to_dfa();
            let ndfa = pdfa.complement();
            let mut next = Vec::with_capacity(blocks.len() * 2);
            for (block, mut inside) in blocks {
                let with = block.intersect(&pdfa);
                let without = block.intersect(&ndfa);
                let mut inside_with = inside.clone();
                inside_with.push(true);
                inside.push(false);
                if !with.is_empty() {
                    next.push((with, inside_with));
                }
                if !without.is_empty() {
                    next.push((without, inside));
                }
                if next.len() > ATOM_LIMIT {
                    return None;
                }
            }
            blocks = next;
            let _ = pi;
        }

        let mut atoms = Vec::with_capacity(blocks.len());
        let mut witnesses = Vec::with_capacity(blocks.len());
        let mut members = vec![Vec::new(); patterns.len()];
        for (ai, (dfa, inside)) in blocks.into_iter().enumerate() {
            let w = dfa.witness().expect("non-empty atom must have a witness");
            for (pi, &is_in) in inside.iter().enumerate() {
                if is_in {
                    members[pi].push(ai);
                }
            }
            atoms.push(dfa);
            witnesses.push(w);
        }
        Some(AtomSpace {
            atoms,
            witnesses,
            members,
            patterns: patterns.to_vec(),
        })
    }

    /// Number of atoms (may be zero for an empty universe).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the universe was empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The atom automaton at `idx`.
    pub fn atom(&self, idx: usize) -> &Dfa {
        &self.atoms[idx]
    }

    /// A concrete string drawn from atom `idx` (sentinels stripped).
    pub fn witness(&self, idx: usize) -> &str {
        &self.witnesses[idx]
    }

    /// The atoms whose union is pattern `p` (intersected with the universe).
    pub fn members_of(&self, p: usize) -> &[usize] {
        &self.members[p]
    }

    /// The patterns this space was built from.
    pub fn patterns(&self) -> &[Regex] {
        &self.patterns
    }

    /// Maps a concrete subject string to its atom, or `None` if the string
    /// lies outside the universe.
    pub fn classify(&self, text: &str) -> Option<usize> {
        self.atoms.iter().position(|a| a.matches(text))
    }
}
