//! Regex abstract syntax and the hand-written recursive-descent parser.

use crate::{ETX, STX};

/// A set of ASCII bytes (0..128), stored as a 128-bit bitmap.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteClass {
    bits: [u64; 2],
}

impl ByteClass {
    /// The empty class.
    pub const EMPTY: ByteClass = ByteClass { bits: [0, 0] };

    /// A class containing a single byte.
    pub fn single(b: u8) -> Self {
        let mut c = Self::EMPTY;
        c.insert(b);
        c
    }

    /// Adds a byte to the class. Panics for non-ASCII bytes.
    pub fn insert(&mut self, b: u8) {
        assert!(b < 128, "ByteClass only covers ASCII");
        self.bits[(b / 64) as usize] |= 1 << (b % 64);
    }

    /// Adds the inclusive byte range `[lo, hi]`.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Whether the class contains `b`.
    pub fn contains(&self, b: u8) -> bool {
        b < 128 && self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    /// The complement **within the printable subject alphabet**, i.e. all
    /// ASCII bytes except control characters; sentinels stay excluded so
    /// `[^x]` and `.` never consume the start/end markers.
    pub fn negated_printable(&self) -> ByteClass {
        let mut c = Self::EMPTY;
        for b in 0x20..0x7f {
            if !self.contains(b) {
                c.insert(b);
            }
        }
        c
    }

    /// Every byte of the class, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u8..128).filter(|&b| self.contains(b))
    }

    /// The class `.` matches: any printable character (not sentinels).
    pub fn dot() -> ByteClass {
        let mut c = Self::EMPTY;
        c.insert_range(0x20, 0x7e);
        c
    }

    /// The Cisco `_` delimiter class: whitespace, punctuation delimiters,
    /// and the start/end sentinels.
    pub fn delimiter() -> ByteClass {
        let mut c = Self::EMPTY;
        for b in [b' ', b',', b'{', b'}', b'(', b')', STX, ETX] {
            c.insert(b);
        }
        c
    }

    /// The class matching any byte at all, sentinels included (used for the
    /// implicit `.*` padding that implements substring search).
    pub fn any_with_sentinels() -> ByteClass {
        let mut c = Self::dot();
        c.insert(STX);
        c.insert(ETX);
        c
    }
}

impl std::fmt::Debug for ByteClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for b in self.iter() {
            match b {
                STX => write!(f, "^")?,
                ETX => write!(f, "$")?,
                b => write!(f, "{}", b as char)?,
            }
        }
        write!(f, "]")
    }
}

/// Regex syntax tree. `Concat`/`Alt` keep vectors to avoid deep recursion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Ast {
    /// Matches nothing. Kept for algebraic completeness of the AST even
    /// though the surface syntax cannot express it.
    #[allow(dead_code)]
    Empty,
    /// Matches the empty string.
    Epsilon,
    /// Matches one byte from the class.
    Class(ByteClass),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

/// Parse failure with a byte offset into the pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the original pattern where the error was noticed.
    pub position: usize,
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "regex error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for RegexError {}

/// A parsed Cisco-style regular expression.
///
/// The original pattern text is retained for display and round-tripping;
/// the compiled DFA is cached on first use ([`Regex::dfa`]).
#[derive(Debug)]
pub struct Regex {
    pub(crate) ast: Ast,
    pattern: String,
    compiled: std::sync::OnceLock<crate::Dfa>,
}

impl Clone for Regex {
    fn clone(&self) -> Self {
        Regex {
            ast: self.ast.clone(),
            pattern: self.pattern.clone(),
            // Share nothing; the clone recompiles lazily if needed.
            compiled: std::sync::OnceLock::new(),
        }
    }
}

impl PartialEq for Regex {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived state; equality is syntactic.
        self.ast == other.ast && self.pattern == other.pattern
    }
}

impl Eq for Regex {}

impl Regex {
    /// Parses a Cisco-style pattern.
    ///
    /// Supported syntax: literals, `.`, `_`, `^`, `$`, `[...]` / `[^...]`
    /// classes with ranges, grouping `(...)`, alternation `|`, and the
    /// `*` / `+` / `?` quantifiers. Backslash escapes the next character.
    pub fn parse(pattern: &str) -> Result<Regex, RegexError> {
        let mut p = Parser {
            bytes: pattern.as_bytes(),
            pos: 0,
        };
        let ast = p.alternation()?;
        if p.pos != p.bytes.len() {
            return Err(RegexError {
                message: format!("unexpected character '{}'", p.bytes[p.pos] as char),
                position: p.pos,
            });
        }
        Ok(Regex {
            ast,
            pattern: pattern.to_string(),
            compiled: std::sync::OnceLock::new(),
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Compiles to a minimized DFA with Cisco *substring* semantics:
    /// the automaton accepts any subject containing a match, where subjects
    /// are wrapped in the `STX`/`ETX` sentinels by [`crate::Dfa::matches`].
    ///
    /// The language is intersected with the *well-formed subject* language
    /// `STX · printable* · ETX`, so set operations between compiled DFAs
    /// (intersection, difference, atom construction) reason about genuine
    /// subjects only — never about byte strings with stray sentinels.
    pub fn to_dfa(&self) -> crate::Dfa {
        let pad = Ast::Star(Box::new(Ast::Class(ByteClass::any_with_sentinels())));
        let wrapped = Ast::Concat(vec![pad.clone(), self.ast.clone(), pad]);
        let well_formed = Ast::Concat(vec![
            Ast::Class(ByteClass::single(STX)),
            Ast::Star(Box::new(Ast::Class(ByteClass::dot()))),
            Ast::Class(ByteClass::single(ETX)),
        ]);
        crate::dfa::compile(&wrapped).intersect(&crate::dfa::compile(&well_formed))
    }

    /// The compiled DFA, built on first use and cached for the lifetime of
    /// this `Regex`. Prefer this over [`Regex::to_dfa`] anywhere matching
    /// happens repeatedly (evaluation loops, simulations).
    pub fn dfa(&self) -> &crate::Dfa {
        self.compiled.get_or_init(|| self.to_dfa())
    }

    /// Convenience: Cisco-style match of `text` against this regex.
    pub fn matches(&self, text: &str) -> bool {
        self.dfa().matches(text)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn err(&self, message: impl Into<String>) -> RegexError {
        RegexError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn alternation(&mut self) -> Result<Ast, RegexError> {
        let mut alts = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            alts.push(self.concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("one element")
        } else {
            Ast::Alt(alts)
        })
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Epsilon,
            1 => items.pop().expect("one element"),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let mut atom = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Ast::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.bump();
                    atom = Ast::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.bump();
                    atom = Ast::Opt(Box::new(atom));
                }
                _ => return Ok(atom),
            }
        }
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some(b'[') => self.class(),
            Some(b'.') => Ok(Ast::Class(ByteClass::dot())),
            Some(b'_') => Ok(Ast::Class(ByteClass::delimiter())),
            Some(b'^') => Ok(Ast::Class(ByteClass::single(STX))),
            Some(b'$') => Ok(Ast::Class(ByteClass::single(ETX))),
            Some(b'\\') => match self.bump() {
                None => Err(self.err("dangling escape")),
                Some(c) if c < 128 => Ok(Ast::Class(ByteClass::single(c))),
                Some(_) => Err(self.err("non-ASCII escape")),
            },
            Some(b) if b < 128 && !b"*+?)".contains(&b) => Ok(Ast::Class(ByteClass::single(b))),
            Some(b) => Err(RegexError {
                message: format!("unexpected character '{}'", b as char),
                position: self.pos - 1,
            }),
        }
    }

    fn class(&mut self) -> Result<Ast, RegexError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut cls = ByteClass::EMPTY;
        let mut first = true;
        loop {
            match self.bump() {
                None => return Err(self.err("unclosed character class")),
                Some(b']') if !first => break,
                Some(b) => {
                    let b = if b == b'\\' {
                        self.bump().ok_or_else(|| self.err("dangling escape"))?
                    } else {
                        b
                    };
                    if b >= 128 {
                        return Err(self.err("non-ASCII byte in class"));
                    }
                    // Range like a-z (a '-' just before ']' is a literal).
                    if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                        self.bump();
                        let hi = self.bump().ok_or_else(|| self.err("unfinished range"))?;
                        if hi >= 128 || hi < b {
                            return Err(self.err("invalid range"));
                        }
                        cls.insert_range(b, hi);
                    } else {
                        cls.insert(b);
                    }
                }
            }
            first = false;
        }
        Ok(Ast::Class(if negated {
            cls.negated_printable()
        } else {
            cls
        }))
    }
}
