//! Thompson construction: regex AST → nondeterministic finite automaton.

use crate::ast::{Ast, ByteClass};

/// One NFA state: at most one byte-class transition plus epsilon edges.
#[derive(Clone, Debug, Default)]
pub(crate) struct NfaState {
    pub byte_edge: Option<(ByteClass, usize)>,
    pub eps: Vec<usize>,
}

/// A Thompson NFA with a single start and single accept state.
#[derive(Clone, Debug)]
pub(crate) struct Nfa {
    pub states: Vec<NfaState>,
    pub start: usize,
    pub accept: usize,
}

impl Nfa {
    pub fn compile(ast: &Ast) -> Nfa {
        let mut b = Builder { states: Vec::new() };
        let (start, accept) = b.build(ast);
        Nfa {
            states: b.states,
            start,
            accept,
        }
    }

    /// Epsilon closure of a set of states, returned sorted + deduped.
    pub fn eps_closure(&self, set: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<usize> = set.to_vec();
        for &s in set {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &self.states[s].eps {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        (0..self.states.len()).filter(|&s| seen[s]).collect()
    }

    /// All byte classes mentioned by the NFA (for alphabet partitioning).
    pub fn classes(&self) -> Vec<ByteClass> {
        self.states
            .iter()
            .filter_map(|s| s.byte_edge.map(|(c, _)| c))
            .collect()
    }
}

struct Builder {
    states: Vec<NfaState>,
}

impl Builder {
    fn new_state(&mut self) -> usize {
        self.states.push(NfaState::default());
        self.states.len() - 1
    }

    fn eps(&mut self, from: usize, to: usize) {
        self.states[from].eps.push(to);
    }

    /// Returns (start, accept) of the fragment for `ast`.
    fn build(&mut self, ast: &Ast) -> (usize, usize) {
        match ast {
            Ast::Empty => {
                // Two states with no connecting edge: accepts nothing.
                let s = self.new_state();
                let a = self.new_state();
                (s, a)
            }
            Ast::Epsilon => {
                let s = self.new_state();
                let a = self.new_state();
                self.eps(s, a);
                (s, a)
            }
            Ast::Class(c) => {
                let s = self.new_state();
                let a = self.new_state();
                self.states[s].byte_edge = Some((*c, a));
                (s, a)
            }
            Ast::Concat(parts) => {
                let s = self.new_state();
                let mut cur = s;
                for p in parts {
                    let (ps, pa) = self.build(p);
                    self.eps(cur, ps);
                    cur = pa;
                }
                let a = self.new_state();
                self.eps(cur, a);
                (s, a)
            }
            Ast::Alt(alts) => {
                let s = self.new_state();
                let a = self.new_state();
                for alt in alts {
                    let (ast_s, ast_a) = self.build(alt);
                    self.eps(s, ast_s);
                    self.eps(ast_a, a);
                }
                (s, a)
            }
            Ast::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (is, ia) = self.build(inner);
                self.eps(s, is);
                self.eps(s, a);
                self.eps(ia, is);
                self.eps(ia, a);
                (s, a)
            }
            Ast::Plus(inner) => {
                let (is, ia) = self.build(inner);
                let a = self.new_state();
                self.eps(ia, is);
                self.eps(ia, a);
                (is, a)
            }
            Ast::Opt(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (is, ia) = self.build(inner);
                self.eps(s, is);
                self.eps(s, a);
                self.eps(ia, a);
                (s, a)
            }
        }
    }
}
