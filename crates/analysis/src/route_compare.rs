//! Differential comparison of two route-maps — the engine behind the
//! disambiguator's questions (Batfish's `compareRoutePolicies`).

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use clarify_bdd::Ref;
use clarify_netconfig::{Action, Config, RouteMapSet, RouteMapStanza, RouteMapVerdict};
use clarify_nettypes::{BgpRoute, Community};

use crate::error::AnalysisError;
use crate::route_space::RouteSpace;

/// One concrete behavioural difference between two policies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteDiff {
    /// The input route exhibiting the difference.
    pub route: BgpRoute,
    /// Outcome under the first policy.
    pub a: RouteMapVerdict,
    /// Outcome under the second policy.
    pub b: RouteMapVerdict,
}

/// The net effect of a stanza's community set clauses.
#[derive(Clone, Debug, PartialEq, Eq)]
enum CommEffect {
    None,
    Add(BTreeSet<Community>),
    Replace(BTreeSet<Community>),
}

/// The net effect of all set clauses in a stanza, field by field.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Transform {
    metric: Option<u32>,
    local_pref: Option<u32>,
    tag: Option<u32>,
    weight: Option<u16>,
    next_hop: Option<Ipv4Addr>,
    communities: CommEffect,
}

fn transform_of(stanza: &RouteMapStanza) -> Transform {
    let mut t = Transform {
        metric: None,
        local_pref: None,
        tag: None,
        weight: None,
        next_hop: None,
        communities: CommEffect::None,
    };
    for s in &stanza.sets {
        match s {
            RouteMapSet::Metric(v) => t.metric = Some(*v),
            RouteMapSet::LocalPref(v) => t.local_pref = Some(*v),
            RouteMapSet::Tag(v) => t.tag = Some(*v),
            RouteMapSet::Weight(v) => t.weight = Some(*v),
            RouteMapSet::NextHop(ip) => t.next_hop = Some(*ip),
            RouteMapSet::CommunityAdd(cs) => {
                t.communities = match t.communities {
                    CommEffect::None => CommEffect::Add(cs.iter().copied().collect()),
                    CommEffect::Add(mut old) => {
                        old.extend(cs.iter().copied());
                        CommEffect::Add(old)
                    }
                    CommEffect::Replace(mut old) => {
                        old.extend(cs.iter().copied());
                        CommEffect::Replace(old)
                    }
                };
            }
            RouteMapSet::CommunityReplace(cs) => {
                t.communities = CommEffect::Replace(cs.iter().copied().collect());
            }
        }
    }
    t
}

/// Whether two verdicts describe the same externally visible behaviour.
pub(crate) fn verdicts_equal(a: &RouteMapVerdict, b: &RouteMapVerdict) -> bool {
    match (a, b) {
        (RouteMapVerdict::Permit { route: ra, .. }, RouteMapVerdict::Permit { route: rb, .. }) => {
            ra == rb
        }
        (RouteMapVerdict::Permit { .. }, _) | (_, RouteMapVerdict::Permit { .. }) => false,
        // Any two denials are behaviourally identical.
        _ => true,
    }
}

/// Finds up to `limit` concrete routes on which `map_a` (in `cfg_a`) and
/// `map_b` (in `cfg_b`) behave differently; both verdicts come from the
/// concrete reference evaluator, so every reported difference is real.
///
/// The two configurations must both be covered by `space` (built over
/// them). Permit/deny differences and differences in set-clause outcomes
/// on fields inside the symbolic space are found exactly; differences
/// confined to fields outside it (next hop, weight) are found by adjusting
/// the witness's free fields.
pub fn compare_route_policies(
    space: &mut RouteSpace,
    cfg_a: &Config,
    map_a: &str,
    cfg_b: &Config,
    map_b: &str,
    limit: usize,
) -> Result<Vec<RouteDiff>, AnalysisError> {
    let rm_a = cfg_a
        .route_map(map_a)
        .ok_or_else(|| not_found(map_a))?
        .clone();
    let rm_b = cfg_b
        .route_map(map_b)
        .ok_or_else(|| not_found(map_b))?
        .clone();
    let (fires_a, implicit_a) = space.fire_sets(cfg_a, &rm_a)?;
    let (fires_b, implicit_b) = space.fire_sets(cfg_b, &rm_b)?;

    // Regions with their outcome descriptors. Implicit deny behaves like a
    // deny stanza.
    let mut regions_a: Vec<(Ref, Outcome)> = Vec::new();
    for (s, &f) in rm_a.stanzas.iter().zip(&fires_a) {
        regions_a.push((
            f,
            match s.action {
                Action::Permit => Outcome::Permit(s),
                Action::Deny => Outcome::Deny,
            },
        ));
    }
    regions_a.push((implicit_a, Outcome::Deny));
    let mut regions_b: Vec<(Ref, Outcome)> = Vec::new();
    for (s, &f) in rm_b.stanzas.iter().zip(&fires_b) {
        regions_b.push((
            f,
            match s.action {
                Action::Permit => Outcome::Permit(s),
                Action::Deny => Outcome::Deny,
            },
        ));
    }
    regions_b.push((implicit_b, Outcome::Deny));

    let mut diffs: Vec<RouteDiff> = Vec::new();
    let mut seen_routes: BTreeSet<String> = BTreeSet::new();

    'pairs: for (ra, oa) in &regions_a {
        for (rb, ob) in &regions_b {
            if diffs.len() >= limit {
                break 'pairs;
            }
            let joint = space.manager().and(*ra, *rb);
            if joint == Ref::FALSE {
                continue;
            }
            // Narrow `joint` to inputs whose outcomes differ.
            let diff_region = match (oa, ob) {
                (Outcome::Deny, Outcome::Deny) => Ref::FALSE,
                (Outcome::Permit(_), Outcome::Deny) | (Outcome::Deny, Outcome::Permit(_)) => joint,
                (Outcome::Permit(sa), Outcome::Permit(sb)) => {
                    transform_diff_region(space, joint, sa, sb)?
                }
            };
            if diff_region == Ref::FALSE {
                continue;
            }
            // Candidate witnesses: the low- and high-branch extractions,
            // each optionally augmented with a community that neither
            // transform mentions. The augmentation matters when the two
            // stanzas differ only in their community *effect* (e.g.
            // `set community c additive` vs replace): a community-free
            // witness makes both outputs coincide, and with no community
            // lists in either config the symbolic space cannot demand a
            // community by itself.
            let fresh = fresh_community(oa, ob);
            let mut candidates: Vec<BgpRoute> = Vec::new();
            for alt in [false, true] {
                let witness = if alt {
                    space.witness_alt(diff_region)?
                } else {
                    space.witness(diff_region)?
                };
                if let Some(mut route) = witness {
                    adjust_free_fields(&mut route, oa, ob);
                    if let Some(c) = fresh {
                        let mut augmented = route.clone();
                        augmented.communities.insert(c);
                        candidates.push(augmented);
                    }
                    candidates.push(route);
                }
            }
            for route in candidates {
                let va = cfg_a.eval_route_map(map_a, &route)?;
                let vb = cfg_b.eval_route_map(map_b, &route)?;
                if verdicts_equal(&va, &vb) {
                    // The symbolic region over-approximated on a field
                    // outside the space and this candidate coincided; try
                    // the next one, else skip the pair.
                    continue;
                }
                let key = format!("{route:?}");
                if seen_routes.insert(key) {
                    diffs.push(RouteDiff {
                        route,
                        a: va,
                        b: vb,
                    });
                }
                break;
            }
        }
    }
    Ok(diffs)
}

/// When the two outcomes are permit stanzas whose community effects
/// differ, returns a community that neither effect mentions (so adding it
/// to a witness exposes add-vs-replace differences). `None` when the
/// community effects agree or either side denies.
fn fresh_community(oa: &Outcome, ob: &Outcome) -> Option<Community> {
    let (Outcome::Permit(sa), Outcome::Permit(sb)) = (oa, ob) else {
        return None;
    };
    let ta = transform_of(sa);
    let tb = transform_of(sb);
    if ta.communities == tb.communities {
        return None;
    }
    let mentioned = |t: &Transform| -> BTreeSet<Community> {
        match &t.communities {
            CommEffect::None => BTreeSet::new(),
            CommEffect::Add(cs) | CommEffect::Replace(cs) => cs.clone(),
        }
    };
    let mut taken = mentioned(&ta);
    taken.extend(mentioned(&tb));
    (0..)
        .map(|v| Community::new(65123, v))
        .find(|c| !taken.contains(c))
}

/// Outcome descriptor for one firing region: either a permit stanza (whose
/// set clauses matter) or a denial of any kind.
enum Outcome<'s> {
    Permit(&'s RouteMapStanza),
    Deny,
}

/// For two permit stanzas firing on `joint`, the sub-region where their
/// outputs differ.
fn transform_diff_region(
    space: &mut RouteSpace,
    joint: Ref,
    sa: &RouteMapStanza,
    sb: &RouteMapStanza,
) -> Result<Ref, AnalysisError> {
    let ta = transform_of(sa);
    let tb = transform_of(sb);
    if ta == tb {
        return Ok(Ref::FALSE);
    }
    let mut acc = Ref::FALSE;
    // Fields inside the symbolic space: exact difference regions.
    acc = or_field_diff(space, acc, joint, "metric", ta.metric, tb.metric)?;
    acc = or_field_diff(
        space,
        acc,
        joint,
        "local-preference",
        ta.local_pref,
        tb.local_pref,
    )?;
    acc = or_field_diff(space, acc, joint, "tag", ta.tag, tb.tag)?;
    // Fields outside the space: any disagreement differs on (almost)
    // every input; the caller fixes the witness's free fields so the
    // concrete check passes.
    if ta.weight != tb.weight || ta.next_hop != tb.next_hop {
        acc = space.manager().or(acc, joint);
    }
    // Communities: a syntactic effect difference is treated as a
    // whole-region difference; the concrete validation step discards
    // the rare witness on which the effects coincide.
    if ta.communities != tb.communities {
        acc = space.manager().or(acc, joint);
    }
    Ok(acc)
}

/// Adds to `acc` the sub-region of `joint` where setting `field` to
/// `va`/`vb` (None = leave unchanged) produces different outputs.
fn or_field_diff(
    space: &mut RouteSpace,
    acc: Ref,
    joint: Ref,
    field: &'static str,
    va: Option<u32>,
    vb: Option<u32>,
) -> Result<Ref, AnalysisError> {
    let region = match (va, vb) {
        (None, None) => Ref::FALSE,
        (Some(x), Some(y)) if x == y => Ref::FALSE,
        (Some(_), Some(_)) => joint,
        (Some(v), None) | (None, Some(v)) => {
            if v >= 1 << 16 {
                // The set value lies outside the 16-bit input space, so no
                // input can already carry it: the whole region differs.
                joint
            } else {
                // Differs unless the input already carries value v.
                let eq = encode_field_eq(space, field, v)?;
                let ne = space.manager().not(eq);
                space.manager().and(joint, ne)
            }
        }
    };
    Ok(space.manager().or(acc, region))
}

fn encode_field_eq(
    space: &mut RouteSpace,
    field: &'static str,
    v: u32,
) -> Result<Ref, AnalysisError> {
    use clarify_netconfig::RouteMapMatch;
    let m = match field {
        "metric" => RouteMapMatch::Metric(v),
        "local-preference" => RouteMapMatch::LocalPref(v),
        "tag" => RouteMapMatch::Tag(v),
        _ => unreachable!("field {field}"),
    };
    // The match encoding for these fields needs no config context.
    space.encode_match(&Config::new(), &m)
}

/// Ensures the witness's fields outside the symbolic space actually
/// expose a set-clause disagreement.
fn adjust_free_fields(route: &mut BgpRoute, oa: &Outcome, ob: &Outcome) {
    let (ta, tb) = match (oa, ob) {
        (Outcome::Permit(sa), Outcome::Permit(sb)) => (transform_of(sa), transform_of(sb)),
        _ => return,
    };
    if ta.next_hop != tb.next_hop {
        // Pick an input next hop unequal to whichever side sets one.
        let avoid = ta.next_hop.or(tb.next_hop);
        if let Some(v) = avoid {
            if route.next_hop == v {
                route.next_hop = if v == Ipv4Addr::new(0, 0, 0, 1) {
                    Ipv4Addr::new(0, 0, 0, 2)
                } else {
                    Ipv4Addr::new(0, 0, 0, 1)
                };
            }
        }
    }
    if ta.weight != tb.weight {
        let avoid = ta.weight.or(tb.weight);
        if let Some(v) = avoid {
            if route.weight == v {
                route.weight = if v == 0 { 1 } else { 0 };
            }
        }
    }
}

fn not_found(name: &str) -> AnalysisError {
    AnalysisError::Config(clarify_netconfig::ConfigError::NotFound {
        kind: "route-map",
        name: name.to_string(),
    })
}

/// Whether two policies are behaviourally equivalent on every valid route.
pub fn policies_equivalent(
    space: &mut RouteSpace,
    cfg_a: &Config,
    map_a: &str,
    cfg_b: &Config,
    map_b: &str,
) -> Result<bool, AnalysisError> {
    Ok(compare_route_policies(space, cfg_a, map_a, cfg_b, map_b, 1)?.is_empty())
}
