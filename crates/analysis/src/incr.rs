//! Keyed symbolic state for incremental re-analysis.
//!
//! The interactive loop of the paper (edit intent → re-verify → re-ask)
//! re-runs the symbolic analyses after every small edit. This module keys
//! the expensive artifacts — per-object fire-sets — by `(RuleId, content
//! hash)` so an edit to one stanza invalidates only the object it touches,
//! and a reverted edit (the A/B toggling a dialogue produces) hits the
//! cache from an earlier generation outright.
//!
//! Refs stored here point into one specific space's BDD manager, which
//! garbage-collects unrooted nodes at the
//! [`Manager::clear_op_caches`](clarify_bdd::Manager::clear_op_caches)
//! seam — so every cached entry pins its refs with [`clarify_bdd::Root`]
//! handles at insertion time, and they survive collection and reordering
//! alike. A [`FireSetCache`] is sound exactly as long as its space lives;
//! callers that rebuild a space (e.g. because the atom environment
//! changed) must [`FireSetCache::clear`] the cache with it.

use std::collections::HashMap;

use clarify_bdd::{Manager, Ref, Root};
use clarify_netconfig::{fnv1a64_combine, Acl, Config, ObjectKind, PrefixList, RouteMap, RuleId};

use crate::error::AnalysisError;
use crate::filter_compare::PrefixSpace;
use crate::packet_space::PacketSpace;
use crate::route_space::RouteSpace;

/// Hash of the **atom environment** a [`RouteSpace`] would build for the
/// given configurations: the deduplicated community and AS-path regex
/// pattern lists, in the exact first-seen order [`RouteSpace::new`]
/// collects them. Two configurations with equal atom-env hashes produce
/// route spaces with identical variable layouts and atom witnesses, so
/// route-map findings (including decoded witnesses) carry over verbatim;
/// when the hash changes, every route-map analysis is dirty, because atom
/// witnesses — and with them, rendered diagnostics — may shift even for
/// untouched maps.
pub fn atom_env_hash(configs: &[&Config]) -> u64 {
    let mut comm_seen: HashMap<&str, ()> = HashMap::new();
    let mut path_seen: HashMap<&str, ()> = HashMap::new();
    let mut h = clarify_netconfig::fnv1a64(b"atom-env/v1");
    for cfg in configs {
        for cl in cfg.community_lists.values() {
            for e in &cl.entries {
                let pat = e.regex.pattern();
                if let std::collections::hash_map::Entry::Vacant(v) = comm_seen.entry(pat) {
                    v.insert(());
                    h = fnv1a64_combine(h, clarify_netconfig::fnv1a64(pat.as_bytes()));
                }
            }
        }
    }
    h = fnv1a64_combine(h, 0xa5a5_a5a5_a5a5_a5a5); // comm/path separator
    for cfg in configs {
        for al in cfg.as_path_lists.values() {
            for e in &al.entries {
                let pat = e.regex.pattern();
                if let std::collections::hash_map::Entry::Vacant(v) = path_seen.entry(pat) {
                    v.insert(());
                    h = fnv1a64_combine(h, clarify_netconfig::fnv1a64(pat.as_bytes()));
                }
            }
        }
    }
    h
}

/// First-match firing regions of one object: one set per rule, plus the
/// fall-through remainder (the implicit trailing deny).
#[derive(Clone, Debug)]
pub struct FireSets {
    /// Firing region per stanza/entry, in order.
    pub fires: Vec<Ref>,
    /// Assignments reaching the end without matching.
    pub remainder: Ref,
}

/// One cached generation: the fire-sets plus the [`Root`] handles pinning
/// every ref in them against garbage collection.
#[derive(Debug)]
struct CachedSets {
    sets: FireSets,
    roots: Vec<Root>,
}

/// A fire-set cache keyed by `(object identity, content hash)`.
///
/// Keying by hash — not just identity — means a dirty object simply
/// misses (its hash changed) while older generations stay retrievable:
/// reverting an edit restores the old hash and hits again. Entries are
/// never evicted except by [`invalidate`](FireSetCache::invalidate) or
/// [`clear`](FireSetCache::clear); each entry roots its refs in the
/// owning space's manager, so the cost of a stale generation is its
/// pinned BDD nodes — bounded, in practice, by the handful of hashes an
/// edit dialogue toggles between.
#[derive(Debug, Default)]
pub struct FireSetCache {
    entries: HashMap<(RuleId, u64), CachedSets>,
}

impl FireSetCache {
    /// An empty cache.
    pub fn new() -> FireSetCache {
        FireSetCache::default()
    }

    /// Number of cached generations (not distinct objects).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the fire-sets of `id` at content hash `hash`, recording
    /// `incr.cache_hits` / `incr.cache_misses`.
    pub fn get(&self, id: &RuleId, hash: u64) -> Option<&FireSets> {
        let hit = self.entries.get(&(id.clone(), hash));
        if hit.is_some() {
            clarify_obs::global().counter("incr.cache_hits").incr();
        } else {
            clarify_obs::global().counter("incr.cache_misses").incr();
        }
        hit.map(|c| &c.sets)
    }

    /// Stores the fire-sets of `id` at content hash `hash`, protecting
    /// every ref in `mgr` — which must be the manager of the space that
    /// built `sets` — so the entry survives collection and reordering.
    pub fn insert(&mut self, mgr: &mut Manager, id: RuleId, hash: u64, sets: FireSets) {
        let roots = sets
            .fires
            .iter()
            .chain(std::iter::once(&sets.remainder))
            .map(|&r| mgr.protect(r))
            .collect();
        if let Some(old) = self.entries.insert((id, hash), CachedSets { sets, roots }) {
            for root in old.roots {
                mgr.unprotect(root);
            }
        }
    }

    /// Drops every cached generation of one object, releasing its roots
    /// in `mgr` (the same manager the entries were inserted with).
    pub fn invalidate(&mut self, mgr: &mut Manager, id: &RuleId) {
        let gone: Vec<(RuleId, u64)> = self
            .entries
            .keys()
            .filter(|(k, _)| k == id)
            .cloned()
            .collect();
        for key in gone {
            let cached = self.entries.remove(&key).expect("key just enumerated");
            for root in cached.roots {
                mgr.unprotect(root);
            }
        }
    }

    /// Drops everything — required whenever the owning space is rebuilt,
    /// because cached Refs point into the old manager. The roots are
    /// dropped without unprotecting: the old manager is going away with
    /// its space, and a leaked root slot merely pins nodes for the
    /// remainder of that manager's life (the safe failure mode).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl RouteSpace {
    /// [`RouteSpace::fire_sets`] through a [`FireSetCache`], keyed by the
    /// map's object identity and `hash` (its content hash — the caller
    /// computes it once per edit via
    /// [`Config::object_hashes`](clarify_netconfig::Config::object_hashes)).
    pub fn fire_sets_cached(
        &mut self,
        cache: &mut FireSetCache,
        cfg: &Config,
        map: &RouteMap,
        hash: u64,
    ) -> Result<FireSets, AnalysisError> {
        let id = RuleId::object(ObjectKind::RouteMap, &map.name);
        if let Some(sets) = cache.get(&id, hash) {
            return Ok(sets.clone());
        }
        let (fires, remainder) = self.fire_sets(cfg, map)?;
        let sets = FireSets { fires, remainder };
        cache.insert(self.manager(), id, hash, sets.clone());
        Ok(sets)
    }
}

impl PacketSpace {
    /// [`PacketSpace::fire_sets`] through a [`FireSetCache`].
    pub fn fire_sets_cached(&mut self, cache: &mut FireSetCache, acl: &Acl, hash: u64) -> FireSets {
        let id = RuleId::object(ObjectKind::Acl, &acl.name);
        if let Some(sets) = cache.get(&id, hash) {
            return sets.clone();
        }
        let (fires, remainder) = self.fire_sets(acl);
        let sets = FireSets { fires, remainder };
        cache.insert(self.manager(), id, hash, sets.clone());
        sets
    }
}

impl PrefixSpace {
    /// [`PrefixSpace::fire_sets`] through a [`FireSetCache`].
    pub fn fire_sets_cached(
        &mut self,
        cache: &mut FireSetCache,
        list: &PrefixList,
        hash: u64,
    ) -> FireSets {
        let id = RuleId::object(ObjectKind::PrefixList, &list.name);
        if let Some(sets) = cache.get(&id, hash) {
            return sets.clone();
        }
        let (fires, remainder) = self.fire_sets(list);
        let sets = FireSets { fires, remainder };
        cache.insert(self.manager(), id, hash, sets.clone());
        sets
    }
}
