//! Symbolic (BDD-based) analyses of route-maps and ACLs.
//!
//! This crate stands in for the Batfish analyses the paper relies on:
//!
//! * [`RouteSpace::search_route_policies`] — find a route a policy handles
//!   with a given action, optionally constrained (Batfish
//!   `searchRoutePolicies`);
//! * [`compare_route_policies`] — find concrete routes on which two
//!   policies behave differently, with both outcomes (Batfish
//!   `compareRoutePolicies`); this is what powers the disambiguator's
//!   differential examples;
//! * [`PacketSpace::search_filters`] — the packet/ACL analogue (Batfish
//!   `searchFilters`);
//! * [`acl_overlaps`] / [`route_map_overlaps`] — the overlap census of §3
//!   (the paper's own Batfish extension).
//!
//! Routes are encoded over BDD variables: 32 prefix bits, 6 prefix-length
//! bits, 16-bit local-preference / metric / tag fields, one variable per
//! **community atomic predicate**, and a binary-encoded **AS-path atomic
//! predicate** index. Atomic predicates are computed by
//! `clarify-automata` from the exact set of regexes appearing in the
//! configurations under analysis, so every Boolean combination of the
//! config's lists is represented exactly and every witness decodes to a
//! concrete [`BgpRoute`](clarify_nettypes::BgpRoute).

#![warn(missing_docs)]

mod error;
mod filter_compare;
mod incr;
mod network_space;
mod overlap;
mod packet_space;
mod route_compare;
mod route_space;
mod spec;

pub use error::AnalysisError;
pub use filter_compare::{
    compare_filters, compare_prefix_lists, filters_equivalent, prefix_lists_equivalent, FilterDiff,
    PrefixListDiff, PrefixSpace,
};
pub use incr::{atom_env_hash, FireSetCache, FireSets};
pub use network_space::NetworkSpace;
pub use overlap::{
    acl_overlaps, acl_overlaps_symbolic, route_map_chain_overlaps, route_map_overlaps,
    ChainOverlapPair, OverlapPair, OverlapReport,
};
pub use packet_space::PacketSpace;
pub use route_compare::{compare_route_policies, policies_equivalent, RouteDiff};
pub use route_space::{OutputConstraints, RouteSpace};
pub use spec::{verify_stanza_against_spec, SpecVerdict, StanzaSpec};

#[cfg(test)]
mod tests;
