//! Analysis-layer errors.

use clarify_netconfig::ConfigError;

/// Everything that can go wrong during symbolic analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The underlying configuration was malformed or had dangling refs.
    Config(ConfigError),
    /// A numeric field exceeded the 16-bit symbolic encoding.
    ValueTooLarge {
        /// Field name (`"local-preference"` etc.).
        field: &'static str,
        /// The offending value.
        value: u32,
    },
    /// A regex pattern was not part of the analyzer's atom universe —
    /// the config changed after the analyzer was built.
    UnknownPattern(String),
    /// A concrete value (community / AS path) cannot be expressed in the
    /// atom universe (e.g. an AS number with more than five digits).
    OutsideUniverse {
        /// What kind of value.
        kind: &'static str,
        /// Its rendering.
        value: String,
    },
    /// The regex set produced too many atomic predicates.
    AtomLimitExceeded,
    /// An internal consistency condition failed. Never expected on any
    /// input; returned instead of panicking so a long-running service
    /// survives a broken invariant in one request.
    InvariantViolated(&'static str),
}

impl From<ConfigError> for AnalysisError {
    fn from(e: ConfigError) -> Self {
        AnalysisError::Config(e)
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Config(e) => write!(f, "configuration error: {e}"),
            AnalysisError::ValueTooLarge { field, value } => {
                write!(f, "{field} value {value} exceeds the 16-bit symbolic range")
            }
            AnalysisError::UnknownPattern(p) => {
                write!(f, "regex '{p}' is not part of this analyzer's universe")
            }
            AnalysisError::OutsideUniverse { kind, value } => {
                write!(f, "{kind} '{value}' lies outside the modelled universe")
            }
            AnalysisError::AtomLimitExceeded => {
                write!(f, "too many atomic predicates; split the analysis")
            }
            AnalysisError::InvariantViolated(msg) => {
                write!(f, "internal invariant violated: {msg}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}
