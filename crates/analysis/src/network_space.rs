//! Symbolic policy *transfer functions* for cross-device analysis.
//!
//! [`NetworkSpace`] wraps a [`RouteSpace`] with the image computation the
//! network linter needs: given the set of routes arriving at a policy, what
//! set can leave it? A route-map is a first-match cascade whose permit
//! stanzas rewrite attributes, so the image is the union, over permit
//! stanzas, of the stanza's `set` clauses applied to `fire ∩ input`. Each
//! `set` is an existential quantification of the written field followed by
//! re-constraining it — exact for the encoded fields (local-preference,
//! metric, tag, community atoms) and the identity for unencoded ones
//! (weight, next hop).
//!
//! Crossing an AS boundary additionally resets LOCAL_PREF to 100 and
//! prepends the sender's ASN; [`NetworkSpace::cross_as_normalize`] models
//! this by pinning LOCAL_PREF and forgetting the AS-path atom (any valid
//! path), which over-approximates the prepend without tracking per-hop
//! path strings. All transfers are monotone in their input, so composing
//! them over topology edges yields sound over-approximations of what the
//! BGP fixed point can carry (see DESIGN.md §10).

use clarify_bdd::Ref;
use clarify_netconfig::{Action, Config, RouteMap, RouteMapSet};
use clarify_nettypes::{BgpRoute, Prefix};

use crate::error::AnalysisError;
use crate::incr::FireSetCache;
use crate::route_space::RouteSpace;

/// A [`RouteSpace`] plus a private [`FireSetCache`], extended with policy
/// transfer functions. One instance serves a whole topology; build it from
/// **every** config in the network so all policies share one atom
/// environment.
pub struct NetworkSpace {
    space: RouteSpace,
    cache: FireSetCache,
}

impl NetworkSpace {
    /// Builds the space over all configurations of a topology.
    pub fn new(configs: &[&Config]) -> Result<NetworkSpace, AnalysisError> {
        clarify_obs::global()
            .counter("analysis.network_space_builds")
            .incr();
        Ok(NetworkSpace {
            space: RouteSpace::new(configs)?,
            cache: FireSetCache::new(),
        })
    }

    /// The underlying route space (for witnesses, permit sets, manager).
    pub fn space_mut(&mut self) -> &mut RouteSpace {
        &mut self.space
    }

    /// The set of assignments that decode to well-formed routes.
    pub fn valid(&self) -> Ref {
        self.space.valid()
    }

    /// First-match firing regions of `map`, through the internal cache.
    ///
    /// `hash` keys the cache together with the map's name. Because one
    /// space serves **many configs**, same-named maps on different routers
    /// collide on name — and an object hash from
    /// [`Config::object_hashes`](clarify_netconfig::Config::object_hashes)
    /// covers only the map's own text, not the lists it references. The
    /// caller must therefore mix a per-config discriminator (e.g. a hash
    /// of the whole config source) into `hash` before passing it here.
    pub fn fire_sets(
        &mut self,
        cfg: &Config,
        map: &RouteMap,
        hash: u64,
    ) -> Result<crate::incr::FireSets, AnalysisError> {
        self.space.fire_sets_cached(&mut self.cache, cfg, map, hash)
    }

    /// The region a route-map permits (union of permit firing regions),
    /// using the internal cache.
    pub fn permit_region(
        &mut self,
        cfg: &Config,
        map: &RouteMap,
        hash: u64,
    ) -> Result<Ref, AnalysisError> {
        let sets = self.fire_sets(cfg, map, hash)?;
        let permits: Vec<Ref> = map
            .stanzas
            .iter()
            .zip(&sets.fires)
            .filter(|(s, _)| s.action == Action::Permit)
            .map(|(_, &f)| f)
            .collect();
        Ok(self.space.mgr.or_all(permits))
    }

    /// The image of `input` under the route-map: the set of routes that
    /// can emerge from some permit stanza, with that stanza's rewrites
    /// applied. Monotone in `input`; `⊥` in yields `⊥` out.
    pub fn transfer(
        &mut self,
        cfg: &Config,
        map: &RouteMap,
        hash: u64,
        input: Ref,
    ) -> Result<Ref, AnalysisError> {
        let _span = clarify_obs::span!("network_transfer");
        clarify_obs::global().counter("analysis.transfers").incr();
        let sets = self.fire_sets(cfg, map, hash)?;
        let mut out = Ref::FALSE;
        for (stanza, &fire) in map.stanzas.iter().zip(&sets.fires) {
            if stanza.action != Action::Permit {
                continue;
            }
            let taken = self.space.mgr.and(fire, input);
            if taken == Ref::FALSE {
                continue;
            }
            let written = self.apply_sets(taken, &stanza.sets)?;
            out = self.space.mgr.or(out, written);
        }
        Ok(out)
    }

    /// Applies a stanza's `set` clauses, in order, to a region. Later
    /// writes to the same field win, exactly as the concrete evaluator's
    /// [`Config::apply_sets`](clarify_netconfig::Config) does.
    fn apply_sets(&mut self, region: Ref, sets: &[RouteMapSet]) -> Result<Ref, AnalysisError> {
        let mut r = region;
        for s in sets {
            r = match s {
                RouteMapSet::Metric(v) => {
                    let v = self.space.field_value("metric", *v)?;
                    self.assign(r, Field::Metric, v)
                }
                RouteMapSet::LocalPref(v) => {
                    let v = self.space.field_value("local-preference", *v)?;
                    self.assign(r, Field::LocalPref, v)
                }
                RouteMapSet::Tag(v) => {
                    let v = self.space.field_value("tag", *v)?;
                    self.assign(r, Field::Tag, v)
                }
                // Weight and next hop are not encoded in the space, so the
                // assignment is the identity on the symbolic region.
                RouteMapSet::Weight(_) | RouteMapSet::NextHop(_) => r,
                RouteMapSet::CommunityAdd(cs) => {
                    let mut acc = r;
                    for c in cs {
                        let atom =
                            self.space
                                .comm_atoms
                                .classify(&c.subject())
                                .ok_or_else(|| AnalysisError::OutsideUniverse {
                                    kind: "community",
                                    value: c.subject(),
                                })?;
                        let var = self.space.comm_vars[atom];
                        acc = self.space.mgr.exists(acc, &[var]);
                        let lit = self.space.mgr.var(var);
                        acc = self.space.mgr.and(acc, lit);
                    }
                    acc
                }
                RouteMapSet::CommunityReplace(cs) => {
                    let mut member = vec![false; self.space.comm_vars.len()];
                    for c in cs {
                        let atom =
                            self.space
                                .comm_atoms
                                .classify(&c.subject())
                                .ok_or_else(|| AnalysisError::OutsideUniverse {
                                    kind: "community",
                                    value: c.subject(),
                                })?;
                        member[atom] = true;
                    }
                    let vars = self.space.comm_vars.clone();
                    let mut acc = self.space.mgr.exists(r, &vars);
                    for (i, &v) in vars.iter().enumerate() {
                        let lit = self.space.mgr.literal(v, member[i]);
                        acc = self.space.mgr.and(acc, lit);
                    }
                    acc
                }
            };
        }
        Ok(r)
    }

    fn assign(&mut self, region: Ref, field: Field, value: u64) -> Ref {
        let vars = match field {
            Field::LocalPref => self.space.lp_vars.clone(),
            Field::Metric => self.space.metric_vars.clone(),
            Field::Tag => self.space.tag_vars.clone(),
        };
        let forgotten = self.space.mgr.exists(region, &vars);
        let eq = self.space.mgr.eq_const(&vars, value);
        self.space.mgr.and(forgotten, eq)
    }

    /// What an eBGP receiver sees of `region` before its import policy
    /// runs: LOCAL_PREF resets to 100 and the AS path gains the sender's
    /// ASN — modelled by forgetting the path atom entirely (any valid
    /// path), a sound over-approximation of the prepend.
    pub fn cross_as_normalize(&mut self, region: Ref) -> Ref {
        let r = self.assign(region, Field::LocalPref, 100);
        let path_vars = self.space.path_vars.clone();
        let r = self.space.mgr.exists(r, &path_vars);
        let valid = self.space.valid();
        self.space.mgr.and(r, valid)
    }

    /// The exact region of locally originated routes: one point per
    /// prefix, with the simulator's origination defaults.
    pub fn origination_region(&mut self, prefixes: &[Prefix]) -> Result<Ref, AnalysisError> {
        let mut acc = Ref::FALSE;
        for p in prefixes {
            let point = self.space.encode_route(&BgpRoute::with_defaults(*p))?;
            acc = self.space.mgr.or(acc, point);
        }
        Ok(acc)
    }

    /// Drops the manager's memoization tables between work items — and,
    /// since the route space arms auto-GC, lets the kernel collect
    /// unrooted nodes (or re-sift a degraded order) here. Cached fire-set
    /// `Ref`s stay valid because the internal [`FireSetCache`] roots every
    /// entry; any other ref held across this call does not survive.
    pub fn clear_op_caches(&mut self) {
        self.space.manager().clear_op_caches();
    }
}

#[derive(Clone, Copy)]
enum Field {
    LocalPref,
    Metric,
    Tag,
}
