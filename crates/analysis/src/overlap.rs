//! Overlap census of ACLs and route-maps — the paper's §3 measurement
//! extension to Batfish.
//!
//! Two ACL rules have a **conflicting overlap** when some packet matches
//! both and their actions differ. Two route-map stanzas **overlap** when
//! some route matches both (actions are ignored for route-maps, because a
//! stanza may chain to other policies via goto/continue/call — the paper
//! treats the count as an upper bound, and so do we; we additionally
//! report whether the actions differ, which §3.2 uses for the campus
//! numbers).
//!
//! ACL entries are hyperrectangles (prefix × prefix × protocol × port-range
//! × port-range), so ACL overlap is decided with exact interval arithmetic;
//! the symbolic (BDD) path is available for cross-validation and is used
//! for route-maps, whose match conditions are not rectangular.

use clarify_netconfig::{Acl, Config, RouteMap};

use crate::error::AnalysisError;
use crate::packet_space::PacketSpace;
use crate::route_space::RouteSpace;

/// One overlapping rule pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlapPair {
    /// Index of the earlier rule.
    pub i: usize,
    /// Index of the later rule.
    pub j: usize,
    /// Whether the two rules' actions differ.
    pub conflicting: bool,
    /// Whether one rule's match set contains the other's (the "trivial
    /// subset" case §3.2 filters out, e.g. `permit tcp host A host B`
    /// under `deny ip any any`).
    pub subset: bool,
}

/// The overlap census of one ACL or route-map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OverlapReport {
    /// Number of rules in the policy.
    pub num_rules: usize,
    /// Every overlapping pair, in (i, j) order.
    pub pairs: Vec<OverlapPair>,
}

impl OverlapReport {
    /// Total number of overlapping pairs.
    pub fn count(&self) -> usize {
        self.pairs.len()
    }

    /// Pairs whose actions differ.
    pub fn conflict_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.conflicting).count()
    }

    /// Conflicting pairs that are not subset-shaped (the §3.2 "non-trivial"
    /// measure).
    pub fn nontrivial_conflict_count(&self) -> usize {
        self.pairs
            .iter()
            .filter(|p| p.conflicting && !p.subset)
            .count()
    }

    /// Whether any overlap exists.
    pub fn has_overlap(&self) -> bool {
        !self.pairs.is_empty()
    }
}

/// Exact interval-arithmetic overlap analysis of an ACL.
pub fn acl_overlaps(acl: &Acl) -> OverlapReport {
    let mut pairs = Vec::new();
    for i in 0..acl.entries.len() {
        for j in (i + 1)..acl.entries.len() {
            let a = &acl.entries[i];
            let b = &acl.entries[j];
            let proto_overlap = a.protocol.matches(b.protocol) || b.protocol.matches(a.protocol);
            let overlap = proto_overlap
                && a.src.as_prefix().overlaps(&b.src.as_prefix())
                && a.dst.as_prefix().overlaps(&b.dst.as_prefix())
                && a.src_ports.overlaps(&b.src_ports)
                && a.dst_ports.overlaps(&b.dst_ports);
            if overlap {
                pairs.push(OverlapPair {
                    i,
                    j,
                    conflicting: a.action != b.action,
                    subset: a.match_superset_of(b) || b.match_superset_of(a),
                });
            }
        }
    }
    OverlapReport {
        num_rules: acl.entries.len(),
        pairs,
    }
}

/// Symbolic (BDD) overlap analysis of an ACL; semantically identical to
/// [`acl_overlaps`] and used to cross-validate it.
pub fn acl_overlaps_symbolic(space: &mut PacketSpace, acl: &Acl) -> OverlapReport {
    let sets = space.match_sets(acl);
    let valid = space.valid();
    let mut pairs = Vec::new();
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            let both = space.manager().and(sets[i], sets[j]);
            let both = space.manager().and(both, valid);
            if both == clarify_bdd::Ref::FALSE {
                continue;
            }
            let ij = {
                let vi = space.manager().and(sets[i], valid);
                let vj = space.manager().and(sets[j], valid);
                let i_in_j = space.manager().implies_true(vi, vj);
                let j_in_i = space.manager().implies_true(vj, vi);
                i_in_j || j_in_i
            };
            pairs.push(OverlapPair {
                i,
                j,
                conflicting: acl.entries[i].action != acl.entries[j].action,
                subset: ij,
            });
        }
    }
    OverlapReport {
        num_rules: sets.len(),
        pairs,
    }
}

/// Symbolic overlap analysis of a route-map: stanza pairs whose match sets
/// intersect on at least one valid route.
pub fn route_map_overlaps(
    space: &mut RouteSpace,
    cfg: &Config,
    map: &RouteMap,
) -> Result<OverlapReport, AnalysisError> {
    let sets = space.match_sets(cfg, map)?;
    let valid = space.valid();
    let mut pairs = Vec::new();
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            let both = space.manager().and(sets[i], sets[j]);
            let both = space.manager().and(both, valid);
            if both == clarify_bdd::Ref::FALSE {
                continue;
            }
            let subset = {
                let vi = space.manager().and(sets[i], valid);
                let vj = space.manager().and(sets[j], valid);
                let i_in_j = space.manager().implies_true(vi, vj);
                let j_in_i = space.manager().implies_true(vj, vi);
                i_in_j || j_in_i
            };
            pairs.push(OverlapPair {
                i,
                j,
                conflicting: map.stanzas[i].action != map.stanzas[j].action,
                subset,
            });
        }
    }
    Ok(OverlapReport {
        num_rules: sets.len(),
        pairs,
    })
}

/// One overlapping stanza pair across a *chain* of route-maps applied in
/// sequence to the same neighbor (§3.1: "there can be overlaps not just
/// between different stanzas within a single route map, but also between
/// different route maps applied to the same neighbor").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainOverlapPair {
    /// Index of the earlier map in the chain.
    pub map_i: usize,
    /// Stanza index within the earlier map.
    pub stanza_i: usize,
    /// Index of the later map (may equal `map_i` for intra-map pairs).
    pub map_j: usize,
    /// Stanza index within the later map.
    pub stanza_j: usize,
    /// Whether the two stanzas' actions differ.
    pub conflicting: bool,
}

/// Overlap census across a chain of route-maps: every pair of stanzas
/// (within one map or across maps) whose match sets intersect on a valid
/// route. Intra-map pairs have `map_i == map_j`.
pub fn route_map_chain_overlaps(
    space: &mut RouteSpace,
    cfg: &Config,
    chain: &[&RouteMap],
) -> Result<Vec<ChainOverlapPair>, AnalysisError> {
    // Flatten to (map index, stanza index, match set, action).
    let valid = space.valid();
    let mut flat = Vec::new();
    for (mi, rm) in chain.iter().enumerate() {
        let sets = space.match_sets(cfg, rm)?;
        for (si, set) in sets.into_iter().enumerate() {
            let vset = space.manager().and(set, valid);
            flat.push((mi, si, vset, rm.stanzas[si].action));
        }
    }
    let mut pairs = Vec::new();
    for a in 0..flat.len() {
        for b in (a + 1)..flat.len() {
            let (mi, si, sa, aa) = flat[a];
            let (mj, sj, sb, ab) = flat[b];
            if space.manager().and(sa, sb) != clarify_bdd::Ref::FALSE {
                pairs.push(ChainOverlapPair {
                    map_i: mi,
                    stanza_i: si,
                    map_j: mj,
                    stanza_j: sj,
                    conflicting: aa != ab,
                });
            }
        }
    }
    Ok(pairs)
}
