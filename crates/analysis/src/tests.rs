use clarify_netconfig::{insert_route_map_stanza, Action, Config, RouteMapSet, RouteMapVerdict};
use clarify_nettypes::{BgpRoute, Community, Packet, Prefix, Protocol};
use std::net::Ipv4Addr;

use crate::{
    acl_overlaps, acl_overlaps_symbolic, compare_route_policies, policies_equivalent,
    route_map_overlaps, verify_stanza_against_spec, AnalysisError, PacketSpace, RouteSpace,
    SpecVerdict, StanzaSpec,
};

const ISP_OUT: &str = "\
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
";

const SNIPPET: &str = "\
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
";

fn pfx(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn com(s: &str) -> Community {
    s.parse().unwrap()
}

#[test]
fn route_space_builds_for_paper_configs() {
    let base = Config::parse(ISP_OUT).unwrap();
    let snip = Config::parse(SNIPPET).unwrap();
    let space = RouteSpace::new(&[&base, &snip]).unwrap();
    // One community pattern -> 2 atoms (in/out); one as-path pattern -> 2.
    assert_eq!(space.num_community_atoms(), 2);
    assert_eq!(space.num_path_atoms(), 2);
}

#[test]
fn permit_set_agrees_with_concrete_eval_on_probes() {
    let base = Config::parse(ISP_OUT).unwrap();
    let mut space = RouteSpace::new(&[&base]).unwrap();
    let permits = space.permit_set(&base, "ISP_OUT").unwrap();
    let probes = vec![
        BgpRoute::with_defaults(pfx("99.0.0.0/16")).path(&[10, 32]),
        BgpRoute::with_defaults(pfx("10.1.0.0/16")).path(&[7]),
        BgpRoute::with_defaults(pfx("99.0.0.0/16"))
            .path(&[7])
            .lp(300),
        BgpRoute::with_defaults(pfx("99.0.0.0/16")).path(&[7]),
        BgpRoute::with_defaults(pfx("20.0.0.0/16"))
            .path(&[7])
            .lp(300),
        BgpRoute::with_defaults(pfx("1.0.1.0/24"))
            .path(&[32, 7])
            .lp(300),
    ];
    for r in probes {
        let point = space.encode_route(&r).unwrap();
        let inside = space.manager().implies_true(point, permits);
        let concrete = base.eval_route_map("ISP_OUT", &r).unwrap().is_permit();
        assert_eq!(inside, concrete, "route {r:?}");
    }
}

#[test]
fn search_route_policies_finds_witnesses() {
    let base = Config::parse(ISP_OUT).unwrap();
    let mut space = RouteSpace::new(&[&base]).unwrap();
    let permitted = space
        .search_route_policies(&base, "ISP_OUT", Action::Permit, None)
        .unwrap()
        .expect("some route is permitted");
    assert!(base
        .eval_route_map("ISP_OUT", &permitted)
        .unwrap()
        .is_permit());
    assert_eq!(permitted.local_pref, 300, "only lp-300 routes pass");

    let denied = space
        .search_route_policies(&base, "ISP_OUT", Action::Deny, None)
        .unwrap()
        .expect("some route is denied");
    assert!(!base.eval_route_map("ISP_OUT", &denied).unwrap().is_permit());
}

#[test]
fn search_with_constraint() {
    let base = Config::parse(ISP_OUT).unwrap();
    let mut space = RouteSpace::new(&[&base]).unwrap();
    // Constrain to the D1 prefix space and ask for a permit: stanza 20
    // denies D1 prefixes, but lp-300 routes outside D1's length bounds
    // can still pass. 10.0.0.0/8 le 24 leaves /25../32 free.
    let range: clarify_nettypes::PrefixRange = "10.0.0.0/8 ge 25".parse().unwrap();
    let c = space.encode_prefix_range(&range);
    let r = space
        .search_route_policies(&base, "ISP_OUT", Action::Permit, Some(c))
        .unwrap()
        .expect("permitted /25+ route under 10/8 exists");
    assert!(range.matches(&r.network));
    assert!(base.eval_route_map("ISP_OUT", &r).unwrap().is_permit());
}

#[test]
fn witness_route_roundtrips_through_encoding() {
    let base = Config::parse(ISP_OUT).unwrap();
    let snip = Config::parse(SNIPPET).unwrap();
    let mut space = RouteSpace::new(&[&base, &snip]).unwrap();
    let set = space.permit_set(&snip, "SET_METRIC").unwrap();
    let w = space.witness(set).unwrap().expect("nonempty");
    // The witness must concretely match the snippet stanza.
    let v = snip.eval_route_map("SET_METRIC", &w).unwrap();
    assert!(v.is_permit());
    assert_eq!(v.route().unwrap().metric, 55);
    // And its encoding lies inside the symbolic set.
    let point = space.encode_route(&w).unwrap();
    assert!(space.manager().implies_true(point, set));
}

#[test]
fn compare_reproduces_paper_differential_example() {
    // Insert the snippet at top (Figure 2a) and at bottom (Figure 2b);
    // compare the two resulting policies as the disambiguator does.
    let base = Config::parse(ISP_OUT).unwrap();
    let snip = Config::parse(SNIPPET).unwrap();
    let (cfg_top, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", 0).unwrap();
    let (cfg_bot, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", 3).unwrap();
    let mut space = RouteSpace::new(&[&cfg_top, &cfg_bot]).unwrap();
    let diffs =
        compare_route_policies(&mut space, &cfg_top, "ISP_OUT", &cfg_bot, "ISP_OUT", 8).unwrap();
    assert!(!diffs.is_empty(), "the two placements differ");
    // Every reported difference is concretely real, and at least one looks
    // like the paper's: matched by the new stanza under (a), denied under (b).
    let mut saw_paper_shape = false;
    for d in &diffs {
        // Every reported diff is a real behavioural difference.
        let same = match (&d.a, &d.b) {
            (
                RouteMapVerdict::Permit { route: x, .. },
                RouteMapVerdict::Permit { route: y, .. },
            ) => x == y,
            (RouteMapVerdict::Permit { .. }, _) | (_, RouteMapVerdict::Permit { .. }) => false,
            _ => true,
        };
        assert!(!same, "non-difference reported: {d:?}");
        if let RouteMapVerdict::Permit { route, .. } = &d.a {
            if route.metric == 55 && !d.b.is_permit() {
                saw_paper_shape = true;
                // The differential input carries community 300:3 and sits
                // under 100.0.0.0/16 with length <= 23.
                assert!(d.route.communities.contains(&com("300:3")));
                assert!(pfx("100.0.0.0/16").covers(&d.route.network));
                assert!(d.route.network.len() <= 23);
            }
        }
    }
    assert!(
        saw_paper_shape,
        "paper's OPTION1/OPTION2 shape found: {diffs:?}"
    );
}

#[test]
fn equivalent_policies_have_no_diffs() {
    let base = Config::parse(ISP_OUT).unwrap();
    let mut space = RouteSpace::new(&[&base]).unwrap();
    assert!(policies_equivalent(&mut space, &base, "ISP_OUT", &base, "ISP_OUT").unwrap());
}

#[test]
fn insertion_between_non_overlapping_stanzas_is_equivalent() {
    // The snippet does not overlap stanzas 20/30 in a way that placement
    // between them matters: positions 1 and 2 both sit after the as-path
    // deny and before/after the D1 deny. D1 does not cover 100.0.0.0/16,
    // and the lp-300 stanza only fires on lp 300... but the snippet also
    // matches lp-300 routes, so 2 vs 3 differs. Positions 1 and 2 are
    // equivalent because the snippet's match set is disjoint from D1.
    let base = Config::parse(ISP_OUT).unwrap();
    let snip = Config::parse(SNIPPET).unwrap();
    let (cfg1, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", 1).unwrap();
    let (cfg2, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", 2).unwrap();
    let mut space = RouteSpace::new(&[&cfg1, &cfg2]).unwrap();
    assert!(policies_equivalent(&mut space, &cfg1, "ISP_OUT", &cfg2, "ISP_OUT").unwrap());
}

#[test]
fn compare_detects_set_clause_differences() {
    let a = Config::parse("route-map RM permit 10\n set metric 55\n").unwrap();
    let b = Config::parse("route-map RM permit 10\n set metric 66\n").unwrap();
    let mut space = RouteSpace::new(&[&a, &b]).unwrap();
    let diffs = compare_route_policies(&mut space, &a, "RM", &b, "RM", 4).unwrap();
    assert!(!diffs.is_empty());
    let d = &diffs[0];
    assert_eq!(d.a.route().unwrap().metric, 55);
    assert_eq!(d.b.route().unwrap().metric, 66);
}

#[test]
fn compare_set_vs_unset_metric_excludes_coinciding_inputs() {
    let a = Config::parse("route-map RM permit 10\n set metric 55\n").unwrap();
    let b = Config::parse("route-map RM permit 10\n").unwrap();
    let mut space = RouteSpace::new(&[&a, &b]).unwrap();
    let diffs = compare_route_policies(&mut space, &a, "RM", &b, "RM", 4).unwrap();
    assert!(!diffs.is_empty());
    for d in &diffs {
        assert_ne!(d.route.metric, 55, "input metric 55 shows no difference");
    }
}

#[test]
fn compare_detects_next_hop_difference_outside_space() {
    let a = Config::parse("route-map RM permit 10\n set ip next-hop 192.0.2.9\n").unwrap();
    let b = Config::parse("route-map RM permit 10\n").unwrap();
    let mut space = RouteSpace::new(&[&a, &b]).unwrap();
    let diffs = compare_route_policies(&mut space, &a, "RM", &b, "RM", 2).unwrap();
    assert!(!diffs.is_empty());
    let d = &diffs[0];
    assert_ne!(d.a.route().unwrap().next_hop, d.b.route().unwrap().next_hop);
}

#[test]
fn compare_detects_community_effect_difference() {
    let a = Config::parse("route-map RM permit 10\n set community 65000:1 additive\n").unwrap();
    let b = Config::parse("route-map RM permit 10\n").unwrap();
    let mut space = RouteSpace::new(&[&a, &b]).unwrap();
    let diffs = compare_route_policies(&mut space, &a, "RM", &b, "RM", 2).unwrap();
    assert!(!diffs.is_empty());
    let d = &diffs[0];
    assert!(d.a.route().unwrap().communities.contains(&com("65000:1")));
    assert!(!d.b.route().unwrap().communities.contains(&com("65000:1")));
}

#[test]
fn deny_by_different_stanzas_is_not_a_difference() {
    let a = Config::parse("route-map RM deny 10\n match local-preference 300\n").unwrap();
    let b = Config::parse("route-map RM deny 10\n match metric 5\n").unwrap();
    // Both deny everything (explicitly or implicitly): equivalent.
    let mut space = RouteSpace::new(&[&a, &b]).unwrap();
    assert!(policies_equivalent(&mut space, &a, "RM", &b, "RM").unwrap());
}

#[test]
fn value_too_large_is_reported() {
    let cfg = Config::parse("route-map RM permit 10\n match local-preference 100000\n").unwrap();
    let mut space = RouteSpace::new(&[&cfg]).unwrap();
    let err = space.permit_set(&cfg, "RM").unwrap_err();
    assert!(matches!(err, AnalysisError::ValueTooLarge { .. }));
}

#[test]
fn route_map_overlap_census_on_paper_example() {
    // After inserting the snippet at the top (Figure 2a), the new stanza
    // overlaps the lp-300 stanza? No: the snippet has no lp constraint, so
    // a route with community 300:3, prefix in range, lp 300 matches both.
    let base = Config::parse(ISP_OUT).unwrap();
    let snip = Config::parse(SNIPPET).unwrap();
    let (cfg, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", 0).unwrap();
    let mut space = RouteSpace::new(&[&cfg]).unwrap();
    let rm = cfg.route_map("ISP_OUT").unwrap().clone();
    let report = route_map_overlaps(&mut space, &cfg, &rm).unwrap();
    // New stanza (0) overlaps the as-path deny (1)? The snippet does not
    // constrain as-path, so yes. It is disjoint from the D1 deny (2).
    let pairs: Vec<(usize, usize)> = report.pairs.iter().map(|p| (p.i, p.j)).collect();
    assert!(pairs.contains(&(0, 1)), "{pairs:?}");
    assert!(!pairs.contains(&(0, 2)), "{pairs:?}");
    assert!(pairs.contains(&(0, 3)), "{pairs:?}");
    // Conflict flags: stanza 0 permits, stanza 1 denies.
    assert!(
        report
            .pairs
            .iter()
            .find(|p| (p.i, p.j) == (0, 1))
            .unwrap()
            .conflicting
    );
}

#[test]
fn acl_overlap_interval_and_symbolic_agree() {
    let text = "\
ip access-list extended EDGE
 permit tcp host 1.1.1.1 host 2.2.2.2 eq 443
 deny ip 10.0.0.0/8 any
 permit udp any eq 53 any
 deny tcp any any range 8000 8100
 permit ip any any
 deny udp 10.0.0.0/8 any eq 53
";
    let cfg = Config::parse(text).unwrap();
    let acl = cfg.acl("EDGE").unwrap();
    let fast = acl_overlaps(acl);
    let mut space = PacketSpace::new();
    let slow = acl_overlaps_symbolic(&mut space, acl);
    assert_eq!(fast.num_rules, slow.num_rules);
    let f: Vec<_> = fast
        .pairs
        .iter()
        .map(|p| (p.i, p.j, p.conflicting))
        .collect();
    let s: Vec<_> = slow
        .pairs
        .iter()
        .map(|p| (p.i, p.j, p.conflicting))
        .collect();
    assert_eq!(f, s);
}

#[test]
fn acl_overlap_subset_flag() {
    let text = "\
ip access-list extended A
 permit tcp host 1.1.1.1 host 2.2.2.2
 deny ip any any
";
    let cfg = Config::parse(text).unwrap();
    let report = acl_overlaps(cfg.acl("A").unwrap());
    assert_eq!(report.count(), 1);
    assert!(report.pairs[0].conflicting);
    assert!(report.pairs[0].subset, "host pair is a subset of any/any");
    assert_eq!(report.nontrivial_conflict_count(), 0);
}

#[test]
fn acl_no_overlap_when_disjoint() {
    let text = "\
ip access-list extended A
 permit tcp 10.0.0.0/8 any eq 80
 deny tcp 20.0.0.0/8 any eq 80
 permit udp 10.0.0.0/8 any eq 80
";
    let cfg = Config::parse(text).unwrap();
    let report = acl_overlaps(cfg.acl("A").unwrap());
    assert_eq!(report.count(), 0);
}

#[test]
fn search_filters_finds_packets() {
    let text = "\
ip access-list extended EDGE
 deny tcp any any eq 22
 permit tcp 10.0.0.0/8 any
";
    let cfg = Config::parse(text).unwrap();
    let mut space = PacketSpace::new();
    let p = space
        .search_filters(&cfg, "EDGE", Action::Permit, None)
        .unwrap()
        .expect("permitted packet exists");
    assert_eq!(cfg.eval_acl("EDGE", &p).unwrap().action, Action::Permit);
    assert!(pfx("10.0.0.0/8").contains_addr(p.src_ip));
    assert_ne!(p.dst_port, 22);

    // Constrained search: a denied packet destined to port 22.
    let c = {
        let dport: clarify_nettypes::PortRange = clarify_nettypes::PortRange::eq(22);
        let entry = clarify_netconfig::AclEntry {
            action: Action::Permit,
            protocol: Protocol::Tcp,
            src: clarify_netconfig::AddrMatch::Any,
            src_ports: clarify_nettypes::PortRange::ANY,
            dst: clarify_netconfig::AddrMatch::Any,
            dst_ports: dport,
        };
        space.encode_entry(&entry)
    };
    let p = space
        .search_filters(&cfg, "EDGE", Action::Deny, Some(c))
        .unwrap()
        .expect("denied :22 packet exists");
    assert_eq!(p.dst_port, 22);
    assert_eq!(cfg.eval_acl("EDGE", &p).unwrap().action, Action::Deny);
}

#[test]
fn packet_space_point_membership() {
    let text = "ip access-list extended A\n permit tcp 10.0.0.0/8 any eq 80\n";
    let cfg = Config::parse(text).unwrap();
    let mut space = PacketSpace::new();
    let permit = space.permit_set(cfg.acl("A").unwrap());
    let inside = Packet::tcp(Ipv4Addr::new(10, 1, 1, 1), 9, Ipv4Addr::new(2, 2, 2, 2), 80);
    let outside = Packet::tcp(Ipv4Addr::new(11, 1, 1, 1), 9, Ipv4Addr::new(2, 2, 2, 2), 80);
    let pi = space.encode_packet(&inside);
    let po = space.encode_packet(&outside);
    assert!(space.manager().implies_true(pi, permit));
    assert!(!space.manager().implies_true(po, permit));
}

#[test]
fn spec_verification_accepts_correct_snippet() {
    let snip = Config::parse(SNIPPET).unwrap();
    let spec = StanzaSpec {
        permit: true,
        prefixes: vec!["100.0.0.0/16 le 23".parse().unwrap()],
        communities: vec!["_300:3_".to_string()],
        sets: vec![RouteMapSet::Metric(55)],
        ..Default::default()
    };
    assert_eq!(
        verify_stanza_against_spec(&snip, "SET_METRIC", &spec).unwrap(),
        SpecVerdict::Verified
    );
}

#[test]
fn spec_verification_rejects_wrong_match() {
    let snip = Config::parse(SNIPPET).unwrap();
    let spec = StanzaSpec {
        permit: true,
        prefixes: vec!["100.0.0.0/16 le 22".parse().unwrap()], // 22, not 23
        communities: vec!["_300:3_".to_string()],
        sets: vec![RouteMapSet::Metric(55)],
        ..Default::default()
    };
    match verify_stanza_against_spec(&snip, "SET_METRIC", &spec).unwrap() {
        SpecVerdict::MatchMismatch {
            witness,
            stanza_matches,
        } => {
            assert!(stanza_matches, "stanza matches /23, spec does not");
            assert_eq!(witness.network.len(), 23);
        }
        other => panic!("expected MatchMismatch, got {other:?}"),
    }
}

#[test]
fn spec_verification_rejects_wrong_sets_and_action() {
    let snip = Config::parse(SNIPPET).unwrap();
    let mut spec = StanzaSpec {
        permit: true,
        prefixes: vec!["100.0.0.0/16 le 23".parse().unwrap()],
        communities: vec!["_300:3_".to_string()],
        sets: vec![RouteMapSet::Metric(66)],
        ..Default::default()
    };
    assert_eq!(
        verify_stanza_against_spec(&snip, "SET_METRIC", &spec).unwrap(),
        SpecVerdict::SetMismatch
    );
    spec.permit = false;
    assert_eq!(
        verify_stanza_against_spec(&snip, "SET_METRIC", &spec).unwrap(),
        SpecVerdict::ActionMismatch
    );
}

#[test]
fn spec_json_rendering_matches_paper_shape() {
    let spec = StanzaSpec {
        permit: true,
        prefixes: vec!["100.0.0.0/16 ge 16 le 23".parse().unwrap()],
        communities: vec!["_300:3_".to_string()],
        sets: vec![RouteMapSet::Metric(55)],
        ..Default::default()
    };
    let json = spec.to_json();
    assert!(json.contains("\"permit\": true"), "{json}");
    assert!(
        json.contains("\"prefix\": [\"100.0.0.0/16:16-23\"]"),
        "{json}"
    );
    assert!(json.contains("\"community\": \"/_300:3_/\""), "{json}");
    assert!(json.contains("\"set\": {\"metric\": 55}"), "{json}");
}

mod properties {
    use super::*;
    use clarify_testkit::{gens, prop_assert, prop_assert_eq, property, Rng, Source};

    fn arb_route(g: &mut Source) -> BgpRoute {
        let addr = g.gen_range(0u32..=u32::MAX);
        let len = g.gen_range(0u8..=32);
        let path = g.pick(&[
            vec![],
            vec![32u32],
            vec![10, 32],
            vec![32, 10],
            vec![7, 8, 9],
        ]);
        let comms = g.pick(&[
            vec![],
            vec!["300:3"],
            vec!["300:4", "300:3"],
            vec!["65000:9"],
        ]);
        let lp = g.pick(&[100u32, 300, 55]);
        let metric = g.gen_range(0u32..1024);
        let mut r = BgpRoute::with_defaults(Prefix::from_u32(addr, len))
            .path(&path)
            .lp(lp)
            .med(metric);
        for c in comms {
            r = r.community(c.parse().unwrap());
        }
        r
    }

    property! {
        /// The symbolic permit set agrees with the concrete evaluator on
        /// arbitrary routes for the paper's configs (both policies).
        fn symbolic_matches_concrete(r in arb_route) cases 64 {
            let base = Config::parse(ISP_OUT).unwrap();
            let snip = Config::parse(SNIPPET).unwrap();
            let mut space = RouteSpace::new(&[&base, &snip]).unwrap();
            for (cfg, map) in [(&base, "ISP_OUT"), (&snip, "SET_METRIC")] {
                let permits = space.permit_set(cfg, map).unwrap();
                let point = space.encode_route(&r).unwrap();
                let sym = space.manager().implies_true(point, permits);
                let conc = cfg.eval_route_map(map, &r).unwrap().is_permit();
                prop_assert_eq!(sym, conc, "map {} route {:?}", map, r);
            }
        }

        /// compare_route_policies never reports a non-difference.
        fn diffs_are_real(pos_a in gens::ints(0usize..=3), pos_b in gens::ints(0usize..=3)) cases 64 {
            let base = Config::parse(ISP_OUT).unwrap();
            let snip = Config::parse(SNIPPET).unwrap();
            let (ca, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", pos_a).unwrap();
            let (cb, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", pos_b).unwrap();
            let mut space = RouteSpace::new(&[&ca, &cb]).unwrap();
            let diffs = compare_route_policies(&mut space, &ca, "ISP_OUT", &cb, "ISP_OUT", 16).unwrap();
            for d in &diffs {
                let va = ca.eval_route_map("ISP_OUT", &d.route).unwrap();
                let vb = cb.eval_route_map("ISP_OUT", &d.route).unwrap();
                prop_assert_eq!(&va, &d.a);
                prop_assert_eq!(&vb, &d.b);
                let same = match (&va, &vb) {
                    (RouteMapVerdict::Permit { route: x, .. }, RouteMapVerdict::Permit { route: y, .. }) => x == y,
                    (RouteMapVerdict::Permit { .. }, _) | (_, RouteMapVerdict::Permit { .. }) => false,
                    _ => true,
                };
                prop_assert!(!same, "reported diff is not a diff: {:?}", d);
            }
            if pos_a == pos_b {
                prop_assert!(diffs.is_empty());
            }
        }

        /// Interval and symbolic ACL overlap analyses agree on random ACLs.
        fn acl_overlap_agreement(seed in gens::ints(0u64..200)) cases 64 {
            // Deterministic pseudo-random ACL from the seed.
            let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || { x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); (x >> 33) as u32 };
            let mut text = String::from("ip access-list extended R\n");
            for _ in 0..6 {
                let action = if next() % 2 == 0 { "permit" } else { "deny" };
                let proto = ["ip", "tcp", "udp"][(next() % 3) as usize];
                let src = match next() % 3 {
                    0 => "any".to_string(),
                    1 => format!("10.{}.0.0/16", next() % 4),
                    _ => format!("host 10.0.0.{}", next() % 4),
                };
                let dst = match next() % 2 {
                    0 => "any".to_string(),
                    _ => format!("20.{}.0.0/16", next() % 2),
                };
                let ports = if proto == "ip" { String::new() } else {
                    match next() % 3 {
                        0 => String::new(),
                        1 => format!(" eq {}", 20 + next() % 100),
                        _ => { let lo = next() % 1000; format!(" range {} {}", lo, lo + next() % 1000) }
                    }
                };
                text.push_str(&format!(" {action} {proto} {src} {dst}{ports}\n"));
            }
            let cfg = Config::parse(&text).unwrap();
            let acl = cfg.acl("R").unwrap();
            let fast = acl_overlaps(acl);
            let mut space = PacketSpace::new();
            let slow = acl_overlaps_symbolic(&mut space, acl);
            let f: Vec<_> = fast.pairs.iter().map(|p| (p.i, p.j, p.conflicting)).collect();
            let s: Vec<_> = slow.pairs.iter().map(|p| (p.i, p.j, p.conflicting)).collect();
            prop_assert_eq!(f, s, "ACL:\n{}", text);
        }
    }
}

mod filter_compare_tests {
    use super::*;
    use crate::{
        compare_filters, compare_prefix_lists, filters_equivalent, prefix_lists_equivalent,
        PrefixSpace,
    };
    use clarify_netconfig::PrefixList;

    fn acl(text: &str) -> clarify_netconfig::Acl {
        Config::parse(text)
            .unwrap()
            .acls
            .values()
            .next()
            .unwrap()
            .clone()
    }

    #[test]
    fn compare_filters_finds_real_packets() {
        let a = acl("ip access-list extended A\n permit tcp any any eq 80\n");
        let b = acl("ip access-list extended B\n permit tcp any any range 80 81\n");
        let mut space = PacketSpace::new();
        let diffs = compare_filters(&mut space, &a, &b, 4);
        assert!(!diffs.is_empty());
        for d in &diffs {
            assert_eq!(d.packet.dst_port, 81, "only :81 differs");
            assert_ne!(d.a.action, d.b.action);
        }
    }

    #[test]
    fn compare_filters_equivalent_acls() {
        // Same language, different syntax: host form vs /32 prefix form.
        let a = acl("ip access-list extended A\n permit tcp host 1.1.1.1 any\n");
        let b = acl("ip access-list extended B\n permit tcp 1.1.1.1/32 any\n");
        let mut space = PacketSpace::new();
        assert!(filters_equivalent(&mut space, &a, &b));
    }

    #[test]
    fn compare_filters_yields_distinct_witnesses() {
        let a = acl("ip access-list extended A\n permit udp any any\n");
        let b = acl("ip access-list extended B\n deny ip any any\n");
        let mut space = PacketSpace::new();
        let diffs = compare_filters(&mut space, &a, &b, 5);
        assert_eq!(diffs.len(), 5);
        let mut seen: Vec<_> = diffs.iter().map(|d| d.packet).collect();
        seen.dedup();
        assert_eq!(seen.len(), 5, "witnesses are pairwise distinct");
    }

    fn plist(text: &str) -> PrefixList {
        Config::parse(text)
            .unwrap()
            .prefix_lists
            .values()
            .next()
            .unwrap()
            .clone()
    }

    #[test]
    fn prefix_space_matches_concrete_semantics() {
        let pl = plist(
            "ip prefix-list P seq 5 deny 10.1.0.0/16 le 24\nip prefix-list P seq 10 permit 10.0.0.0/8 le 32\n",
        );
        let mut space = PrefixSpace::new();
        let permit = space.permit_set(&pl);
        for p in [
            "10.1.0.0/16",
            "10.1.2.0/24",
            "10.1.2.0/25",
            "10.2.0.0/16",
            "11.0.0.0/8",
        ] {
            let prefix: Prefix = p.parse().unwrap();
            let point = space.encode_prefix(&prefix);
            let sym = space.manager().implies_true(point, permit);
            assert_eq!(sym, pl.permits(&prefix), "{p}");
        }
    }

    #[test]
    fn compare_prefix_lists_finds_differences() {
        let a = plist("ip prefix-list A seq 5 permit 10.0.0.0/8 le 24\n");
        let b = plist("ip prefix-list B seq 5 permit 10.0.0.0/8 le 23\n");
        let mut space = PrefixSpace::new();
        let diffs = compare_prefix_lists(&mut space, &a, &b, 3).unwrap();
        assert!(!diffs.is_empty());
        for d in &diffs {
            assert_eq!(d.prefix.len(), 24, "only /24s differ");
            assert!(d.a_permits && !d.b_permits);
        }
    }

    #[test]
    fn prefix_lists_equivalence() {
        let a = plist("ip prefix-list A seq 5 permit 10.0.0.0/8 le 32\n");
        let b = plist(
            "ip prefix-list B seq 5 permit 10.0.0.0/9 le 32\nip prefix-list B seq 10 permit 10.128.0.0/9 le 32\n",
        );
        let mut space = PrefixSpace::new();
        assert!(
            !prefix_lists_equivalent(&mut space, &a, &b).unwrap(),
            "10.0.0.0/8 itself is permitted by A only"
        );
        let c = plist(
            "ip prefix-list C seq 5 permit 10.0.0.0/9 le 32\nip prefix-list C seq 10 permit 10.128.0.0/9 le 32\nip prefix-list C seq 15 permit 10.0.0.0/8\n",
        );
        assert!(prefix_lists_equivalent(&mut space, &b, &c).is_ok());
        assert!(prefix_lists_equivalent(&mut space, &c, &c).unwrap());
    }
}

mod output_search_tests {
    use super::*;
    use crate::OutputConstraints;

    #[test]
    fn output_metric_constraint_finds_set_stanza() {
        let base = Config::parse(ISP_OUT).unwrap();
        let snip = Config::parse(SNIPPET).unwrap();
        let (cfg, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", 0).unwrap();
        let mut space = RouteSpace::new(&[&cfg]).unwrap();
        // Require the input metric to differ so the pass-through lp-300
        // stanza cannot supply the witness: only the new set-metric stanza
        // can produce an output of 55 from an input of 0.
        let input_metric_0 = {
            use clarify_netconfig::RouteMapMatch;
            space
                .encode_match(&Config::new(), &RouteMapMatch::Metric(0))
                .unwrap()
        };
        let (input, output) = space
            .search_route_policies_out(
                &cfg,
                "ISP_OUT",
                Some(input_metric_0),
                &OutputConstraints {
                    metric: Some(55),
                    ..Default::default()
                },
            )
            .unwrap()
            .expect("a route leaves with metric 55");
        assert_eq!(output.metric, 55);
        assert_eq!(input.metric, 0);
        assert!(pfx("100.0.0.0/16").covers(&input.network), "{input:?}");
        assert!(input.communities.contains(&com("300:3")));
    }

    #[test]
    fn output_constraint_via_passthrough_field() {
        // The lp-300 stanza sets nothing: the output metric equals the
        // input metric, so asking for output metric 7 constrains the input.
        let base = Config::parse(ISP_OUT).unwrap();
        let mut space = RouteSpace::new(&[&base]).unwrap();
        let (input, output) = space
            .search_route_policies_out(
                &base,
                "ISP_OUT",
                None,
                &OutputConstraints {
                    metric: Some(7),
                    local_pref: Some(300),
                    ..Default::default()
                },
            )
            .unwrap()
            .expect("satisfiable");
        assert_eq!(input.metric, 7);
        assert_eq!(output.metric, 7);
        assert_eq!(output.local_pref, 300);
    }

    #[test]
    fn impossible_output_constraint_returns_none() {
        let base = Config::parse(ISP_OUT).unwrap();
        let snip = Config::parse(SNIPPET).unwrap();
        let (cfg, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", 0).unwrap();
        let mut space = RouteSpace::new(&[&cfg]).unwrap();
        // Output metric 77 never occurs: the only metric-setting stanza
        // sets 55, and the lp-300 stanza requires... metric 77 IS possible
        // via passthrough there. Ask for an impossible combination instead:
        // metric 55 AND local-pref 42 (the snippet leaves lp at the input
        // value, so this needs an input with lp 42 — which is fine), so
        // tighten to a truly impossible one: set metric 55 and tag 9999
        // with an input constrained to tag 0.
        let tag0 = {
            use clarify_netconfig::RouteMapMatch;
            space
                .encode_match(&Config::new(), &RouteMapMatch::Tag(0))
                .unwrap()
        };
        let r = space
            .search_route_policies_out(
                &cfg,
                "ISP_OUT",
                Some(tag0),
                &OutputConstraints {
                    tag: Some(9999),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(r.is_none(), "{r:?}");
    }
}

mod chain_overlap_tests {
    use super::*;
    use crate::route_map_chain_overlaps;

    #[test]
    fn cross_map_overlaps_detected() {
        // Two maps applied in sequence to the same neighbor: IMPORT_A
        // denies a block; IMPORT_B permits a sub-block of it — a
        // cross-map conflicting overlap invisible to per-map analysis.
        let cfg = Config::parse(
            "ip prefix-list WIDE seq 5 permit 10.0.0.0/8 le 32\n\
             ip prefix-list NARROW seq 5 permit 10.7.0.0/16 le 32\n\
             ip prefix-list OTHER seq 5 permit 20.0.0.0/8 le 32\n\
             route-map IMPORT_A deny 10\n match ip address prefix-list WIDE\n\
             route-map IMPORT_A permit 20\n match ip address prefix-list OTHER\n\
             route-map IMPORT_B permit 10\n match ip address prefix-list NARROW\n",
        )
        .unwrap();
        let a = cfg.route_map("IMPORT_A").unwrap().clone();
        let b = cfg.route_map("IMPORT_B").unwrap().clone();
        let mut space = RouteSpace::new(&[&cfg]).unwrap();
        let pairs = route_map_chain_overlaps(&mut space, &cfg, &[&a, &b]).unwrap();
        // Intra-map: A's two stanzas are disjoint. Cross-map: A.0 (deny
        // 10/8) overlaps B.0 (permit 10.7/16) and conflicts.
        assert_eq!(pairs.len(), 1, "{pairs:?}");
        let p = pairs[0];
        assert_eq!((p.map_i, p.stanza_i, p.map_j, p.stanza_j), (0, 0, 1, 0));
        assert!(p.conflicting);
    }

    #[test]
    fn chain_includes_intra_map_pairs() {
        let cfg = Config::parse(
            "ip prefix-list WIDE seq 5 permit 10.0.0.0/8 le 32\n\
             ip prefix-list NARROW seq 5 permit 10.7.0.0/16 le 32\n\
             route-map RM deny 10\n match ip address prefix-list WIDE\n\
             route-map RM permit 20\n match ip address prefix-list NARROW\n",
        )
        .unwrap();
        let rm = cfg.route_map("RM").unwrap().clone();
        let mut space = RouteSpace::new(&[&cfg]).unwrap();
        let pairs = route_map_chain_overlaps(&mut space, &cfg, &[&rm]).unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].map_i, pairs[0].map_j);
        // And it agrees with the single-map census.
        let single = route_map_overlaps(&mut space, &cfg, &rm).unwrap();
        assert_eq!(single.count(), pairs.len());
    }
}

#[test]
fn witness_enumeration_yields_distinct_routes() {
    let base = Config::parse(ISP_OUT).unwrap();
    let mut space = RouteSpace::new(&[&base]).unwrap();
    let permits = space.permit_set(&base, "ISP_OUT").unwrap();
    let routes = space.witnesses(permits, 5).unwrap();
    assert_eq!(routes.len(), 5);
    for (i, r) in routes.iter().enumerate() {
        assert!(
            base.eval_route_map("ISP_OUT", r).unwrap().is_permit(),
            "#{i}"
        );
        for s in &routes[i + 1..] {
            assert_ne!(r, s, "witnesses are pairwise distinct");
        }
    }
    // A region with exactly one point yields exactly one witness.
    let r = BgpRoute::with_defaults(pfx("99.0.0.0/16")).lp(300);
    let point = space.encode_route(&r).unwrap();
    let one = space.witnesses(point, 10).unwrap();
    assert_eq!(one.len(), 1);
    assert_eq!(one[0], r);
}

#[test]
fn witness_exclusion_covers_decoded_class() {
    // Regression: a region whose prefix bits beyond plen are free used to
    // yield the same decoded route repeatedly; exclusion must remove the
    // whole equivalence class, so this one-route region is exhausted after
    // a single witness.
    let cfg = Config::parse(
        "ip prefix-list P seq 5 permit 10.0.0.0/8\nroute-map RM permit 10\n match ip address prefix-list P\n match local-preference 100\n match metric 0\n match tag 0\n",
    )
    .unwrap();
    let mut space = RouteSpace::new(&[&cfg]).unwrap();
    let region = space.permit_set(&cfg, "RM").unwrap();
    let routes = space.witnesses(region, 10).unwrap();
    // The region fixes prefix, lp, metric, and tag; only the community
    // dimension remains (one atom, so with/without a community): exactly
    // two distinct routes, where the pre-fix exclusion produced ten
    // copies of the first.
    assert_eq!(routes.len(), 2, "{routes:?}");
    assert_ne!(routes[0], routes[1]);
    for r in &routes {
        assert_eq!(r.network, pfx("10.0.0.0/8"));
    }
}

#[test]
fn prefix_space_witness_exclusion_covers_class() {
    use crate::{compare_prefix_lists, PrefixSpace};
    use clarify_netconfig::PrefixList;
    let a: PrefixList = Config::parse("ip prefix-list A seq 5 permit 10.0.0.0/8\n")
        .unwrap()
        .prefix_lists["A"]
        .clone();
    let b = PrefixList {
        name: "B".into(),
        entries: Vec::new(),
    };
    let mut space = PrefixSpace::new();
    // The lists differ on exactly one prefix (10.0.0.0/8 itself); asking
    // for up to 5 diffs must return exactly one, not duplicates.
    let diffs = compare_prefix_lists(&mut space, &a, &b, 5).unwrap();
    assert_eq!(diffs.len(), 1, "{diffs:?}");
    assert_eq!(diffs[0].prefix, pfx("10.0.0.0/8"));
}

#[test]
fn compare_handles_out_of_space_set_values() {
    // `set local-preference 100000` exceeds the 16-bit symbolic field; the
    // comparator must still work (every input differs) instead of erroring.
    let a = Config::parse("route-map RM permit 10\n set local-preference 100000\n").unwrap();
    let b = Config::parse("route-map RM permit 10\n").unwrap();
    let mut space = RouteSpace::new(&[&a, &b]).unwrap();
    let diffs = compare_route_policies(&mut space, &a, "RM", &b, "RM", 2).unwrap();
    assert!(!diffs.is_empty());
    assert_eq!(diffs[0].a.route().unwrap().local_pref, 100000);
}

#[test]
fn community_add_vs_replace_detected_without_community_lists() {
    // Regression (found in review): with no community lists anywhere, the
    // symbolic space has no community atoms, witnesses carry no
    // communities, and `set community c additive` vs plain `set community
    // c` coincide on every extracted witness — the difference was silently
    // dropped and the policies declared equivalent.
    let a = Config::parse("route-map RM permit 10\n set community 100:1 additive\n").unwrap();
    let b = Config::parse("route-map RM permit 10\n set community 100:1\n").unwrap();
    let mut space = RouteSpace::new(&[&a, &b]).unwrap();
    assert!(
        !policies_equivalent(&mut space, &a, "RM", &b, "RM").unwrap(),
        "additive and replace differ on routes carrying other communities"
    );
    let diffs = compare_route_policies(&mut space, &a, "RM", &b, "RM", 2).unwrap();
    let d = &diffs[0];
    // The witness carries some community the clauses do not mention, which
    // additive keeps and replace strips.
    let ra = d.a.route().unwrap();
    let rb = d.b.route().unwrap();
    assert!(ra.communities.len() > rb.communities.len(), "{d:?}");
}

const TRANSFER_CFG: &str = "\
ip prefix-list HIDE seq 5 permit 10.1.128.0/17 le 32
ip prefix-list SVC seq 5 permit 10.1.0.0/16 le 24
route-map XFER deny 10
 match ip address prefix-list HIDE
route-map XFER permit 20
 match ip address prefix-list SVC
 set local-preference 300
 set community 100:1 additive
route-map LASTWINS permit 10
 set metric 5
 set metric 7
";

#[test]
fn transfer_applies_sets_and_respects_first_match() {
    let cfg = Config::parse(TRANSFER_CFG).unwrap();
    let mut ns = crate::NetworkSpace::new(&[&cfg]).unwrap();
    let map = cfg.route_map("XFER").unwrap().clone();
    let valid = ns.valid();
    let out = ns.transfer(&cfg, &map, 1, valid).unwrap();
    // Every emerging route has LOCAL_PREF 300 and carries 100:1.
    let w = ns.space_mut().witness(out).unwrap().unwrap();
    assert_eq!(w.local_pref, 300);
    // No community list distinguishes 100:1, so it lands in the one
    // catch-all atom: the decoded witness carries *some* community.
    assert!(!w.communities.is_empty(), "{w}");
    // Nothing from the denied HIDE region leaks through: the output
    // region contains no /17-or-longer 10.1.128.0/17 route.
    let hidden = ns
        .space_mut()
        .encode_prefix_range(&"10.1.128.0/17 ge 17".parse().unwrap());
    let leak = ns.space_mut().manager().and(out, hidden);
    assert_eq!(leak, clarify_bdd::Ref::FALSE);
    // Transfer of an empty input is empty (monotone at the bottom).
    let none = ns.transfer(&cfg, &map, 1, clarify_bdd::Ref::FALSE).unwrap();
    assert_eq!(none, clarify_bdd::Ref::FALSE);
}

#[test]
fn transfer_last_write_wins_and_cross_as_normalizes() {
    let cfg = Config::parse(TRANSFER_CFG).unwrap();
    let mut ns = crate::NetworkSpace::new(&[&cfg]).unwrap();
    let map = cfg.route_map("LASTWINS").unwrap().clone();
    let valid = ns.valid();
    let out = ns.transfer(&cfg, &map, 2, valid).unwrap();
    let w = ns.space_mut().witness(out).unwrap().unwrap();
    assert_eq!(w.metric, 7);
    // Agreement with the concrete evaluator on the same route-map.
    let route = BgpRoute::with_defaults(pfx("10.9.0.0/16"));
    let v = cfg.eval_route_map("LASTWINS", &route).unwrap();
    assert_eq!(v.route().unwrap().metric, 7);
    // Cross-AS normalization pins LOCAL_PREF back to 100.
    let xfer = cfg.route_map("XFER").unwrap().clone();
    let lp300 = ns.transfer(&cfg, &xfer, 1, valid).unwrap();
    let normalized = ns.cross_as_normalize(lp300);
    let w = ns.space_mut().witness(normalized).unwrap().unwrap();
    assert_eq!(w.local_pref, 100);
    assert!(!w.communities.is_empty(), "{w}");
}

#[test]
fn origination_region_is_exact_points() {
    let cfg = Config::parse(TRANSFER_CFG).unwrap();
    let mut ns = crate::NetworkSpace::new(&[&cfg]).unwrap();
    let origin = ns
        .origination_region(&[pfx("10.1.0.0/16"), pfx("203.0.113.0/24")])
        .unwrap();
    let all = ns.space_mut().witnesses(origin, 8).unwrap();
    assert_eq!(all.len(), 2);
    for r in &all {
        assert_eq!(r.local_pref, 100);
        assert!(r.communities.is_empty());
        assert!(r.as_path.is_empty());
    }
}
