//! The symbolic packet space for ACL analysis (Batfish `searchFilters`).

use clarify_bdd::{Cube, Manager, Ref};
use clarify_netconfig::{Acl, AclEntry, Action, AddrMatch, Config};
use clarify_nettypes::{Packet, PortRange, Protocol};

use crate::error::AnalysisError;

/// The symbolic input space of ACL analysis: 32-bit source and destination
/// addresses, a 2-bit protocol code, and 16-bit source/destination ports.
pub struct PacketSpace {
    mgr: Manager,
    src_vars: Vec<u32>,
    dst_vars: Vec<u32>,
    proto_vars: Vec<u32>,
    sport_vars: Vec<u32>,
    dport_vars: Vec<u32>,
    valid: Ref,
    /// Pins `valid` across the manager's collections (never unprotected).
    _valid_root: clarify_bdd::Root,
}

impl Default for PacketSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketSpace {
    /// Builds the (configuration-independent) packet space.
    pub fn new() -> PacketSpace {
        let _span = clarify_obs::span!("packet_space_build");
        clarify_obs::global()
            .counter("analysis.packet_space_builds")
            .incr();
        let mut next = 0u32;
        let mut take = |n: u32| -> Vec<u32> {
            let v: Vec<u32> = (next..next + n).collect();
            next += n;
            v
        };
        let src_vars = take(32);
        let dst_vars = take(32);
        let proto_vars = take(2);
        let sport_vars = take(16);
        let dport_vars = take(16);
        // 98 variables and range-heavy ACL encodings: pre-size for the
        // typical footprint of a lint/disambiguation pass so the unique
        // table skips its early rehash ladder.
        let mut mgr = Manager::with_capacity(next, 1 << 14);
        // Protocol code 0 is the `ip` wildcard, never a concrete packet.
        let valid = mgr.ge_const(&proto_vars, 1);
        // Pin it and let the kernel collect unrooted garbage between work
        // items. The handcrafted variable order is already interleaved, so
        // auto-reorder stays off for packets.
        let valid_root = mgr.protect(valid);
        mgr.set_auto_gc(true);
        PacketSpace {
            mgr,
            src_vars,
            dst_vars,
            proto_vars,
            sport_vars,
            dport_vars,
            valid,
            _valid_root: valid_root,
        }
    }

    /// The BDD manager.
    pub fn manager(&mut self) -> &mut Manager {
        &mut self.mgr
    }

    /// The set of assignments that decode to well-formed packets.
    pub fn valid(&self) -> Ref {
        self.valid
    }

    fn encode_addr(&mut self, vars: &[u32], m: &AddrMatch) -> Ref {
        let p = m.as_prefix();
        let addr = p.addr_u32();
        let mut acc = Ref::TRUE;
        for (i, &v) in vars.iter().enumerate().take(p.len() as usize) {
            let bit = (addr >> (31 - i)) & 1 == 1;
            let lit = self.mgr.literal(v, bit);
            acc = self.mgr.and(acc, lit);
        }
        acc
    }

    fn encode_ports(&mut self, vars: &[u32], r: &PortRange) -> Ref {
        if r.is_any() {
            Ref::TRUE
        } else {
            self.mgr.range_const(vars, u64::from(r.lo), u64::from(r.hi))
        }
    }

    /// Encodes one ACL entry's match set.
    pub fn encode_entry(&mut self, e: &AclEntry) -> Ref {
        let mut acc = match e.protocol {
            Protocol::Ip => Ref::TRUE,
            p => self
                .mgr
                .eq_const(&self.proto_vars.clone(), u64::from(p.code())),
        };
        let src = self.encode_addr(&self.src_vars.clone(), &e.src);
        acc = self.mgr.and(acc, src);
        let dst = self.encode_addr(&self.dst_vars.clone(), &e.dst);
        acc = self.mgr.and(acc, dst);
        let sp = self.encode_ports(&self.sport_vars.clone(), &e.src_ports);
        acc = self.mgr.and(acc, sp);
        let dp = self.encode_ports(&self.dport_vars.clone(), &e.dst_ports);
        acc = self.mgr.and(acc, dp);
        acc
    }

    /// Raw per-entry match sets.
    pub fn match_sets(&mut self, acl: &Acl) -> Vec<Ref> {
        acl.entries.iter().map(|e| self.encode_entry(e)).collect()
    }

    /// First-match firing regions per entry, plus the implicit-deny
    /// remainder (packets reaching the end without matching).
    pub fn fire_sets(&mut self, acl: &Acl) -> (Vec<Ref>, Ref) {
        let _span = clarify_obs::span!("acl_fire_sets");
        clarify_obs::global()
            .counter("analysis.fire_set_builds")
            .incr();
        let mut fires = Vec::with_capacity(acl.entries.len());
        let mut unmatched = self.valid;
        for e in &acl.entries {
            let m = self.encode_entry(e);
            fires.push(self.mgr.and(unmatched, m));
            let nm = self.mgr.not(m);
            unmatched = self.mgr.and(unmatched, nm);
        }
        (fires, unmatched)
    }

    /// The set of (valid) packets the ACL permits (first match, implicit
    /// trailing deny).
    pub fn permit_set(&mut self, acl: &Acl) -> Ref {
        let mut permitted = Ref::FALSE;
        let mut unmatched = self.valid;
        for e in &acl.entries {
            let m = self.encode_entry(e);
            let fires = self.mgr.and(unmatched, m);
            if e.action == Action::Permit {
                permitted = self.mgr.or(permitted, fires);
            }
            let nm = self.mgr.not(m);
            unmatched = self.mgr.and(unmatched, nm);
        }
        permitted
    }

    /// Batfish-style `searchFilters`: a packet the named ACL handles with
    /// `action`, optionally constrained further.
    pub fn search_filters(
        &mut self,
        cfg: &Config,
        acl_name: &str,
        action: Action,
        constraint: Option<Ref>,
    ) -> Result<Option<Packet>, AnalysisError> {
        let acl = cfg
            .acl(acl_name)
            .ok_or_else(|| {
                AnalysisError::Config(clarify_netconfig::ConfigError::NotFound {
                    kind: "access-list",
                    name: acl_name.to_string(),
                })
            })?
            .clone();
        let permits = self.permit_set(&acl);
        let mut region = match action {
            Action::Permit => permits,
            Action::Deny => {
                let np = self.mgr.not(permits);
                self.mgr.and(self.valid, np)
            }
        };
        if let Some(c) = constraint {
            region = self.mgr.and(region, c);
        }
        Ok(self.witness(region))
    }

    /// Encodes a concrete packet as a point.
    pub fn encode_packet(&mut self, p: &Packet) -> Ref {
        let mut acc = Ref::TRUE;
        let fields: [(Vec<u32>, u64); 5] = [
            (self.src_vars.clone(), u64::from(u32::from(p.src_ip))),
            (self.dst_vars.clone(), u64::from(u32::from(p.dst_ip))),
            (self.proto_vars.clone(), u64::from(p.protocol.code())),
            (self.sport_vars.clone(), u64::from(p.src_port)),
            (self.dport_vars.clone(), u64::from(p.dst_port)),
        ];
        for (vars, value) in fields {
            let enc = self.mgr.eq_const(&vars, value);
            acc = self.mgr.and(acc, enc);
        }
        acc
    }

    /// Decodes a satisfying assignment into a concrete packet.
    pub fn decode_packet(&self, cube: &Cube) -> Packet {
        Packet {
            src_ip: std::net::Ipv4Addr::from(cube.decode(&self.src_vars) as u32),
            dst_ip: std::net::Ipv4Addr::from(cube.decode(&self.dst_vars) as u32),
            protocol: Protocol::from_code(cube.decode(&self.proto_vars) as u8),
            src_port: cube.decode(&self.sport_vars) as u16,
            dst_port: cube.decode(&self.dport_vars) as u16,
        }
    }

    /// A concrete packet from a region, or `None` when empty.
    pub fn witness(&mut self, region: Ref) -> Option<Packet> {
        let r = self.mgr.and(region, self.valid);
        self.mgr.any_sat(r).map(|c| self.decode_packet(&c))
    }
}
