//! Differential comparison of ACLs (the packet-filter counterpart of
//! [`crate::compare_route_policies`]) and of prefix lists.

use clarify_bdd::{Manager, Ref};
use clarify_netconfig::{Acl, AclVerdict, Action, PrefixList};
use clarify_nettypes::{Packet, Prefix, PrefixRange};

use crate::error::AnalysisError;
use crate::packet_space::PacketSpace;

/// One concrete packet on which two ACLs disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterDiff {
    /// The differential packet.
    pub packet: Packet,
    /// Verdict under the first ACL.
    pub a: AclVerdict,
    /// Verdict under the second ACL.
    pub b: AclVerdict,
}

/// Finds up to `limit` packets on which the two ACLs differ. ACL outcomes
/// are pure permit/deny, so the difference region is exactly the symmetric
/// difference of the permit sets; each witness is re-validated concretely.
pub fn compare_filters(space: &mut PacketSpace, a: &Acl, b: &Acl, limit: usize) -> Vec<FilterDiff> {
    let pa = space.permit_set(a);
    let pb = space.permit_set(b);
    let valid = space.valid();
    let mut region = {
        let x = space.manager().xor(pa, pb);
        space.manager().and(x, valid)
    };
    let mut diffs = Vec::new();
    while diffs.len() < limit {
        let Some(packet) = space.witness(region) else {
            break;
        };
        let va = eval_acl(a, &packet);
        let vb = eval_acl(b, &packet);
        debug_assert_ne!(va.action, vb.action, "witness must differ");
        diffs.push(FilterDiff {
            packet,
            a: va,
            b: vb,
        });
        // Exclude this exact packet and search for another.
        let point = space.encode_packet(&packet);
        let np = space.manager().not(point);
        region = space.manager().and(region, np);
    }
    diffs
}

/// Whether two ACLs permit exactly the same packets.
pub fn filters_equivalent(space: &mut PacketSpace, a: &Acl, b: &Acl) -> bool {
    compare_filters(space, a, b, 1).is_empty()
}

fn eval_acl(acl: &Acl, pkt: &Packet) -> AclVerdict {
    for (i, e) in acl.entries.iter().enumerate() {
        if e.matches(pkt) {
            return AclVerdict {
                action: e.action,
                index: Some(i),
            };
        }
    }
    AclVerdict {
        action: Action::Deny,
        index: None,
    }
}

// ---------------------------------------------------------------------
// Prefix lists (the paper's §7 future work: disambiguating insertions
// into ancillary structures that can themselves conflict).
// ---------------------------------------------------------------------

/// The symbolic space of route prefixes: 32 address bits plus 6 length
/// bits, with `len <= 32` as the validity constraint. This is the input
/// space of a prefix list viewed as a standalone filter.
pub struct PrefixSpace {
    mgr: Manager,
    addr_vars: Vec<u32>,
    len_vars: Vec<u32>,
    valid: Ref,
    /// Pins `valid` across the manager's collections (never unprotected).
    _valid_root: clarify_bdd::Root,
}

impl Default for PrefixSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixSpace {
    /// Builds the space.
    pub fn new() -> PrefixSpace {
        let addr_vars: Vec<u32> = (0..32).collect();
        let len_vars: Vec<u32> = (32..38).collect();
        // Prefix-list comparisons stay small (38 variables, interval
        // constraints only); a modest pre-size avoids the first rehashes
        // without over-allocating per comparison.
        let mut mgr = Manager::with_capacity(38, 1 << 12);
        let valid = mgr.le_const(&len_vars, 32);
        // Pin it; unrooted garbage is collected between comparisons.
        let valid_root = mgr.protect(valid);
        mgr.set_auto_gc(true);
        PrefixSpace {
            mgr,
            addr_vars,
            len_vars,
            valid,
            _valid_root: valid_root,
        }
    }

    /// The manager, for custom constraints.
    pub fn manager(&mut self) -> &mut Manager {
        &mut self.mgr
    }

    /// The well-formedness constraint (`len <= 32`).
    pub fn valid(&self) -> Ref {
        self.valid
    }

    /// Encodes the set of prefixes a range matches.
    pub fn encode_range(&mut self, range: &PrefixRange) -> Ref {
        let l = range.prefix.len() as usize;
        let addr = range.prefix.addr_u32();
        let mut covered = Ref::TRUE;
        for (i, &v) in self.addr_vars.iter().enumerate().take(l) {
            let bit = (addr >> (31 - i)) & 1 == 1;
            let lit = self.mgr.literal(v, bit);
            covered = self.mgr.and(covered, lit);
        }
        let len_ok = self.mgr.range_const(
            &self.len_vars.clone(),
            u64::from(range.min_len),
            u64::from(range.max_len),
        );
        self.mgr.and(covered, len_ok)
    }

    /// Encodes a single concrete prefix as a point.
    pub fn encode_prefix(&mut self, p: &Prefix) -> Ref {
        let mut acc = Ref::TRUE;
        let addr = p.addr_u32();
        // Constrain only the first `len` address bits: decoding normalizes
        // host bits away, so this encodes the full equivalence class of
        // assignments for `p`, which makes witness point-exclusion sound.
        for (i, &v) in self
            .addr_vars
            .clone()
            .iter()
            .enumerate()
            .take(p.len() as usize)
        {
            let bit = (addr >> (31 - i)) & 1 == 1;
            let lit = self.mgr.literal(v, bit);
            acc = self.mgr.and(acc, lit);
        }
        let len = self
            .mgr
            .eq_const(&self.len_vars.clone(), u64::from(p.len()));
        self.mgr.and(acc, len)
    }

    /// The set of prefixes a list *permits* (first match, default deny).
    pub fn permit_set(&mut self, list: &PrefixList) -> Ref {
        let mut permitted = Ref::FALSE;
        let mut unmatched = self.valid;
        for e in &list.entries {
            let m = self.encode_range(&e.range);
            let fires = self.mgr.and(unmatched, m);
            if e.action == Action::Permit {
                permitted = self.mgr.or(permitted, fires);
            }
            let nm = self.mgr.not(m);
            unmatched = self.mgr.and(unmatched, nm);
        }
        permitted
    }

    /// Raw per-entry match sets.
    pub fn match_sets(&mut self, list: &PrefixList) -> Vec<Ref> {
        list.entries
            .iter()
            .map(|e| self.encode_range(&e.range))
            .collect()
    }

    /// First-match firing regions per entry, plus the default-deny
    /// remainder (prefixes reaching the end without matching).
    pub fn fire_sets(&mut self, list: &PrefixList) -> (Vec<Ref>, Ref) {
        let _span = clarify_obs::span!("prefix_fire_sets");
        clarify_obs::global()
            .counter("analysis.fire_set_builds")
            .incr();
        let mut fires = Vec::with_capacity(list.entries.len());
        let mut unmatched = self.valid;
        for e in &list.entries {
            let m = self.encode_range(&e.range);
            fires.push(self.mgr.and(unmatched, m));
            let nm = self.mgr.not(m);
            unmatched = self.mgr.and(unmatched, nm);
        }
        (fires, unmatched)
    }

    /// A concrete prefix from a region, or `None` when empty. The decoded
    /// prefix is normalized to its length.
    pub fn witness(&mut self, region: Ref) -> Option<Prefix> {
        let r = self.mgr.and(region, self.valid);
        let cube = self.mgr.any_sat(r)?;
        let addr = cube.decode(&self.addr_vars) as u32;
        let len = (cube.decode(&self.len_vars) as u8).min(32);
        Some(Prefix::from_u32(addr, len))
    }
}

/// One concrete prefix on which two prefix lists disagree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixListDiff {
    /// The differential prefix.
    pub prefix: Prefix,
    /// Whether the first list permits it.
    pub a_permits: bool,
    /// Whether the second list permits it.
    pub b_permits: bool,
}

/// Finds up to `limit` prefixes on which the two lists disagree.
pub fn compare_prefix_lists(
    space: &mut PrefixSpace,
    a: &PrefixList,
    b: &PrefixList,
    limit: usize,
) -> Result<Vec<PrefixListDiff>, AnalysisError> {
    let pa = space.permit_set(a);
    let pb = space.permit_set(b);
    let mut region = space.manager().xor(pa, pb);
    let mut diffs = Vec::new();
    while diffs.len() < limit {
        let Some(prefix) = space.witness(region) else {
            break;
        };
        let a_permits = a.permits(&prefix);
        let b_permits = b.permits(&prefix);
        debug_assert_ne!(a_permits, b_permits, "witness must differ");
        diffs.push(PrefixListDiff {
            prefix,
            a_permits,
            b_permits,
        });
        let point = space.encode_prefix(&prefix);
        let np = space.manager().not(point);
        region = space.manager().and(region, np);
    }
    Ok(diffs)
}

/// Whether two prefix lists permit exactly the same prefixes.
pub fn prefix_lists_equivalent(
    space: &mut PrefixSpace,
    a: &PrefixList,
    b: &PrefixList,
) -> Result<bool, AnalysisError> {
    Ok(compare_prefix_lists(space, a, b, 1)?.is_empty())
}
