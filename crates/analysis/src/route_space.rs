//! The symbolic route space: BDD variables for every matchable field of a
//! BGP route, plus encode/decode between [`BgpRoute`]s and BDD sets.

use std::collections::HashMap;

use clarify_automata::{AtomSpace, Regex};
use clarify_bdd::{Cube, Manager, Ref};
use clarify_netconfig::{
    Action, AsPathList, CommunityList, Config, PrefixList, RouteMap, RouteMapMatch, RouteMapStanza,
};
use clarify_nettypes::{AsPath, BgpRoute, Community, Prefix, PrefixRange};

use crate::error::AnalysisError;

/// All syntactically valid community subject strings: `N:M` with one to
/// five digits per half. Values above 65535 are rejected when a witness is
/// decoded; shortest-witness extraction never produces them for the
/// patterns real configurations use.
const COMMUNITY_UNIVERSE: &str = "^[0-9][0-9]?[0-9]?[0-9]?[0-9]?:[0-9][0-9]?[0-9]?[0-9]?[0-9]?$";

/// All syntactically valid AS-path subject strings: possibly empty,
/// space-separated AS numbers of one to five digits.
const AS_PATH_UNIVERSE: &str =
    "^([0-9][0-9]?[0-9]?[0-9]?[0-9]?( [0-9][0-9]?[0-9]?[0-9]?[0-9]?)*)?$";

/// Width of the numeric attribute fields (local-pref, metric, tag).
const FIELD_BITS: u32 = 16;

/// The symbolic input space of route-map analysis.
///
/// Built once per analysis session from every configuration that will be
/// involved (base config plus snippet), so that all of them share one set
/// of atomic predicates; encoding a config whose regexes were not part of
/// the construction fails with [`AnalysisError::UnknownPattern`].
pub struct RouteSpace {
    pub(crate) mgr: Manager,
    pub(crate) comm_atoms: AtomSpace,
    pub(crate) path_atoms: AtomSpace,
    comm_pattern_idx: HashMap<String, usize>,
    path_pattern_idx: HashMap<String, usize>,
    prefix_vars: Vec<u32>,
    plen_vars: Vec<u32>,
    pub(crate) lp_vars: Vec<u32>,
    pub(crate) metric_vars: Vec<u32>,
    pub(crate) tag_vars: Vec<u32>,
    pub(crate) comm_vars: Vec<u32>,
    pub(crate) path_vars: Vec<u32>,
    valid: Ref,
    /// Pins `valid` across the manager's collections for the lifetime of
    /// the space (never unprotected — the safe failure mode).
    _valid_root: clarify_bdd::Root,
}

impl RouteSpace {
    /// Builds the space for analyses over the given configurations.
    pub fn new(configs: &[&Config]) -> Result<RouteSpace, AnalysisError> {
        let _span = clarify_obs::span!("route_space_build");
        clarify_obs::global()
            .counter("analysis.route_space_builds")
            .incr();
        // Collect regex patterns in deterministic first-seen order.
        let mut comm_patterns: Vec<Regex> = Vec::new();
        let mut comm_pattern_idx = HashMap::new();
        let mut path_patterns: Vec<Regex> = Vec::new();
        let mut path_pattern_idx = HashMap::new();
        for cfg in configs {
            for cl in cfg.community_lists.values() {
                for e in &cl.entries {
                    let key = e.regex.pattern().to_string();
                    if let std::collections::hash_map::Entry::Vacant(v) =
                        comm_pattern_idx.entry(key)
                    {
                        v.insert(comm_patterns.len());
                        comm_patterns.push(e.regex.clone());
                    }
                }
            }
            for al in cfg.as_path_lists.values() {
                for e in &al.entries {
                    let key = e.regex.pattern().to_string();
                    if let std::collections::hash_map::Entry::Vacant(v) =
                        path_pattern_idx.entry(key)
                    {
                        v.insert(path_patterns.len());
                        path_patterns.push(e.regex.clone());
                    }
                }
            }
        }

        let comm_universe = Regex::parse(COMMUNITY_UNIVERSE)
            .expect("community universe regex is valid")
            .to_dfa();
        let path_universe = Regex::parse(AS_PATH_UNIVERSE)
            .expect("AS-path universe regex is valid")
            .to_dfa();
        let comm_atoms = AtomSpace::build(&comm_universe, &comm_patterns)
            .ok_or(AnalysisError::AtomLimitExceeded)?;
        let path_atoms = AtomSpace::build(&path_universe, &path_patterns)
            .ok_or(AnalysisError::AtomLimitExceeded)?;

        let path_bits = {
            let n = path_atoms.len().max(1);
            // Bits needed to index n atoms.
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };

        // Variable layout, in order.
        let mut next = 0u32;
        let mut take = |n: usize| -> Vec<u32> {
            let vars: Vec<u32> = (next..next + n as u32).collect();
            next += n as u32;
            vars
        };
        let prefix_vars = take(32);
        let plen_vars = take(6);
        let lp_vars = take(FIELD_BITS as usize);
        let metric_vars = take(FIELD_BITS as usize);
        let tag_vars = take(FIELD_BITS as usize);
        let comm_vars = take(comm_atoms.len());
        let path_vars = take(path_bits);

        // Pre-size the kernel tables from the atomic-predicate counts: the
        // fixed fields contribute a roughly constant footprint, and every
        // community/path atom multiplies the stanza encodings it appears in.
        let node_hint = 1 << 13 | ((comm_atoms.len() + path_atoms.len()) * 512).next_power_of_two();
        let mut mgr = Manager::with_capacity(next, node_hint);
        let mut valid = mgr.le_const(&plen_vars, 32);
        if !path_vars.is_empty() {
            let in_range = mgr.le_const(&path_vars, (path_atoms.len().max(1) - 1) as u64);
            valid = mgr.and(valid, in_range);
        }
        // Pin the validity predicate and let the kernel collect everything
        // unrooted (and re-sift a degraded order) at the clear_op_caches
        // seams between work items. Witnesses are order-invariant, so
        // neither touches decoded output.
        let valid_root = mgr.protect(valid);
        mgr.set_auto_gc(true);
        mgr.set_auto_reorder(true);

        Ok(RouteSpace {
            mgr,
            comm_atoms,
            path_atoms,
            comm_pattern_idx,
            path_pattern_idx,
            prefix_vars,
            plen_vars,
            lp_vars,
            metric_vars,
            tag_vars,
            comm_vars,
            path_vars,
            valid,
            _valid_root: valid_root,
        })
    }

    /// The BDD manager (exposed for composing custom constraints).
    pub fn manager(&mut self) -> &mut Manager {
        &mut self.mgr
    }

    /// The set of assignments that decode to well-formed routes.
    pub fn valid(&self) -> Ref {
        self.valid
    }

    /// Number of community atomic predicates.
    pub fn num_community_atoms(&self) -> usize {
        self.comm_atoms.len()
    }

    /// Number of AS-path atomic predicates.
    pub fn num_path_atoms(&self) -> usize {
        self.path_atoms.len()
    }

    pub(crate) fn field_value(
        &self,
        field: &'static str,
        value: u32,
    ) -> Result<u64, AnalysisError> {
        if value >= 1 << FIELD_BITS {
            Err(AnalysisError::ValueTooLarge { field, value })
        } else {
            Ok(u64::from(value))
        }
    }

    /// Encodes "the route's prefix matches this prefix range".
    pub fn encode_prefix_range(&mut self, range: &PrefixRange) -> Ref {
        let l = range.prefix.len() as usize;
        let addr = range.prefix.addr_u32();
        let mut covered = Ref::TRUE;
        for (i, &v) in self.prefix_vars.iter().enumerate().take(l) {
            let bit = (addr >> (31 - i)) & 1 == 1;
            let lit = self.mgr.literal(v, bit);
            covered = self.mgr.and(covered, lit);
        }
        let len_ok = self.mgr.range_const(
            &self.plen_vars,
            u64::from(range.min_len),
            u64::from(range.max_len),
        );
        self.mgr.and(covered, len_ok)
    }

    /// Encodes a prefix list's *permit* set (first match wins, default deny).
    pub fn encode_prefix_list(&mut self, list: &PrefixList) -> Ref {
        let mut permitted = Ref::FALSE;
        let mut unmatched = Ref::TRUE;
        for e in &list.entries {
            let m = self.encode_prefix_range(&e.range);
            let fires = self.mgr.and(unmatched, m);
            if e.action == Action::Permit {
                permitted = self.mgr.or(permitted, fires);
            }
            let nm = self.mgr.not(m);
            unmatched = self.mgr.and(unmatched, nm);
        }
        permitted
    }

    fn pattern_set(&mut self, kind: &'static str, pattern: &str) -> Result<Ref, AnalysisError> {
        match kind {
            "community" => {
                let &idx = self
                    .comm_pattern_idx
                    .get(pattern)
                    .ok_or_else(|| AnalysisError::UnknownPattern(pattern.to_string()))?;
                let members: Vec<usize> = self.comm_atoms.members_of(idx).to_vec();
                let lits: Vec<Ref> = members
                    .iter()
                    .map(|&a| self.mgr.var(self.comm_vars[a]))
                    .collect();
                Ok(self.mgr.or_all(lits))
            }
            "as-path" => {
                let &idx = self
                    .path_pattern_idx
                    .get(pattern)
                    .ok_or_else(|| AnalysisError::UnknownPattern(pattern.to_string()))?;
                let members: Vec<usize> = self.path_atoms.members_of(idx).to_vec();
                let path_vars = self.path_vars.clone();
                let terms: Vec<Ref> = members
                    .iter()
                    .map(|&a| self.mgr.eq_const(&path_vars, a as u64))
                    .collect();
                Ok(self.mgr.or_all(terms))
            }
            _ => unreachable!("pattern kind"),
        }
    }

    /// Encodes a community list's permit set.
    pub fn encode_community_list(&mut self, list: &CommunityList) -> Result<Ref, AnalysisError> {
        let mut permitted = Ref::FALSE;
        let mut unmatched = Ref::TRUE;
        for e in &list.entries {
            let m = self.pattern_set("community", e.regex.pattern())?;
            let fires = self.mgr.and(unmatched, m);
            if e.action == Action::Permit {
                permitted = self.mgr.or(permitted, fires);
            }
            let nm = self.mgr.not(m);
            unmatched = self.mgr.and(unmatched, nm);
        }
        Ok(permitted)
    }

    /// Encodes an AS-path list's permit set.
    pub fn encode_as_path_list(&mut self, list: &AsPathList) -> Result<Ref, AnalysisError> {
        let mut permitted = Ref::FALSE;
        let mut unmatched = Ref::TRUE;
        for e in &list.entries {
            let m = self.pattern_set("as-path", e.regex.pattern())?;
            let fires = self.mgr.and(unmatched, m);
            if e.action == Action::Permit {
                permitted = self.mgr.or(permitted, fires);
            }
            let nm = self.mgr.not(m);
            unmatched = self.mgr.and(unmatched, nm);
        }
        Ok(permitted)
    }

    /// Encodes one match clause.
    pub fn encode_match(&mut self, cfg: &Config, m: &RouteMapMatch) -> Result<Ref, AnalysisError> {
        Ok(match m {
            RouteMapMatch::PrefixList(names) => {
                let mut acc = Ref::FALSE;
                for n in names {
                    let pl = cfg.prefix_list(n)?.clone();
                    let enc = self.encode_prefix_list(&pl);
                    acc = self.mgr.or(acc, enc);
                }
                acc
            }
            RouteMapMatch::Community(names) => {
                let mut acc = Ref::FALSE;
                for n in names {
                    let cl = cfg.community_list(n)?.clone();
                    let enc = self.encode_community_list(&cl)?;
                    acc = self.mgr.or(acc, enc);
                }
                acc
            }
            RouteMapMatch::AsPath(names) => {
                let mut acc = Ref::FALSE;
                for n in names {
                    let al = cfg.as_path_list(n)?.clone();
                    let enc = self.encode_as_path_list(&al)?;
                    acc = self.mgr.or(acc, enc);
                }
                acc
            }
            RouteMapMatch::LocalPref(v) => {
                let v = self.field_value("local-preference", *v)?;
                self.mgr.eq_const(&self.lp_vars.clone(), v)
            }
            RouteMapMatch::Metric(v) => {
                let v = self.field_value("metric", *v)?;
                self.mgr.eq_const(&self.metric_vars.clone(), v)
            }
            RouteMapMatch::Tag(v) => {
                let v = self.field_value("tag", *v)?;
                self.mgr.eq_const(&self.tag_vars.clone(), v)
            }
        })
    }

    /// Encodes a stanza's full match condition (conjunction of clauses).
    pub fn encode_stanza_match(
        &mut self,
        cfg: &Config,
        stanza: &RouteMapStanza,
    ) -> Result<Ref, AnalysisError> {
        let mut acc = Ref::TRUE;
        for m in &stanza.matches {
            let enc = self.encode_match(cfg, m)?;
            acc = self.mgr.and(acc, enc);
        }
        Ok(acc)
    }

    /// Raw per-stanza match sets (ignoring earlier stanzas).
    pub fn match_sets(&mut self, cfg: &Config, map: &RouteMap) -> Result<Vec<Ref>, AnalysisError> {
        map.stanzas
            .iter()
            .map(|s| self.encode_stanza_match(cfg, s))
            .collect()
    }

    /// First-match firing regions per stanza, plus the implicit-deny
    /// remainder (routes reaching the end without matching).
    pub fn fire_sets(
        &mut self,
        cfg: &Config,
        map: &RouteMap,
    ) -> Result<(Vec<Ref>, Ref), AnalysisError> {
        let _span = clarify_obs::span!("route_fire_sets");
        clarify_obs::global()
            .counter("analysis.fire_set_builds")
            .incr();
        let mut fires = Vec::with_capacity(map.stanzas.len());
        let mut unmatched = self.valid;
        for s in &map.stanzas {
            let m = self.encode_stanza_match(cfg, s)?;
            fires.push(self.mgr.and(unmatched, m));
            let nm = self.mgr.not(m);
            unmatched = self.mgr.and(unmatched, nm);
        }
        Ok((fires, unmatched))
    }

    /// The set of (valid) routes the named route-map permits.
    pub fn permit_set(&mut self, cfg: &Config, name: &str) -> Result<Ref, AnalysisError> {
        let map = cfg
            .route_map(name)
            .ok_or_else(|| {
                AnalysisError::Config(clarify_netconfig::ConfigError::NotFound {
                    kind: "route-map",
                    name: name.to_string(),
                })
            })?
            .clone();
        let (fires, _) = self.fire_sets(cfg, &map)?;
        let permits: Vec<Ref> = map
            .stanzas
            .iter()
            .zip(&fires)
            .filter(|(s, _)| s.action == Action::Permit)
            .map(|(_, &f)| f)
            .collect();
        Ok(self.mgr.or_all(permits))
    }

    /// Batfish-style `searchRoutePolicies`: a concrete route the policy
    /// handles with `action`, optionally further constrained.
    pub fn search_route_policies(
        &mut self,
        cfg: &Config,
        name: &str,
        action: Action,
        constraint: Option<Ref>,
    ) -> Result<Option<BgpRoute>, AnalysisError> {
        let permits = self.permit_set(cfg, name)?;
        let mut region = match action {
            Action::Permit => permits,
            Action::Deny => {
                let np = self.mgr.not(permits);
                self.mgr.and(self.valid, np)
            }
        };
        if let Some(c) = constraint {
            region = self.mgr.and(region, c);
        }
        self.witness(region)
    }

    /// Encodes a single concrete route as a point in the space.
    pub fn encode_route(&mut self, route: &BgpRoute) -> Result<Ref, AnalysisError> {
        let mut acc = Ref::TRUE;
        let addr = route.network.addr_u32();
        // Only the first `len` address bits identify the route: decode
        // normalizes host bits away, and no match clause ever constrains a
        // bit at or beyond the route's own prefix length. Encoding the
        // whole equivalence class keeps point membership faithful *and*
        // makes point exclusion in [`RouteSpace::witnesses`] sound (a
        // 32-bit point would leave same-route assignments behind,
        // yielding duplicate witnesses).
        for (i, &v) in self
            .prefix_vars
            .clone()
            .iter()
            .enumerate()
            .take(route.network.len() as usize)
        {
            let bit = (addr >> (31 - i)) & 1 == 1;
            let lit = self.mgr.literal(v, bit);
            acc = self.mgr.and(acc, lit);
        }
        let plen = self
            .mgr
            .eq_const(&self.plen_vars.clone(), u64::from(route.network.len()));
        acc = self.mgr.and(acc, plen);
        let lp = self.field_value("local-preference", route.local_pref)?;
        let lp = self.mgr.eq_const(&self.lp_vars.clone(), lp);
        acc = self.mgr.and(acc, lp);
        let med = self.field_value("metric", route.metric)?;
        let med = self.mgr.eq_const(&self.metric_vars.clone(), med);
        acc = self.mgr.and(acc, med);
        let tag = self.field_value("tag", route.tag)?;
        let tag = self.mgr.eq_const(&self.tag_vars.clone(), tag);
        acc = self.mgr.and(acc, tag);

        // Community atoms: variable i is true iff the route carries a
        // community inside atom i.
        for (i, &v) in self.comm_vars.clone().iter().enumerate() {
            let has = route.communities.iter().any(|c| {
                self.comm_atoms
                    .classify(&c.subject())
                    .map(|a| a == i)
                    .unwrap_or(false)
            });
            let lit = self.mgr.literal(v, has);
            acc = self.mgr.and(acc, lit);
        }
        // Every community must classify somewhere, or the encoding would
        // silently under-represent the route.
        for c in &route.communities {
            if self.comm_atoms.classify(&c.subject()).is_none() {
                return Err(AnalysisError::OutsideUniverse {
                    kind: "community",
                    value: c.subject(),
                });
            }
        }

        if !self.path_vars.is_empty() {
            let idx = self
                .path_atoms
                .classify(&route.as_path.subject())
                .ok_or_else(|| AnalysisError::OutsideUniverse {
                    kind: "AS path",
                    value: route.as_path.subject(),
                })?;
            let enc = self.mgr.eq_const(&self.path_vars.clone(), idx as u64);
            acc = self.mgr.and(acc, enc);
        } else if self.path_atoms.len() == 1
            && self.path_atoms.classify(&route.as_path.subject()).is_none()
        {
            return Err(AnalysisError::OutsideUniverse {
                kind: "AS path",
                value: route.as_path.subject(),
            });
        }
        Ok(acc)
    }

    /// Decodes a satisfying assignment into a concrete route.
    ///
    /// Unconstrained variables default to zero; the prefix is normalized to
    /// its decoded length; unencoded fields (next hop, weight) get the
    /// paper's default values.
    pub fn decode_route(&self, cube: &Cube) -> Result<BgpRoute, AnalysisError> {
        let addr = cube.decode(&self.prefix_vars) as u32;
        let plen = (cube.decode(&self.plen_vars) as u8).min(32);
        let network = Prefix::from_u32(addr, plen);
        let mut route = BgpRoute::with_defaults(network);
        route.local_pref = cube.decode(&self.lp_vars) as u32;
        route.metric = cube.decode(&self.metric_vars) as u32;
        route.tag = cube.decode(&self.tag_vars) as u32;

        for (i, &v) in self.comm_vars.iter().enumerate() {
            if cube.value_or_false(v) {
                let w = self.comm_atoms.witness(i);
                let c: Community = w.parse().map_err(|_| AnalysisError::OutsideUniverse {
                    kind: "community witness",
                    value: w.to_string(),
                })?;
                route.communities.insert(c);
            }
        }

        if !self.path_atoms.is_empty() {
            let idx = (cube.decode(&self.path_vars) as usize).min(self.path_atoms.len() - 1);
            let w = self.path_atoms.witness(idx);
            let path: AsPath = w.parse().map_err(|_| AnalysisError::OutsideUniverse {
                kind: "AS-path witness",
                value: w.to_string(),
            })?;
            route.as_path = path;
        }
        Ok(route)
    }

    /// A concrete route from a region, or `None` if it is empty (after
    /// intersecting with the validity constraint).
    pub fn witness(&mut self, region: Ref) -> Result<Option<BgpRoute>, AnalysisError> {
        let r = self.mgr.and(region, self.valid);
        match self.mgr.any_sat(r) {
            None => Ok(None),
            Some(cube) => Ok(Some(self.decode_route(&cube)?)),
        }
    }

    /// Like [`RouteSpace::witness`] but walks high branches first, which
    /// usually yields a different example.
    pub fn witness_alt(&mut self, region: Ref) -> Result<Option<BgpRoute>, AnalysisError> {
        let r = self.mgr.and(region, self.valid);
        match self.mgr.any_sat_high(r) {
            None => Ok(None),
            Some(cube) => Ok(Some(self.decode_route(&cube)?)),
        }
    }
}

/// Constraints on the *output* route of a permitting policy, for
/// [`RouteSpace::search_route_policies_out`] (Batfish's
/// `searchRoutePolicies` supports the same via `outputConstraints`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutputConstraints {
    /// Required MED of the outgoing route.
    pub metric: Option<u32>,
    /// Required LOCAL_PREF of the outgoing route.
    pub local_pref: Option<u32>,
    /// Required tag of the outgoing route.
    pub tag: Option<u32>,
}

impl RouteSpace {
    /// Finds an input route the policy *permits* whose **output** satisfies
    /// the given constraints, optionally restricted by an input-side
    /// constraint. Returns `(input, output)` with the output computed by
    /// the concrete evaluator.
    ///
    /// Exact for the constrained fields: a stanza that sets the field
    /// contributes its whole firing region iff the set value matches; a
    /// stanza that leaves it alone contributes the sub-region where the
    /// *input* already carries the required value.
    pub fn search_route_policies_out(
        &mut self,
        cfg: &Config,
        name: &str,
        input_constraint: Option<Ref>,
        out: &OutputConstraints,
    ) -> Result<Option<(BgpRoute, BgpRoute)>, AnalysisError> {
        use clarify_netconfig::RouteMapSet;
        let map = cfg
            .route_map(name)
            .ok_or_else(|| {
                AnalysisError::Config(clarify_netconfig::ConfigError::NotFound {
                    kind: "route-map",
                    name: name.to_string(),
                })
            })?
            .clone();
        let (fires, _) = self.fire_sets(cfg, &map)?;
        let mut region = Ref::FALSE;
        for (stanza, &fire) in map.stanzas.iter().zip(&fires) {
            if stanza.action != Action::Permit {
                continue;
            }
            // Last assignment wins within a stanza.
            let mut set_metric = None;
            let mut set_lp = None;
            let mut set_tag = None;
            for s in &stanza.sets {
                match s {
                    RouteMapSet::Metric(v) => set_metric = Some(*v),
                    RouteMapSet::LocalPref(v) => set_lp = Some(*v),
                    RouteMapSet::Tag(v) => set_tag = Some(*v),
                    _ => {}
                }
            }
            let mut r = fire;
            for (want, assigned, field) in [
                (out.metric, set_metric, "metric"),
                (out.local_pref, set_lp, "local-preference"),
                (out.tag, set_tag, "tag"),
            ] {
                let Some(w) = want else { continue };
                match assigned {
                    Some(v) if v == w => {}
                    Some(_) => {
                        r = Ref::FALSE;
                    }
                    None => {
                        // Output equals input: constrain the input field.
                        let wv = self.field_value(field, w)?;
                        let vars = match field {
                            "metric" => self.metric_vars.clone(),
                            "local-preference" => self.lp_vars.clone(),
                            _ => self.tag_vars.clone(),
                        };
                        let eq = self.mgr.eq_const(&vars, wv);
                        r = self.mgr.and(r, eq);
                    }
                }
                if r == Ref::FALSE {
                    break;
                }
            }
            region = self.mgr.or(region, r);
        }
        if let Some(c) = input_constraint {
            region = self.mgr.and(region, c);
        }
        let Some(input) = self.witness(region)? else {
            return Ok(None);
        };
        let verdict = cfg.eval_route_map(name, &input)?;
        // `region` is an OR of permit-stanza fire regions, so any witness
        // drawn from it must evaluate to a permit; a deny here means the
        // symbolic encoding diverged from concrete evaluation, which we
        // surface as an error rather than panicking the caller.
        let output = verdict
            .route()
            .ok_or(AnalysisError::InvariantViolated(
                "witness from a permit-only region evaluated to deny",
            ))?
            .clone();
        debug_assert!(out.metric.is_none_or(|w| output.metric == w));
        debug_assert!(out.local_pref.is_none_or(|w| output.local_pref == w));
        debug_assert!(out.tag.is_none_or(|w| output.tag == w));
        Ok(Some((input, output)))
    }
}

impl RouteSpace {
    /// Up to `limit` pairwise-distinct concrete routes drawn from a
    /// region, by repeated witness extraction with point exclusion.
    /// Useful to show a user several example routes from a contested
    /// region rather than just one.
    pub fn witnesses(&mut self, region: Ref, limit: usize) -> Result<Vec<BgpRoute>, AnalysisError> {
        let mut region = self.mgr.and(region, self.valid);
        let mut out = Vec::new();
        while out.len() < limit {
            let Some(cube) = self.mgr.any_sat(region) else {
                break;
            };
            let route = self.decode_route(&cube)?;
            let point = self.encode_route(&route)?;
            let np = self.mgr.not(point);
            region = self.mgr.and(region, np);
            out.push(route);
        }
        Ok(out)
    }
}
