//! Machine-readable stanza specifications and verification against them.
//!
//! After the LLM synthesizes a stanza, the pipeline extracts a JSON spec
//! from the user's prompt (§2.1 of the paper shows the format), the user
//! eyeballs the spec, and the synthesized stanza is *verified* against it
//! symbolically. This module defines that spec and the verifier.

use clarify_automata::Regex;
use clarify_bdd::Ref;
use clarify_netconfig::{Action, Config, RouteMapSet, RouteMapStanza};
use clarify_nettypes::{BgpRoute, PrefixRange};

use crate::error::AnalysisError;
use crate::route_compare::verdicts_equal;
use crate::route_space::RouteSpace;

/// A machine-readable specification of a single route-map stanza.
///
/// Mirrors the paper's JSON: an action, prefix constraints, community and
/// AS-path regexes, optional exact attribute matches, and the expected set
/// clauses.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StanzaSpec {
    /// Expected action (`true` in the paper's `"permit"` field).
    pub permit: bool,
    /// Prefix ranges the stanza must match (OR when several).
    pub prefixes: Vec<PrefixRange>,
    /// Community regexes (each must match some community of the route).
    pub communities: Vec<String>,
    /// AS-path regexes.
    pub as_paths: Vec<String>,
    /// Exact local-preference match, if any.
    pub local_pref: Option<u32>,
    /// Exact metric match, if any.
    pub metric: Option<u32>,
    /// Exact tag match, if any.
    pub tag: Option<u32>,
    /// Expected set clauses.
    pub sets: Vec<RouteMapSet>,
}

impl StanzaSpec {
    /// Renders the paper's JSON format, e.g.
    /// `{"permit": true, "prefix": ["100.0.0.0/16:16-23"], "community":
    /// "/_300:3_/", "set": {"metric": 55}}`.
    pub fn to_json(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        parts.push(format!("\"permit\": {}", self.permit));
        if !self.prefixes.is_empty() {
            let items: Vec<String> = self
                .prefixes
                .iter()
                .map(|r| {
                    format!(
                        "\"{}/{}:{}-{}\"",
                        r.prefix.addr(),
                        r.prefix.len(),
                        r.min_len,
                        r.max_len
                    )
                })
                .collect();
            parts.push(format!("\"prefix\": [{}]", items.join(", ")));
        }
        for c in &self.communities {
            parts.push(format!("\"community\": \"/{c}/\""));
        }
        for p in &self.as_paths {
            parts.push(format!("\"as-path\": \"/{p}/\""));
        }
        if let Some(v) = self.local_pref {
            parts.push(format!("\"local-preference\": {v}"));
        }
        if let Some(v) = self.metric {
            parts.push(format!("\"metric\": {v}"));
        }
        if let Some(v) = self.tag {
            parts.push(format!("\"tag\": {v}"));
        }
        if !self.sets.is_empty() {
            let items: Vec<String> = self
                .sets
                .iter()
                .map(|s| match s {
                    RouteMapSet::Metric(v) => format!("\"metric\": {v}"),
                    RouteMapSet::LocalPref(v) => format!("\"local-preference\": {v}"),
                    RouteMapSet::Weight(v) => format!("\"weight\": {v}"),
                    RouteMapSet::Tag(v) => format!("\"tag\": {v}"),
                    RouteMapSet::NextHop(ip) => format!("\"next-hop\": \"{ip}\""),
                    RouteMapSet::CommunityAdd(cs) => format!(
                        "\"community-add\": [{}]",
                        cs.iter()
                            .map(|c| format!("\"{c}\""))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    RouteMapSet::CommunityReplace(cs) => format!(
                        "\"community\": [{}]",
                        cs.iter()
                            .map(|c| format!("\"{c}\""))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                })
                .collect();
            parts.push(format!("\"set\": {{{}}}", items.join(", ")));
        }
        format!("{{{}}}", parts.join(", "))
    }

    /// The regexes this spec mentions, for building a covering
    /// [`RouteSpace`]. Returns parse errors eagerly.
    pub fn regexes(&self) -> Result<(Vec<Regex>, Vec<Regex>), AnalysisError> {
        let comm = self
            .communities
            .iter()
            .map(|p| Regex::parse(p).map_err(|_| AnalysisError::UnknownPattern(p.clone())))
            .collect::<Result<Vec<_>, _>>()?;
        let path = self
            .as_paths
            .iter()
            .map(|p| Regex::parse(p).map_err(|_| AnalysisError::UnknownPattern(p.clone())))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((comm, path))
    }

    /// Encodes the spec's match region in a route space whose universe
    /// includes the spec's regexes. In practice that space is built from
    /// the snippet configuration, whose lists carry the same regexes.
    pub fn encode_match(&self, space: &mut RouteSpace) -> Result<Ref, AnalysisError> {
        // Express the spec through a synthetic config + stanza so encoding
        // is shared with the normal path.
        let (cfg, stanza) = self.as_stanza("SPEC");
        space.encode_stanza_match(&cfg, &stanza)
    }

    /// Builds an equivalent synthetic config + stanza named `name`.
    pub fn as_stanza(&self, name: &str) -> (Config, RouteMapStanza) {
        use clarify_netconfig::{
            AsPathList, AsPathListEntry, CommunityList, CommunityListEntry, PrefixList,
            PrefixListEntry, RouteMapMatch,
        };
        let mut cfg = Config::new();
        let mut matches = Vec::new();
        if !self.prefixes.is_empty() {
            let pl = PrefixList {
                name: format!("{name}_PFX"),
                entries: self
                    .prefixes
                    .iter()
                    .enumerate()
                    .map(|(i, r)| PrefixListEntry {
                        seq: (i as u32 + 1) * 5,
                        action: Action::Permit,
                        range: *r,
                    })
                    .collect(),
            };
            matches.push(RouteMapMatch::PrefixList(vec![pl.name.clone()]));
            cfg.prefix_lists.insert(pl.name.clone(), pl);
        }
        for (k, pattern) in self.communities.iter().enumerate() {
            let cl = CommunityList {
                name: format!("{name}_COM{k}"),
                entries: vec![CommunityListEntry {
                    action: Action::Permit,
                    regex: Regex::parse(pattern).expect("validated by regexes()"),
                }],
            };
            matches.push(RouteMapMatch::Community(vec![cl.name.clone()]));
            cfg.community_lists.insert(cl.name.clone(), cl);
        }
        for (k, pattern) in self.as_paths.iter().enumerate() {
            let al = AsPathList {
                name: format!("{name}_ASP{k}"),
                entries: vec![AsPathListEntry {
                    action: Action::Permit,
                    regex: Regex::parse(pattern).expect("validated by regexes()"),
                }],
            };
            matches.push(RouteMapMatch::AsPath(vec![al.name.clone()]));
            cfg.as_path_lists.insert(al.name.clone(), al);
        }
        if let Some(v) = self.local_pref {
            matches.push(RouteMapMatch::LocalPref(v));
        }
        if let Some(v) = self.metric {
            matches.push(RouteMapMatch::Metric(v));
        }
        if let Some(v) = self.tag {
            matches.push(RouteMapMatch::Tag(v));
        }
        let stanza = RouteMapStanza {
            seq: 10,
            action: if self.permit {
                Action::Permit
            } else {
                Action::Deny
            },
            matches,
            sets: self.sets.clone(),
        };
        (cfg, stanza)
    }
}

/// Outcome of verifying a synthesized stanza against its spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecVerdict {
    /// The stanza's match set, action, and set clauses all agree.
    Verified,
    /// The stanza's action differs from the spec's.
    ActionMismatch,
    /// The match sets differ; carries a route in the symmetric difference
    /// and whether the *stanza* (as opposed to the spec) matches it.
    MatchMismatch {
        /// A route matched by exactly one of stanza/spec.
        witness: Box<BgpRoute>,
        /// True when the stanza matches the witness but the spec does not.
        stanza_matches: bool,
    },
    /// Set clauses disagree (compared as normalized per-field effects).
    SetMismatch,
}

/// Verifies that the single stanza of `snippet`'s route-map `map_name`
/// implements `spec`, using a fresh route space covering both.
pub fn verify_stanza_against_spec(
    snippet: &Config,
    map_name: &str,
    spec: &StanzaSpec,
) -> Result<SpecVerdict, AnalysisError> {
    let rm = snippet
        .route_map(map_name)
        .ok_or_else(|| {
            AnalysisError::Config(clarify_netconfig::ConfigError::NotFound {
                kind: "route-map",
                name: map_name.to_string(),
            })
        })?
        .clone();
    if rm.stanzas.len() != 1 {
        return Err(AnalysisError::Config(
            clarify_netconfig::ConfigError::InvalidEdit(format!(
                "snippet route-map '{map_name}' must have exactly one stanza"
            )),
        ));
    }
    let stanza = &rm.stanzas[0];
    let spec_action = if spec.permit {
        Action::Permit
    } else {
        Action::Deny
    };
    if stanza.action != spec_action {
        return Ok(SpecVerdict::ActionMismatch);
    }

    // Build a space covering the snippet's and the spec's regexes.
    let (spec_cfg, spec_stanza) = spec.as_stanza("SPEC");
    let mut space = RouteSpace::new(&[snippet, &spec_cfg])?;
    let stanza_set = space.encode_stanza_match(snippet, stanza)?;
    let spec_set = space.encode_stanza_match(&spec_cfg, &spec_stanza)?;
    let sym_diff = space.manager().xor(stanza_set, spec_set);
    if let Some(witness) = space.witness(sym_diff)? {
        let stanza_matches = snippet.stanza_matches(stanza, &witness)?;
        return Ok(SpecVerdict::MatchMismatch {
            witness: Box::new(witness),
            stanza_matches,
        });
    }

    // Compare set-clause effects by evaluating both stanzas as one-stanza
    // policies on a common matching route, plus a normalized syntactic
    // comparison for full coverage.
    if !sets_equivalent(&stanza.sets, &spec.sets) {
        return Ok(SpecVerdict::SetMismatch);
    }
    Ok(SpecVerdict::Verified)
}

/// Compares two set-clause lists by their net per-field effect.
fn sets_equivalent(a: &[RouteMapSet], b: &[RouteMapSet]) -> bool {
    use clarify_netconfig::RouteMapStanza;
    let norm = |sets: &[RouteMapSet]| -> RouteMapStanza {
        RouteMapStanza {
            seq: 10,
            action: Action::Permit,
            matches: Vec::new(),
            sets: sets.to_vec(),
        }
    };
    // Apply both to a probe route with distinctive values and compare, then
    // to a second probe to catch value-coincidences. The second probe's
    // pre-existing community must not appear in either clause list,
    // otherwise `CommunityAdd([c])` and `CommunityReplace([c])` coincide on
    // both probes even though they differ on any route carrying another
    // community — so pick one that neither list mentions.
    let mentioned: std::collections::BTreeSet<clarify_nettypes::Community> = a
        .iter()
        .chain(b)
        .flat_map(|s| match s {
            RouteMapSet::CommunityAdd(cs) | RouteMapSet::CommunityReplace(cs) => cs.clone(),
            _ => Vec::new(),
        })
        .collect();
    let fresh_comm = (0..)
        .map(|v| clarify_nettypes::Community::new(65123, v))
        .find(|c| !mentioned.contains(c))
        .expect("fewer than 2^16 communities are mentioned");
    let probes = [
        BgpRoute::with_defaults("10.0.0.0/8".parse().expect("static prefix")),
        {
            let mut r = BgpRoute::with_defaults("10.0.0.0/8".parse().expect("static prefix"));
            r.metric = 7777;
            r.local_pref = 8888;
            r.tag = 9999;
            r.weight = 1234;
            r.next_hop = std::net::Ipv4Addr::new(9, 9, 9, 9);
            r.communities.insert(fresh_comm);
            r
        },
    ];
    let sa = norm(a);
    let sb = norm(b);
    probes.iter().all(|p| {
        let ra = Config::apply_sets(&sa, p);
        let rb = Config::apply_sets(&sb, p);
        verdicts_equal(
            &clarify_netconfig::RouteMapVerdict::Permit { route: ra, seq: 10 },
            &clarify_netconfig::RouteMapVerdict::Permit { route: rb, seq: 10 },
        )
    })
}
