//! Socket-level integration tests: a real daemon on an ephemeral port,
//! driven by a real TCP client, covering the full §2 worked example,
//! error frames, mid-turn reconnects, and shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use clarify_obs::json::{self, Value};
use clarify_serve::{Server, ServerConfig};

const ISP_OUT: &str = "\
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
";

const PROMPT: &str = "Write a route-map stanza that permits routes containing the prefix \
100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. \
Their MED value should be set to 55.";

struct Daemon {
    addr: std::net::SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(cfg: ServerConfig) -> Daemon {
        let server = Server::bind(cfg).expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            server.run().expect("server run");
        });
        Daemon {
            addr,
            handle: Some(handle),
        }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    /// Sends `shutdown` and joins the accept loops.
    fn stop(mut self) {
        let mut c = self.connect();
        let frame = c.roundtrip("{\"op\":\"shutdown\"}");
        assert!(
            frame.contains("shutting-down"),
            "unexpected shutdown frame: {frame}"
        );
        self.handle
            .take()
            .expect("not yet joined")
            .join()
            .expect("accept loops exit cleanly");
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write newline");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read frame");
        assert!(n > 0, "connection closed while expecting a frame");
        line.trim_end().to_string()
    }

    /// Sends one request and reads one response frame.
    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    /// True when the server closed the connection — clean EOF, or a
    /// reset when it dropped the socket with client bytes still unread
    /// (the oversized-frame path does exactly that).
    fn closed(&mut self) -> bool {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(n) => n == 0,
            Err(_) => true,
        }
    }
}

fn field<'a>(doc: &'a Value, key: &str) -> Option<&'a Value> {
    doc.as_object("frame")
        .ok()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn parse(frame: &str) -> Value {
    json::parse(frame).unwrap_or_else(|e| panic!("frame is not JSON ({e}): {frame}"))
}

fn open_config(c: &mut Client, config: &str) -> u64 {
    let frame = c.roundtrip(&format!(
        "{{\"op\":\"open\",\"config\":{}}}",
        json::escape(config)
    ));
    let doc = parse(&frame);
    field(&doc, "session")
        .and_then(|v| v.as_u64("session").ok())
        .unwrap_or_else(|| panic!("open failed: {frame}"))
}

/// Drives one full disambiguation to completion, always answering 1.
/// Returns (questions asked, final frame).
fn drive_to_done(c: &mut Client, session: u64, target: &str, intent: &str) -> (usize, Value) {
    let mut frame = c.roundtrip(&format!(
        "{{\"op\":\"ask\",\"session\":{session},\"target\":{},\"intent\":{}}}",
        json::escape(target),
        json::escape(intent)
    ));
    let mut questions = 0usize;
    loop {
        let doc = parse(&frame);
        assert_eq!(
            field(&doc, "ok").and_then(|v| v.as_bool("ok").ok()),
            Some(true),
            "turn failed: {frame}"
        );
        if field(&doc, "done").and_then(|v| v.as_bool("done").ok()) == Some(true) {
            return (questions, doc);
        }
        assert!(field(&doc, "question").is_some(), "no question in {frame}");
        questions += 1;
        frame = c.roundtrip(&format!(
            "{{\"op\":\"answer\",\"session\":{session},\"choice\":1}}"
        ));
    }
}

#[test]
fn full_worked_example_over_the_socket() {
    let daemon = Daemon::start(ServerConfig::default());
    let mut c = daemon.connect();

    assert!(c.roundtrip("{\"op\":\"ping\"}").contains("pong"));

    let session = open_config(&mut c, ISP_OUT);
    let (questions, done) = drive_to_done(&mut c, session, "ISP_OUT", PROMPT);

    // The §2 worked example: all-OPTION-1 answers put the stanza on top
    // after 2 questions and 3 LLM calls (pinned by tests/sec2_worked_example.rs
    // and tests/golden_e1.rs for the in-process path).
    assert_eq!(questions, 2, "question count drifted");
    assert_eq!(
        field(&done, "result").and_then(|v| v.as_str("result").ok()),
        Some("inserted")
    );
    assert_eq!(
        field(&done, "position").and_then(|v| v.as_u64("p").ok()),
        Some(0)
    );
    assert_eq!(
        field(&done, "llm_calls").and_then(|v| v.as_u64("c").ok()),
        Some(3)
    );
    let config = field(&done, "config")
        .and_then(|v| v.as_str("config").ok())
        .expect("updated config in frame");
    assert!(config.contains("route-map ISP_OUT"), "config echoed back");
    assert!(config.contains("set metric 55"), "snippet landed: {config}");

    // Warm turn on the same session: lint.
    let frame = c.roundtrip(&format!("{{\"op\":\"lint\",\"session\":{session}}}"));
    let doc = parse(&frame);
    assert!(field(&doc, "diagnostics").is_some(), "lint frame: {frame}");

    // Second ask on the same session reuses the warm space and sees the
    // previously inserted stanza in its base.
    let (_q2, done2) = drive_to_done(&mut c, session, "ISP_OUT", PROMPT);
    assert_eq!(
        field(&done2, "result").and_then(|v| v.as_str("result").ok()),
        Some("inserted")
    );

    assert!(c
        .roundtrip(&format!("{{\"op\":\"close\",\"session\":{session}}}"))
        .contains("closed"));
    daemon.stop();
}

#[test]
fn malformed_input_gets_error_frames_not_a_dead_daemon() {
    let daemon = Daemon::start(ServerConfig::default());
    let mut c = daemon.connect();

    for (line, code) in [
        ("this is not json", "bad-json"),
        ("{\"op\":17}", "bad-request"),
        ("{\"op\":\"frobnicate\"}", "unknown-op"),
        (
            "{\"op\":\"ask\",\"session\":42,\"target\":\"X\",\"intent\":\"y\"}",
            "unknown-session",
        ),
        (
            "{\"op\":\"answer\",\"session\":1,\"choice\":9}",
            "bad-request",
        ),
        (
            "{\"op\":\"open\",\"config\":\"route-map BROKEN\"}",
            "bad-request",
        ),
    ] {
        let frame = c.roundtrip(line);
        assert!(frame.contains("\"ok\":false"), "{line} -> {frame}");
        assert!(frame.contains(code), "expected {code}: {line} -> {frame}");
        parse(&frame); // every error frame is valid JSON
    }

    // Same connection still works after all that abuse.
    assert!(c.roundtrip("{\"op\":\"ping\"}").contains("pong"));
    daemon.stop();
}

#[test]
fn oversized_line_closes_only_that_connection() {
    let daemon = Daemon::start(ServerConfig {
        max_frame_bytes: 4096,
        ..ServerConfig::default()
    });

    let mut c = daemon.connect();
    let huge = "x".repeat(8192);
    c.send(&huge); // no newline needed: the cap trips on buffered bytes
    let frame = c.recv();
    assert!(frame.contains("oversized-frame"), "{frame}");
    assert!(
        c.closed(),
        "connection should close after an oversized line"
    );

    // The daemon itself survives; a new connection is served.
    let mut c2 = daemon.connect();
    assert!(c2.roundtrip("{\"op\":\"ping\"}").contains("pong"));
    daemon.stop();
}

#[test]
fn mid_turn_disconnect_preserves_the_session() {
    let daemon = Daemon::start(ServerConfig::default());

    // Ask and answer the first question, then vanish mid-turn.
    let mut c1 = daemon.connect();
    let session = open_config(&mut c1, ISP_OUT);
    let frame = c1.roundtrip(&format!(
        "{{\"op\":\"ask\",\"session\":{session},\"target\":\"ISP_OUT\",\"intent\":{}}}",
        json::escape(PROMPT)
    ));
    assert!(frame.contains("question"), "{frame}");
    drop(c1);

    // A new connection resumes the same session where it left off.
    let mut c2 = daemon.connect();
    let mut frame = c2.roundtrip(&format!(
        "{{\"op\":\"answer\",\"session\":{session},\"choice\":1}}"
    ));
    let mut rounds = 0;
    while !frame.contains("\"done\":true") {
        assert!(frame.contains("question"), "{frame}");
        frame = c2.roundtrip(&format!(
            "{{\"op\":\"answer\",\"session\":{session},\"choice\":1}}"
        ));
        rounds += 1;
        assert!(rounds < 10, "no convergence: {frame}");
    }
    assert!(
        frame.contains("\"position\":0"),
        "resumed run still lands on top: {frame}"
    );
    daemon.stop();
}
