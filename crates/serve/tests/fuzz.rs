//! Byte-level protocol fuzz (ISSUE satellite): malformed input must never
//! kill the daemon.
//!
//! One daemon serves the whole run. Each case opens a connection and
//! throws garbage at it — raw bytes, truncated JSON, wrong-shaped ops,
//! stale session ids, oversized lines, mid-write disconnects — then a
//! health probe on a *fresh* connection asserts the daemon still answers
//! and can run a complete open → lint → close conversation. The probe is
//! the property; whatever the garbage provoked (error frames, closed
//! connections) is allowed, a dead or wedged daemon is not.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use clarify_obs::json;
use clarify_serve::{Server, ServerConfig};
use clarify_testkit::{Rng, Runner, Source};

const SMALL_CFG: &str = "route-map DEMO permit 10\n match ip address prefix-list P1\n set metric 5\n!\nip prefix-list P1 seq 5 permit 10.0.0.0/8\n";

fn garbage_line(g: &mut Source) -> Vec<u8> {
    match g.gen_range(0..8u32) {
        // Raw bytes, including NUL and high bits (may embed newlines —
        // the framing layer must cope with whatever splits result).
        0 => {
            let n = g.gen_range(0..200usize);
            (0..n).map(|_| g.gen_range(0..=255u32) as u8).collect()
        }
        // Printable noise.
        1 => g.ascii(120, &['"', '{', '}', '\\']).into_bytes(),
        // Truncated JSON.
        2 => {
            let full = format!(
                "{{\"op\":\"ask\",\"session\":{},\"target\":\"X\"",
                g.gen_range(0..5u32)
            );
            let cut = g.gen_range(0..=full.len());
            full.as_bytes()[..cut].to_vec()
        }
        // Well-formed JSON, wrong shape.
        3 => g
            .pick(&[
                "{}",
                "[]",
                "42",
                "{\"op\":17}",
                "{\"op\":\"ask\"}",
                "{\"op\":\"answer\",\"session\":1}",
                "{\"op\":\"answer\",\"session\":1,\"choice\":0}",
                "{\"op\":\"open\",\"config\":42}",
                "{\"op\":\"open\",\"topology\":\"garbage topology\"}",
            ])
            .as_bytes()
            .to_vec(),
        // Valid op against a session that (almost certainly) is not open.
        4 => format!(
            "{{\"op\":\"{}\",\"session\":{}}}",
            g.pick(&["lint", "close"]),
            g.gen_range(0..1000u64)
        )
        .into_bytes(),
        // A config that does not parse.
        5 => "{\"op\":\"open\",\"config\":\"route-map BROKEN\"}"
            .as_bytes()
            .to_vec(),
        // Oversized line (the daemon's cap here is 16 KiB).
        6 => vec![b'a'; 32 * 1024],
        // Empty / whitespace.
        _ => g.pick(&["", " ", "\t", "\r"]).as_bytes().to_vec(),
    }
}

fn health_probe(addr: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("daemon still accepts");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut turn = |line: String| -> String {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("daemon still answers");
        assert!(!resp.is_empty(), "daemon closed the healthy connection");
        resp
    };
    assert!(turn("{\"op\":\"ping\"}".into()).contains("pong"));
    let resp = turn(format!(
        "{{\"op\":\"open\",\"config\":{}}}",
        json::escape(SMALL_CFG)
    ));
    assert!(
        resp.contains("\"session\""),
        "open failed after fuzz: {resp}"
    );
    let id: u64 = resp
        .split("\"session\":")
        .nth(1)
        .and_then(|s| s.trim_end_matches(['}', '\n']).parse().ok())
        .expect("session id");
    assert!(turn(format!("{{\"op\":\"lint\",\"session\":{id}}}")).contains("\"ok\":true"));
    assert!(turn(format!("{{\"op\":\"close\",\"session\":{id}}}")).contains("closed"));
}

#[test]
fn daemon_survives_arbitrary_byte_storms() {
    let server = Server::bind(ServerConfig {
        max_frame_bytes: 16 * 1024,
        max_sessions: 64,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run().expect("run"));

    Runner::new("serve::byte_storm").cases(30).run(|g| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let lines = g.vec(1, 12, garbage_line);
        let drop_mid_write = g.gen_range(0..4u32) == 0;
        for (i, line) in lines.iter().enumerate() {
            if stream.write_all(line).is_err() {
                break; // daemon closed on us (oversized etc.) — allowed
            }
            if drop_mid_write && i == lines.len() / 2 {
                break; // vanish without a newline, mid-frame
            }
            if stream.write_all(b"\n").is_err() {
                break;
            }
        }
        drop(stream); // possibly with responses unread: exercises write errors
        health_probe(addr);
    });

    // Clean shutdown still works after the storm.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(b"{\"op\":\"shutdown\"}\n").expect("write");
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).expect("read");
    assert!(resp.contains("shutting-down"), "{resp}");
    handle.join().expect("accept loops exit");
}
