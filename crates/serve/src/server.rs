//! The daemon: a `TcpListener` accept loop, a shared session table, and
//! idle eviction.
//!
//! Concurrency model: `workers` loops run on the `clarify-par` pool;
//! each multiplexes any number of nonblocking connections (poll, not
//! thread-per-connection — the worker count bounds CPU use and no
//! client can exhaust threads). All connections share one session
//! table — a client may open a session on one connection, disconnect
//! mid-turn, and resume it from another. Turns on *different* sessions
//! run concurrently across workers; turns on the *same* session
//! serialize on that session's mutex, which is what makes replay
//! deterministic (see DESIGN.md §11).
//!
//! Lock order: `sessions` before `wheel`, never the reverse. Session
//! mutexes are only taken while holding neither.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use clarify_llm::BackendStack;
use clarify_netconfig::Config;
use clarify_netsim::TopologySpec;

use crate::clock::{Clock, SystemClock};
use crate::proto::{parse_request, Frame, ProtoError, Request};
use crate::session::{ConfigSession, NetSession, SessionKind};
use crate::wheel::DeadlineWheel;

/// Daemon tunables.
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:4545`. Port 0 picks one.
    pub addr: String,
    /// Live-session cap; opens beyond it get a `busy` error.
    pub max_sessions: usize,
    /// Sessions idle longer than this are evicted.
    pub idle_timeout_ms: u64,
    /// Longest accepted request line; longer closes the connection.
    pub max_frame_bytes: usize,
    /// Accept-loop workers (0 = the `clarify-par` thread count).
    pub workers: usize,
    /// The backend stack every session builds its pipeline from. Each
    /// open builds a fresh stack instance, so replay cursors and fault
    /// RNGs are per-session while daemon and one-shot CLI runs share the
    /// identical middleware composition.
    pub backend: BackendStack,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 1024,
            idle_timeout_ms: 300_000,
            max_frame_bytes: 1 << 20,
            workers: 0,
            backend: BackendStack::semantic(),
        }
    }
}

/// One table slot. `last_activity` lives outside the session mutex so
/// eviction scans never contend with a turn in progress.
struct SessionEntry {
    last_activity: AtomicU64,
    kind: Mutex<SessionKind>,
}

/// State shared by every worker: the session table, the eviction wheel,
/// and the clock. Separated from the listener so unit tests can drive
/// turns and eviction without a socket.
pub struct Shared {
    cfg: ServerConfig,
    clock: Arc<dyn Clock>,
    sessions: Mutex<HashMap<u64, Arc<SessionEntry>>>,
    wheel: Mutex<DeadlineWheel>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    /// Builds the shared state with an injected clock.
    pub fn new(cfg: ServerConfig, clock: Arc<dyn Clock>) -> Shared {
        let obs = clarify_obs::global();
        obs.counter("serve.turns");
        obs.counter("serve.evictions");
        obs.counter("serve.sessions.opened");
        obs.gauge("serve.sessions.live").set(0);
        Shared {
            cfg,
            clock,
            sessions: Mutex::new(HashMap::new()),
            wheel: Mutex::new(DeadlineWheel::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The configured tunables.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Live sessions right now.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Whether `shutdown` has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: accept loops drain and exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn set_live_gauge(&self, n: usize) {
        clarify_obs::global()
            .gauge("serve.sessions.live")
            .set(n as i64);
    }

    /// Evicts every session idle past the timeout. Called from accept
    /// loops between polls and before opens; cheap when nothing is due.
    pub fn evict_expired(&self) {
        let now = self.clock.now_ms();
        let mut sessions = self.sessions.lock().unwrap();
        let expired = {
            let mut wheel = self.wheel.lock().unwrap();
            wheel.expired(now, self.cfg.idle_timeout_ms, |id| {
                sessions
                    .get(&id)
                    .map(|e| e.last_activity.load(Ordering::SeqCst))
            })
        };
        if expired.is_empty() {
            return;
        }
        let obs = clarify_obs::global();
        for id in expired {
            if sessions.remove(&id).is_some() {
                obs.counter("serve.evictions").incr();
            }
        }
        self.set_live_gauge(sessions.len());
    }

    /// Inserts a freshly opened session and returns its id.
    fn insert(&self, kind: SessionKind) -> Result<u64, ProtoError> {
        self.evict_expired();
        let now = self.clock.now_ms();
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let mut sessions = self.sessions.lock().unwrap();
        if sessions.len() >= self.cfg.max_sessions {
            return Err(ProtoError {
                code: "busy",
                message: format!(
                    "session table is full ({} live); retry later or raise --max-sessions",
                    sessions.len()
                ),
            });
        }
        sessions.insert(
            id,
            Arc::new(SessionEntry {
                last_activity: AtomicU64::new(now),
                kind: Mutex::new(kind),
            }),
        );
        self.wheel
            .lock()
            .unwrap()
            .schedule(now.saturating_add(self.cfg.idle_timeout_ms), id);
        let obs = clarify_obs::global();
        obs.counter("serve.sessions.opened").incr();
        self.set_live_gauge(sessions.len());
        Ok(id)
    }

    /// Runs `f` on the session, serialized against other turns on it.
    fn with_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut SessionKind) -> Result<R, ProtoError>,
    ) -> Result<R, ProtoError> {
        let entry = {
            let sessions = self.sessions.lock().unwrap();
            sessions.get(&id).cloned().ok_or(ProtoError {
                code: "unknown-session",
                message: format!("no session {id} (closed, evicted, or never opened)"),
            })?
        };
        let now = self.clock.now_ms();
        entry.last_activity.store(now, Ordering::SeqCst);
        self.wheel
            .lock()
            .unwrap()
            .schedule(now.saturating_add(self.cfg.idle_timeout_ms), id);
        let _span = clarify_obs::span!("serve_turn");
        clarify_obs::global().counter("serve.turns").incr();
        let mut kind = entry.kind.lock().unwrap();
        f(&mut kind)
    }

    fn open_config(&self, text: &str) -> Result<String, ProtoError> {
        let config = Config::parse(text)
            .map_err(|e| ProtoError::bad(format!("config did not parse: {e}")))?;
        let id = self.insert(SessionKind::Config(Box::new(ConfigSession::new(
            config,
            &self.cfg.backend,
        ))))?;
        Ok(Frame::ok(true).u64("session", id).finish())
    }

    fn open_network(
        &self,
        topology: &str,
        configs: &[(String, String)],
        invariants: Vec<clarify_core::Invariant>,
    ) -> Result<String, ProtoError> {
        let spec = TopologySpec::parse(topology)
            .map_err(|e| ProtoError::bad(format!("topology did not parse: {e}")))?;
        let loaded = spec
            .instantiate(&mut |path: &str| {
                configs
                    .iter()
                    .find(|(p, _)| p == path)
                    .map(|(_, text)| text.clone())
                    .ok_or_else(|| format!("no config supplied for '{path}'"))
            })
            .map_err(|e| ProtoError::bad(format!("topology did not instantiate: {e}")))?;
        let session = NetSession::new(loaded.network, invariants, &self.cfg.backend)
            .map_err(|e| ProtoError::bad(format!("network session rejected: {e}")))?;
        let id = self.insert(SessionKind::Network(Box::new(session)))?;
        Ok(Frame::ok(true).u64("session", id).finish())
    }

    fn close(&self, id: u64) -> Result<String, ProtoError> {
        let mut sessions = self.sessions.lock().unwrap();
        match sessions.remove(&id) {
            Some(_) => {
                self.set_live_gauge(sessions.len());
                Ok(Frame::ok(true).u64("closed", id).finish())
            }
            None => Err(ProtoError {
                code: "unknown-session",
                message: format!("no session {id} (closed, evicted, or never opened)"),
            }),
        }
    }

    /// Handles one request line. Returns the response frame (without
    /// newline) and whether the connection should close afterwards.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(e) => return (e.frame(), false),
        };
        let result = match request {
            Request::Ping => Ok(Frame::ok(true).bool("pong", true).finish()),
            Request::Shutdown => {
                self.request_shutdown();
                return (Frame::ok(true).bool("shutting-down", true).finish(), true);
            }
            Request::OpenConfig { config } => self.open_config(&config),
            Request::OpenNetwork {
                topology,
                configs,
                invariants,
            } => self.open_network(&topology, &configs, invariants),
            Request::Ask {
                session,
                target,
                router,
                intent,
            } => self.with_session(session, |kind| {
                kind.ask(session, &target, router.as_deref(), &intent)
            }),
            Request::Answer { session, choice } => {
                self.with_session(session, |kind| kind.answer(session, choice))
            }
            Request::Lint { session } => self.with_session(session, |kind| kind.lint(session)),
            Request::Close { session } => self.close(session),
        };
        match result {
            Ok(frame) => (frame, false),
            Err(e) => (e.frame(), false),
        }
    }
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `cfg.addr` with the production clock.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        Server::bind_with_clock(cfg, Arc::new(SystemClock::new()))
    }

    /// Binds with an injected clock (tests drive eviction manually).
    pub fn bind_with_clock(cfg: ServerConfig, clock: Arc<dyn Clock>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared::new(cfg, clock)),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (for tests and for embedding).
    pub fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Serves until a `shutdown` request arrives. Spawns the configured
    /// number of accept loops on the `clarify-par` pool and blocks.
    pub fn run(self) -> std::io::Result<()> {
        let workers = if self.shared.cfg.workers == 0 {
            clarify_par::current_threads().max(1)
        } else {
            self.shared.cfg.workers
        };
        let slots: Vec<usize> = (0..workers).collect();
        let listener = &self.listener;
        let shared = &self.shared;
        clarify_par::par_map(&slots, |_| accept_loop(listener, shared));
        Ok(())
    }
}

/// One multiplexed connection: a nonblocking stream plus the bytes read
/// so far that do not yet form a complete line.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if shared.shutdown_requested() {
            return;
        }
        shared.evict_expired();
        let mut progressed = false;
        // Drain the accept queue without blocking.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Frames are tiny and latency-bound: Nagle + delayed
                    // ACK would add ~40ms to every turn.
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_ok() {
                        conns.push(Conn {
                            stream,
                            buf: Vec::new(),
                        });
                        progressed = true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        conns.retain_mut(|conn| match poll_conn(shared, conn) {
            Poll::Progress => {
                progressed = true;
                true
            }
            Poll::Idle => true,
            Poll::Close => {
                progressed = true;
                false
            }
        });
        if !progressed {
            // Nothing readable anywhere: park briefly instead of spinning.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

enum Poll {
    /// Lines were processed or bytes arrived.
    Progress,
    /// Nothing to read right now.
    Idle,
    /// EOF, IO error, oversized frame, or a close-after-response op.
    Close,
}

/// Reads whatever the socket has, answers every complete line, and
/// returns without blocking. A disconnect mid-turn leaves the session
/// intact — the client can reconnect and resume by session id.
fn poll_conn(shared: &Shared, conn: &mut Conn) -> Poll {
    let mut chunk = [0u8; 4096];
    let mut progressed = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Poll::Close, // EOF: client went away; sessions survive.
            Ok(n) => {
                progressed = true;
                conn.buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = conn.buf.drain(..=pos).collect();
                    let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let text = text.trim();
                    if text.is_empty() {
                        continue;
                    }
                    let (frame, close) = shared.handle_line(text);
                    if write_frame(&mut conn.stream, &frame).is_err() || close {
                        return Poll::Close;
                    }
                }
                if conn.buf.len() > shared.cfg.max_frame_bytes {
                    // The line cannot be re-synchronized; report and close
                    // this connection only.
                    let err = ProtoError {
                        code: "oversized-frame",
                        message: format!(
                            "request line exceeds {} bytes; closing connection",
                            shared.cfg.max_frame_bytes
                        ),
                    };
                    let _ = write_frame(&mut conn.stream, &err.frame());
                    return Poll::Close;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                return if progressed {
                    Poll::Progress
                } else {
                    Poll::Idle
                };
            }
            Err(_) => return Poll::Close,
        }
    }
}

/// Writes one frame as a single buffer (frame + newline in one syscall —
/// split writes would re-trigger Nagle stalls even with nodelay set on
/// only one end). The stream is flipped to blocking for the write
/// (responses must go out whole) with a timeout so a stalled client
/// cannot wedge the worker, then back to nonblocking for reads.
fn write_frame(w: &mut TcpStream, frame: &str) -> std::io::Result<()> {
    let mut line = String::with_capacity(frame.len() + 1);
    line.push_str(frame);
    line.push('\n');
    w.set_nonblocking(false)?;
    w.set_write_timeout(Some(Duration::from_secs(10)))?;
    let result = w.write_all(line.as_bytes()).and_then(|()| w.flush());
    w.set_nonblocking(true)?;
    result
}
