//! The wire protocol: newline-delimited JSON, one request object in, one
//! response object out, over a plain TCP stream.
//!
//! Requests (one per line):
//!
//! ```text
//! {"op":"open","config":"<IOS text>"}
//! {"op":"open","topology":"<topology text>","configs":{"<path>":"<IOS text>",...},
//!  "invariants":[{"kind":"reachable","router":"r2","prefix":"10.0.0.0/8"},...]}
//! {"op":"ask","session":1,"target":"ISP_OUT","intent":"<English>"}          (config session)
//! {"op":"ask","session":1,"router":"r1","target":"ISP_OUT","intent":"..."}  (network session)
//! {"op":"answer","session":1,"choice":1}
//! {"op":"lint","session":1}
//! {"op":"close","session":1}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`: `{"ok":true,...}` on success,
//! `{"ok":false,"error":{"code":"...","message":"..."}}` otherwise. Error
//! codes: `oversized-frame`, `bad-json`, `bad-request`, `unknown-op`,
//! `unknown-session`, `turn-in-flight`, `no-turn`, `busy`, `intent-error`,
//! `internal`. Malformed input never kills the daemon: every failure maps
//! to an error frame, and only `oversized-frame` additionally closes the
//! offending connection (the line cannot be re-synchronized).

use clarify_core::{Choice, Invariant};
use clarify_obs::json::{self, Value};

/// One parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Open a single-config session.
    OpenConfig {
        /// The base configuration text.
        config: String,
    },
    /// Open a network session over a topology.
    OpenNetwork {
        /// The topology file text.
        topology: String,
        /// `config` path → file text, resolving the topology's references.
        configs: Vec<(String, String)>,
        /// Invariants every committed update must preserve.
        invariants: Vec<Invariant>,
    },
    /// Start a disambiguation turn.
    Ask {
        /// Target session.
        session: u64,
        /// Route-map (or ACL) name to insert into.
        target: String,
        /// Router name (network sessions only).
        router: Option<String>,
        /// The English intent.
        intent: String,
    },
    /// Answer the pending question.
    Answer {
        /// Target session.
        session: u64,
        /// The chosen option.
        choice: Choice,
    },
    /// Lint the session's current configuration.
    Lint {
        /// Target session.
        session: u64,
    },
    /// Close the session.
    Close {
        /// Target session.
        session: u64,
    },
    /// Liveness probe.
    Ping,
    /// Stop the daemon.
    Shutdown,
}

/// A structured protocol error: a machine-readable code plus a message.
pub struct ProtoError {
    /// One of the documented error codes.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// A `bad-request` error.
    pub fn bad(message: impl Into<String>) -> ProtoError {
        ProtoError {
            code: "bad-request",
            message: message.into(),
        }
    }

    /// Renders the `{"ok":false,...}` frame (no trailing newline).
    pub fn frame(&self) -> String {
        format!(
            "{{\"ok\":false,\"error\":{{\"code\":{},\"message\":{}}}}}",
            json::escape(self.code),
            json::escape(&self.message)
        )
    }
}

fn get<'a>(members: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn need_str(members: &[(String, Value)], key: &str) -> Result<String, ProtoError> {
    get(members, key)
        .ok_or_else(|| ProtoError::bad(format!("missing field '{key}'")))?
        .as_str(key)
        .map(str::to_string)
        .map_err(ProtoError::bad)
}

fn need_u64(members: &[(String, Value)], key: &str) -> Result<u64, ProtoError> {
    get(members, key)
        .ok_or_else(|| ProtoError::bad(format!("missing field '{key}'")))?
        .as_u64(key)
        .map_err(ProtoError::bad)
}

fn parse_invariant(v: &Value) -> Result<Invariant, ProtoError> {
    let m = v.as_object("invariant").map_err(ProtoError::bad)?;
    let kind = need_str(m, "kind")?;
    let router = need_str(m, "router")?;
    let prefix = need_str(m, "prefix")?
        .parse()
        .map_err(|e| ProtoError::bad(format!("invariant prefix: {e}")))?;
    match kind.as_str() {
        "reachable" => Ok(Invariant::Reachable { router, prefix }),
        "unreachable" => Ok(Invariant::Unreachable { router, prefix }),
        "prefers-via" => Ok(Invariant::PrefersVia {
            router,
            prefix,
            neighbor: need_str(m, "neighbor")?,
        }),
        "locally-originated" => Ok(Invariant::LocallyOriginated { router, prefix }),
        other => Err(ProtoError::bad(format!("unknown invariant kind '{other}'"))),
    }
}

/// Parses one request line. JSON syntax errors map to `bad-json`; a
/// well-formed object with a wrong shape maps to `bad-request` /
/// `unknown-op`.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let doc = json::parse(line).map_err(|e| ProtoError {
        code: "bad-json",
        message: e,
    })?;
    let members = doc.as_object("request").map_err(ProtoError::bad)?;
    let op = need_str(members, "op")?;
    match op.as_str() {
        "open" => {
            if let Some(cfg) = get(members, "config") {
                let config = cfg.as_str("config").map_err(ProtoError::bad)?.to_string();
                return Ok(Request::OpenConfig { config });
            }
            let topology = need_str(members, "topology")?;
            let configs = match get(members, "configs") {
                None => Vec::new(),
                Some(v) => v
                    .as_object("configs")
                    .map_err(ProtoError::bad)?
                    .iter()
                    .map(|(path, text)| {
                        text.as_str("configs value")
                            .map(|t| (path.clone(), t.to_string()))
                            .map_err(ProtoError::bad)
                    })
                    .collect::<Result<_, _>>()?,
            };
            let invariants = match get(members, "invariants") {
                None => Vec::new(),
                Some(v) => v
                    .as_array("invariants")
                    .map_err(ProtoError::bad)?
                    .iter()
                    .map(parse_invariant)
                    .collect::<Result<_, _>>()?,
            };
            Ok(Request::OpenNetwork {
                topology,
                configs,
                invariants,
            })
        }
        "ask" => Ok(Request::Ask {
            session: need_u64(members, "session")?,
            target: need_str(members, "target")?,
            router: match get(members, "router") {
                None => None,
                Some(v) => Some(v.as_str("router").map_err(ProtoError::bad)?.to_string()),
            },
            intent: need_str(members, "intent")?,
        }),
        "answer" => Ok(Request::Answer {
            session: need_u64(members, "session")?,
            choice: match need_u64(members, "choice")? {
                1 => Choice::First,
                2 => Choice::Second,
                other => {
                    return Err(ProtoError::bad(format!(
                        "choice must be 1 or 2, got {other}"
                    )))
                }
            },
        }),
        "lint" => Ok(Request::Lint {
            session: need_u64(members, "session")?,
        }),
        "close" => Ok(Request::Close {
            session: need_u64(members, "session")?,
        }),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtoError {
            code: "unknown-op",
            message: format!("unknown op '{other}'"),
        }),
    }
}

/// Incremental JSON object writer for response frames. Purely syntactic —
/// callers pass pre-escaped raw fragments only via [`Frame::raw`].
pub struct Frame {
    out: String,
    first: bool,
}

impl Frame {
    /// Starts an object with `"ok"` set.
    pub fn ok(ok: bool) -> Frame {
        Frame {
            out: format!("{{\"ok\":{ok}"),
            first: false,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(&json::escape(k));
        self.out.push(':');
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, k: &str, v: &str) -> Frame {
        self.key(k);
        self.out.push_str(&json::escape(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Frame {
        self.key(k);
        self.out.push_str(&v.to_string());
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Frame {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a raw, already-serialized JSON fragment.
    pub fn raw(mut self, k: &str, v: &str) -> Frame {
        self.key(k);
        self.out.push_str(v);
        self
    }

    /// Closes the object.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Renders a JSON array of strings.
pub fn string_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json::escape(s));
    }
    out.push(']');
    out
}
