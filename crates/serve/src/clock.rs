//! Injectable time source for the session daemon.
//!
//! All daemon timekeeping (idle eviction, turn timestamps) goes through
//! the [`Clock`] trait so tests can drive eviction deterministically with
//! a [`ManualClock`] instead of sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic millisecond clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary (but fixed) epoch.
    fn now_ms(&self) -> u64;
}

/// The production clock: milliseconds since the clock was created,
/// backed by [`Instant`] (monotonic, immune to wall-clock steps).
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock starting at zero now.
    pub fn new() -> SystemClock {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A hand-cranked clock for tests: time only moves when the test says so.
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_ms`.
    pub fn new(start_ms: u64) -> ManualClock {
        ManualClock {
            now: AtomicU64::new(start_ms),
        }
    }

    /// Advances time by `ms`.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}
