//! Lazy deadline wheel for idle-session eviction.
//!
//! Every turn on a session schedules a fresh deadline; stale entries from
//! earlier turns are *not* removed eagerly. Instead, when an entry pops
//! due, the wheel consults the session's actual `last_activity`: a session
//! that was touched since the entry was scheduled gets one new entry at
//! its true expiry and survives; only sessions genuinely idle past the
//! timeout are reported for eviction. This keeps scheduling O(log n) with
//! no cancellation bookkeeping — the classic lazy-deletion timer heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of `(deadline_ms, session_id)` pairs with lazy deletion.
#[derive(Default)]
pub struct DeadlineWheel {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl DeadlineWheel {
    /// An empty wheel.
    pub fn new() -> DeadlineWheel {
        DeadlineWheel::default()
    }

    /// Schedules `session` for an expiry check at `deadline_ms`.
    pub fn schedule(&mut self, deadline_ms: u64, session: u64) {
        self.heap.push(Reverse((deadline_ms, session)));
    }

    /// Entries currently queued (including stale duplicates).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pops every entry due at `now` and returns the sessions that are
    /// genuinely idle: `last_activity(id)` yields a session's last-touch
    /// time (`None` when it no longer exists — the entry is simply
    /// dropped). A session touched after the entry was scheduled is
    /// re-queued at `last_activity + idle_ms` instead of being evicted.
    pub fn expired(
        &mut self,
        now: u64,
        idle_ms: u64,
        mut last_activity: impl FnMut(u64) -> Option<u64>,
    ) -> Vec<u64> {
        let mut evict = Vec::new();
        while let Some(&Reverse((deadline, session))) = self.heap.peek() {
            if deadline > now {
                break;
            }
            self.heap.pop();
            let Some(touched) = last_activity(session) else {
                continue; // session already closed or evicted
            };
            let true_deadline = touched.saturating_add(idle_ms);
            if true_deadline > now {
                // Stale entry: the session was active since. One fresh
                // entry at its true expiry replaces every stale one.
                self.heap.push(Reverse((true_deadline, session)));
            } else if !evict.contains(&session) {
                evict.push(session);
            }
        }
        evict
    }
}
