//! Unit tests: deadline wheel, manual clock, protocol parsing, and
//! socket-free eviction through [`Shared`].

use std::sync::Arc;

use crate::clock::{Clock, ManualClock};
use crate::proto::{parse_request, Request};
use crate::server::{ServerConfig, Shared};
use crate::wheel::DeadlineWheel;

#[test]
fn wheel_reports_only_genuinely_idle_sessions() {
    let mut wheel = DeadlineWheel::new();
    wheel.schedule(100, 1);
    wheel.schedule(100, 2);

    // At t=50 nothing is due.
    assert!(wheel.expired(50, 100, |_| Some(0)).is_empty());

    // At t=100: session 1 untouched since t=0 → idle. Session 2 was
    // touched at t=80 → re-queued at 180, not evicted.
    let last = |id: u64| Some(if id == 1 { 0 } else { 80 });
    assert_eq!(wheel.expired(100, 100, last), vec![1]);
    assert_eq!(wheel.len(), 1);

    // Session 2's re-queued entry fires at its true deadline.
    assert!(wheel.expired(179, 100, last).is_empty());
    assert_eq!(wheel.expired(180, 100, last), vec![2]);
}

#[test]
fn wheel_drops_entries_for_closed_sessions() {
    let mut wheel = DeadlineWheel::new();
    wheel.schedule(10, 7);
    assert!(wheel.expired(20, 10, |_| None).is_empty());
    assert!(wheel.is_empty());
}

#[test]
fn wheel_dedupes_stale_duplicates_of_one_session() {
    let mut wheel = DeadlineWheel::new();
    // Three turns on the same session left three entries behind.
    wheel.schedule(10, 1);
    wheel.schedule(20, 1);
    wheel.schedule(30, 1);
    assert_eq!(wheel.expired(100, 50, |_| Some(0)), vec![1]);
}

#[test]
fn manual_clock_only_moves_when_advanced() {
    let clock = ManualClock::new(5);
    assert_eq!(clock.now_ms(), 5);
    clock.advance(10);
    assert_eq!(clock.now_ms(), 15);
}

#[test]
fn parse_request_covers_every_op() {
    assert!(matches!(
        parse_request(r#"{"op":"ping"}"#),
        Ok(Request::Ping)
    ));
    assert!(matches!(
        parse_request(r#"{"op":"shutdown"}"#),
        Ok(Request::Shutdown)
    ));
    assert!(matches!(
        parse_request(r#"{"op":"open","config":"route-map X permit 10\n"}"#),
        Ok(Request::OpenConfig { .. })
    ));
    match parse_request(
        r#"{"op":"open","topology":"t","configs":{"a.cfg":"x"},
           "invariants":[{"kind":"reachable","router":"r1","prefix":"10.0.0.0/8"}]}"#,
    ) {
        Ok(Request::OpenNetwork {
            configs,
            invariants,
            ..
        }) => {
            assert_eq!(configs.len(), 1);
            assert_eq!(invariants.len(), 1);
        }
        other => panic!("unexpected: {:?}", other.err().map(|e| e.frame())),
    }
    assert!(matches!(
        parse_request(r#"{"op":"ask","session":3,"target":"M","intent":"set metric"}"#),
        Ok(Request::Ask {
            session: 3,
            router: None,
            ..
        })
    ));
    assert!(matches!(
        parse_request(r#"{"op":"ask","session":3,"router":"r1","target":"M","intent":"i"}"#),
        Ok(Request::Ask {
            router: Some(_),
            ..
        })
    ));
    assert!(matches!(
        parse_request(r#"{"op":"answer","session":3,"choice":2}"#),
        Ok(Request::Answer { .. })
    ));
    assert!(matches!(
        parse_request(r#"{"op":"lint","session":3}"#),
        Ok(Request::Lint { session: 3 })
    ));
    assert!(matches!(
        parse_request(r#"{"op":"close","session":3}"#),
        Ok(Request::Close { session: 3 })
    ));
}

#[test]
fn parse_request_maps_failures_to_stable_codes() {
    assert_eq!(parse_request("not json").unwrap_err().code, "bad-json");
    assert_eq!(parse_request("{}").unwrap_err().code, "bad-request");
    assert_eq!(
        parse_request(r#"{"op":"frobnicate"}"#).unwrap_err().code,
        "unknown-op"
    );
    assert_eq!(
        parse_request(r#"{"op":"answer","session":1,"choice":3}"#)
            .unwrap_err()
            .code,
        "bad-request"
    );
    assert_eq!(
        parse_request(r#"{"op":"ask","session":1}"#)
            .unwrap_err()
            .code,
        "bad-request"
    );
    // Error frames are themselves valid JSON.
    let frame = parse_request("x").unwrap_err().frame();
    clarify_obs::json::parse(&frame).expect("error frame parses");
}

fn shared_with_manual_clock(idle_ms: u64) -> (Arc<ManualClock>, Shared) {
    let clock = Arc::new(ManualClock::new(0));
    let cfg = ServerConfig {
        idle_timeout_ms: idle_ms,
        ..ServerConfig::default()
    };
    let shared = Shared::new(cfg, clock.clone());
    (clock, shared)
}

const BASE_CFG: &str = "route-map DEMO permit 10\n match ip address prefix-list P1\n set metric 5\n!\nip prefix-list P1 seq 5 permit 10.0.0.0/8\n";

fn open(shared: &Shared) -> u64 {
    let line = format!(
        "{{\"op\":\"open\",\"config\":{}}}",
        clarify_obs::json::escape(BASE_CFG)
    );
    let (frame, close) = shared.handle_line(&line);
    assert!(!close);
    let doc = clarify_obs::json::parse(&frame).expect("open frame parses");
    let members = doc.as_object("frame").unwrap();
    let id = members
        .iter()
        .find(|(k, _)| k == "session")
        .and_then(|(_, v)| v.as_u64("session").ok())
        .unwrap_or_else(|| panic!("no session id in {frame}"));
    id
}

#[test]
fn idle_sessions_are_evicted_and_active_ones_survive() {
    let (clock, shared) = shared_with_manual_clock(1_000);
    let idle = open(&shared);
    let active = open(&shared);
    assert_eq!(shared.session_count(), 2);

    // Touch `active` at t=600 via a turn (lint is the cheapest).
    clock.advance(600);
    let (frame, _) = shared.handle_line(&format!("{{\"op\":\"lint\",\"session\":{active}}}"));
    assert!(frame.contains("\"ok\":true"), "lint failed: {frame}");

    // t=1100: `idle` (last touch t=0) is past the 1000ms timeout;
    // `active` (last touch t=600) is not.
    clock.advance(500);
    shared.evict_expired();
    assert_eq!(shared.session_count(), 1);
    let (frame, _) = shared.handle_line(&format!("{{\"op\":\"lint\",\"session\":{idle}}}"));
    assert!(
        frame.contains("unknown-session"),
        "expected eviction: {frame}"
    );
    let (frame, _) = shared.handle_line(&format!("{{\"op\":\"lint\",\"session\":{active}}}"));
    assert!(frame.contains("\"ok\":true"), "survivor broken: {frame}");

    // The survivor, left alone long enough, goes too.
    clock.advance(2_000);
    shared.evict_expired();
    assert_eq!(shared.session_count(), 0);
}

#[test]
fn session_cap_returns_busy_and_close_frees_a_slot() {
    let clock = Arc::new(ManualClock::new(0));
    let cfg = ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    };
    let shared = Shared::new(cfg, clock);
    let first = open(&shared);
    let _second = open(&shared);
    let line = format!(
        "{{\"op\":\"open\",\"config\":{}}}",
        clarify_obs::json::escape(BASE_CFG)
    );
    let (frame, _) = shared.handle_line(&line);
    assert!(frame.contains("\"busy\""), "expected busy: {frame}");
    let (frame, _) = shared.handle_line(&format!("{{\"op\":\"close\",\"session\":{first}}}"));
    assert!(frame.contains("\"ok\":true"), "close failed: {frame}");
    open(&shared); // fits again
}

const E1_INTENT: &str = "Write a route-map stanza that permits routes containing the prefix \
100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. \
Their MED value should be set to 55.";

/// Daemon sessions route turns through the same middleware stack as the
/// one-shot CLI: a recording stack captures the exchanges, a replay stack
/// over that transcript reproduces the turn frame byte-identically, and
/// an exhausted transcript aborts the turn with `backend-error` before
/// anything commits — the session survives and replays cleanly after.
#[test]
fn replayed_sessions_reproduce_recorded_turns_and_exhaustion_aborts() {
    use clarify_llm::{BackendStack, Transcript};
    use std::sync::Mutex;

    // Live pass, with a recording layer in the daemon's stack.
    let sink = Arc::new(Mutex::new(Transcript::default()));
    let cfg = ServerConfig {
        backend: BackendStack::semantic().with_record(sink.clone()),
        ..ServerConfig::default()
    };
    let shared = Shared::new(cfg, Arc::new(ManualClock::new(0)));
    let id = open(&shared);
    let ask = format!(
        "{{\"op\":\"ask\",\"session\":{id},\"target\":\"DEMO\",\"intent\":{}}}",
        clarify_obs::json::escape(E1_INTENT)
    );
    let (live_frame, _) = shared.handle_line(&ask);
    assert!(
        live_frame.contains("\"ok\":true"),
        "live ask failed: {live_frame}"
    );
    let recorded = sink.lock().unwrap().clone();
    assert!(
        recorded.entries.len() >= 3,
        "expected classify/synthesize/extract exchanges, got {}",
        recorded.entries.len()
    );

    // Replay pass: offline stack, byte-identical turn frame.
    let cfg = ServerConfig {
        backend: BackendStack::semantic().with_replay(Arc::new(recorded.clone())),
        ..ServerConfig::default()
    };
    let shared = Shared::new(cfg, Arc::new(ManualClock::new(0)));
    let replay_id = open(&shared);
    assert_eq!(
        replay_id, id,
        "fresh daemons allocate ids deterministically"
    );
    let (replay_frame, _) = shared.handle_line(&ask);
    assert_eq!(replay_frame, live_frame, "replay diverged from recording");

    // Truncated transcript: the turn aborts before any commit and the
    // session stays open.
    let mut truncated = recorded;
    truncated.entries.truncate(1);
    let cfg = ServerConfig {
        backend: BackendStack::semantic().with_replay(Arc::new(truncated)),
        ..ServerConfig::default()
    };
    let shared = Shared::new(cfg, Arc::new(ManualClock::new(0)));
    let id = open(&shared);
    let ask = format!(
        "{{\"op\":\"ask\",\"session\":{id},\"target\":\"DEMO\",\"intent\":{}}}",
        clarify_obs::json::escape(E1_INTENT)
    );
    let (frame, _) = shared.handle_line(&ask);
    assert!(
        frame.contains("backend-error") && frame.contains("transcript exhausted"),
        "expected replay-exhaustion abort: {frame}"
    );
    let (frame, _) = shared.handle_line(&format!("{{\"op\":\"lint\",\"session\":{id}}}"));
    assert!(frame.contains("\"ok\":true"), "session died: {frame}");
}

#[test]
fn turn_state_machine_rejects_out_of_order_ops() {
    let (_clock, shared) = shared_with_manual_clock(10_000);
    let id = open(&shared);
    // answer with no pending question
    let (frame, _) = shared.handle_line(&format!(
        "{{\"op\":\"answer\",\"session\":{id},\"choice\":1}}"
    ));
    assert!(frame.contains("no-turn"), "expected no-turn: {frame}");
    // unknown session
    let (frame, _) = shared.handle_line("{\"op\":\"answer\",\"session\":999,\"choice\":1}");
    assert!(frame.contains("unknown-session"), "{frame}");
    // network-only field on a config session
    let (frame, _) = shared.handle_line(&format!(
        "{{\"op\":\"ask\",\"session\":{id},\"router\":\"r1\",\"target\":\"D\",\"intent\":\"x\"}}"
    ));
    assert!(frame.contains("bad-request"), "{frame}");
}
