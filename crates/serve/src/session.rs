//! Per-session state and turn handling.
//!
//! A *config session* holds one configuration plus warm symbolic state:
//! a [`RouteSpace`] keyed by atom-environment hash, a [`PacketSpace`]
//! (whose layout never depends on the config), and an
//! [`IncrementalLinter`] for `lint` turns. An `ask` turn runs the LLM
//! pipeline once and precomputes an insertion plan
//! ([`clarify_core::InsertionPlan`]); every subsequent `answer` turn is a
//! pure in-memory replay — no symbolic recompute — so turn latency after
//! the first question is microseconds.
//!
//! A *network session* wraps [`NetworkSession`]; turns replay the whole
//! interaction from stored answers with a capturing oracle. The replay is
//! deterministic (the backend and disambiguator are), and the underlying
//! session state only mutates when a replay runs to completion, so a
//! half-answered turn can be resumed or abandoned safely.

use clarify_analysis::{atom_env_hash, PacketSpace, RouteSpace};
use clarify_core::{
    AclInsertionPlan, AclPlanStep, Choice, ClarifyError, DisambiguationQuestion, Disambiguator,
    InsertionPlan, Invariant, NetworkSession, NetworkUpdateOutcome, PlanStep, UserOracle,
};
use clarify_lint::IncrementalLinter;
use clarify_llm::{BackendStack, DynBackend, LlmError, Pipeline, PipelineOutcome};
use clarify_netconfig::{Acl, Config, RouteMap};

use crate::proto::{string_array, Frame, ProtoError};

/// Retry threshold for the synthesis loop, matching the one-shot CLI.
const MAX_ATTEMPTS: usize = 3;

/// What a turn produced: a complete response frame (without newline).
pub type TurnResult = Result<String, ProtoError>;

fn internal(e: impl std::fmt::Display) -> ProtoError {
    ProtoError {
        code: "internal",
        message: e.to_string(),
    }
}

fn intent_error(e: impl std::fmt::Display) -> ProtoError {
    ProtoError {
        code: "intent-error",
        message: e.to_string(),
    }
}

/// Maps a pipeline error onto the protocol: backend-layer failures
/// (replay mismatch or exhaustion, retry exhaustion) get their own code
/// so clients can tell "the transcript ran out" from "the intent was
/// malformed". Either way the session's configuration is untouched.
fn pipeline_error(e: LlmError) -> ProtoError {
    match e {
        LlmError::Backend(e) => ProtoError {
            code: "backend-error",
            message: e.to_string(),
        },
        other => intent_error(other),
    }
}

fn question_frame(session: u64, number: usize, pivot: u64, text: &str) -> String {
    let q = Frame::ok(true)
        .u64("number", number as u64)
        .u64("pivot", pivot)
        .str("text", text)
        .finish();
    // Reuse Frame for the outer object; the inner question is raw JSON.
    Frame::ok(true)
        .bool("done", false)
        .u64("session", session)
        .raw("question", q.replacen("\"ok\":true,", "", 1).as_str())
        .finish()
}

/// One live session: either a single-config or a network session.
pub enum SessionKind {
    /// Single configuration with warm symbolic state.
    Config(Box<ConfigSession>),
    /// Multi-router what-if session.
    Network(Box<NetSession>),
}

impl SessionKind {
    /// Dispatches an `ask` turn.
    pub fn ask(
        &mut self,
        session: u64,
        target: &str,
        router: Option<&str>,
        intent: &str,
    ) -> TurnResult {
        match self {
            SessionKind::Config(s) => {
                if router.is_some() {
                    return Err(ProtoError::bad(
                        "'router' is only valid on network sessions",
                    ));
                }
                s.ask(session, target, intent)
            }
            SessionKind::Network(s) => {
                let Some(router) = router else {
                    return Err(ProtoError::bad("network sessions require 'router'"));
                };
                s.ask(session, router, target, intent)
            }
        }
    }

    /// Dispatches an `answer` turn.
    pub fn answer(&mut self, session: u64, choice: Choice) -> TurnResult {
        match self {
            SessionKind::Config(s) => s.answer(session, choice),
            SessionKind::Network(s) => s.answer(session, choice),
        }
    }

    /// Dispatches a `lint` turn.
    pub fn lint(&mut self, session: u64) -> TurnResult {
        match self {
            SessionKind::Config(s) => s.lint(session),
            SessionKind::Network(_) => Err(ProtoError::bad(
                "lint is only available on config sessions (use `clarify lint --topology` offline)",
            )),
        }
    }
}

/// A pending (question asked, not yet fully answered) insertion turn.
enum Pending {
    RouteMap {
        plan: Box<InsertionPlan>,
        answers: Vec<Choice>,
        llm_calls: usize,
    },
    Acl {
        plan: Box<AclInsertionPlan>,
        answers: Vec<Choice>,
        llm_calls: usize,
    },
}

/// A single-config session.
pub struct ConfigSession {
    config: Config,
    pipeline: Pipeline<DynBackend>,
    disambiguator: Disambiguator,
    /// Warm route space, keyed by the atom-environment hash it was built
    /// over. Reused across turns whenever the hash matches (ROBDD
    /// canonicity makes reuse byte-invisible); rebuilt when an edit
    /// changes the pattern set.
    route_space: Option<(u64, RouteSpace)>,
    /// Warm packet space: its variable layout is config-independent, so
    /// it lives for the whole session.
    packet_space: PacketSpace,
    /// Warm lint session (retains spaces + fire-set caches across turns).
    linter: Option<IncrementalLinter>,
    pending: Option<Pending>,
}

impl ConfigSession {
    /// Opens a session over `config`, building a fresh backend (with its
    /// own replay cursor, when the stack replays a transcript) from the
    /// server's configured stack.
    pub fn new(config: Config, stack: &BackendStack) -> ConfigSession {
        ConfigSession {
            config,
            pipeline: Pipeline::new(stack.build(), MAX_ATTEMPTS),
            disambiguator: Disambiguator::default(),
            route_space: None,
            packet_space: PacketSpace::new(),
            linter: None,
            pending: None,
        }
    }

    /// The session's current configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    fn ask(&mut self, session: u64, target: &str, intent: &str) -> TurnResult {
        if self.pending.is_some() {
            return Err(ProtoError {
                code: "turn-in-flight",
                message: "a question is pending; send 'answer' (or 'close') first".to_string(),
            });
        }
        let outcome = self.pipeline.synthesize(intent).map_err(pipeline_error)?;
        match outcome {
            PipelineOutcome::RouteMap {
                snippet,
                map_name,
                llm_calls,
                ..
            } => {
                let mut working = self.config.clone();
                if working.route_map(target).is_none() {
                    working
                        .route_maps
                        .insert(target.to_string(), RouteMap::empty(target));
                }
                // Warm-space reuse: valid whenever the atom environment
                // (the regex pattern set) of [working, snippet] matches
                // the stored space's — equal hash ⇒ identical variable
                // layout ⇒ identical canonical BDDs.
                let hash = atom_env_hash(&[&working, &snippet]);
                let mut space = match self.route_space.take() {
                    Some((h, space)) if h == hash => space,
                    _ => RouteSpace::new(&[&working, &snippet]).map_err(internal)?,
                };
                let plan = self
                    .disambiguator
                    .plan_in_space(&mut space, &working, target, &snippet, &map_name)
                    .map_err(internal)?;
                // Turn boundary: the plan is fully decoded (no Refs), so
                // drop the memo tables and let the kernel collect this
                // turn's garbage — warm sessions keep a flat arena.
                space.manager().clear_op_caches();
                self.route_space = Some((hash, space));
                self.pending = Some(Pending::RouteMap {
                    plan: Box::new(plan),
                    answers: Vec::new(),
                    llm_calls,
                });
                self.progress(session)
            }
            PipelineOutcome::Acl {
                entry, llm_calls, ..
            } => {
                let mut working = self.config.clone();
                if working.acl(target).is_none() {
                    working.acls.insert(
                        target.to_string(),
                        Acl {
                            name: target.to_string(),
                            entries: Vec::new(),
                        },
                    );
                }
                let plan = clarify_core::plan_acl_in_space(
                    &mut self.packet_space,
                    &working,
                    target,
                    &entry,
                    self.disambiguator.strategy,
                )
                .map_err(internal)?;
                // Same turn-boundary collection as the route-map path.
                self.packet_space.manager().clear_op_caches();
                self.pending = Some(Pending::Acl {
                    plan: Box::new(plan),
                    answers: Vec::new(),
                    llm_calls,
                });
                self.progress(session)
            }
            PipelineOutcome::Punt { llm_calls, reason } => Ok(Frame::ok(true)
                .bool("done", true)
                .u64("session", session)
                .str("result", "punted")
                .str("reason", &reason)
                .u64("llm_calls", llm_calls as u64)
                .finish()),
        }
    }

    fn answer(&mut self, session: u64, choice: Choice) -> TurnResult {
        match &mut self.pending {
            None => Err(ProtoError {
                code: "no-turn",
                message: "no question is pending on this session".to_string(),
            }),
            Some(Pending::RouteMap { answers, .. }) | Some(Pending::Acl { answers, .. }) => {
                answers.push(choice);
                self.progress(session)
            }
        }
    }

    /// Replays the pending plan against its answers: either the next
    /// question, or completion (which commits the new configuration).
    fn progress(&mut self, session: u64) -> TurnResult {
        let pending = self
            .pending
            .take()
            .expect("progress requires a pending turn");
        match pending {
            Pending::RouteMap {
                plan,
                answers,
                llm_calls,
            } => match plan.step(&answers) {
                PlanStep::Ask { number, question } => {
                    let frame = question_frame(
                        session,
                        number,
                        question.pivot_seq as u64,
                        &question.to_string(),
                    );
                    self.pending = Some(Pending::RouteMap {
                        plan,
                        answers,
                        llm_calls,
                    });
                    Ok(frame)
                }
                PlanStep::Done { .. } => {
                    let result = plan.finish(&answers).map_err(internal)?;
                    self.config = result.config.clone();
                    self.route_space = None; // config changed: atom env may have too
                    Ok(Frame::ok(true)
                        .bool("done", true)
                        .u64("session", session)
                        .str("result", "inserted")
                        .u64("position", result.position as u64)
                        .u64("questions", result.questions as u64)
                        .u64("llm_calls", llm_calls as u64)
                        .str("config", &result.config.to_string())
                        .finish())
                }
            },
            Pending::Acl {
                plan,
                answers,
                llm_calls,
            } => match plan.step(&answers) {
                AclPlanStep::Ask { number, question } => {
                    let frame = question_frame(
                        session,
                        number,
                        question.pivot_index as u64,
                        &question.to_string(),
                    );
                    self.pending = Some(Pending::Acl {
                        plan,
                        answers,
                        llm_calls,
                    });
                    Ok(frame)
                }
                AclPlanStep::Done { .. } => {
                    let result = plan.finish(&answers).map_err(internal)?;
                    self.config = result.config.clone();
                    self.route_space = None;
                    Ok(Frame::ok(true)
                        .bool("done", true)
                        .u64("session", session)
                        .str("result", "inserted")
                        .u64("position", result.position as u64)
                        .u64("questions", result.questions as u64)
                        .u64("llm_calls", llm_calls as u64)
                        .str("config", &result.config.to_string())
                        .finish())
                }
            },
        }
    }

    fn lint(&mut self, session: u64) -> TurnResult {
        let (report, dirty, reused) = match self.linter.take() {
            None => {
                let (linter, report) =
                    IncrementalLinter::new(self.config.clone(), None).map_err(internal)?;
                let total = report.diagnostics.len();
                self.linter = Some(linter);
                (report, total, 0)
            }
            Some(mut linter) => {
                let (report, stats) = linter.relint(self.config.clone(), None).map_err(internal)?;
                self.linter = Some(linter);
                (report, stats.dirty_objects, stats.reused_objects)
            }
        };
        Ok(Frame::ok(true)
            .u64("session", session)
            .u64("findings", report.findings().count() as u64)
            .u64("diagnostics", report.diagnostics.len() as u64)
            .u64("dirty", dirty as u64)
            .u64("reused", reused as u64)
            .finish())
    }
}

/// An oracle that replays stored answers, then captures the next question
/// instead of blocking. The resulting [`ClarifyError::OracleExhausted`]
/// propagates out of the whole `add_stanza_on` call *before* any state is
/// committed, which is what makes per-answer replay safe.
struct ReplayOracle {
    answers: std::collections::VecDeque<Choice>,
    consumed: usize,
    captured: Option<DisambiguationQuestion>,
}

impl UserOracle for ReplayOracle {
    fn choose(&mut self, question: &DisambiguationQuestion) -> Result<Choice, ClarifyError> {
        match self.answers.pop_front() {
            Some(c) => {
                self.consumed += 1;
                Ok(c)
            }
            None => {
                self.captured = Some(question.clone());
                Err(ClarifyError::OracleExhausted)
            }
        }
    }
}

/// A network (multi-router what-if) session.
pub struct NetSession {
    session: NetworkSession<DynBackend>,
    pending: Option<NetPending>,
}

struct NetPending {
    router: String,
    map: String,
    intent: String,
    answers: Vec<Choice>,
}

impl NetSession {
    /// Opens a network session: converges the network and checks the
    /// invariants hold initially.
    pub fn new(
        network: clarify_netsim::Network,
        invariants: Vec<Invariant>,
        stack: &BackendStack,
    ) -> Result<NetSession, ClarifyError> {
        Ok(NetSession {
            session: NetworkSession::new(
                network,
                stack.build(),
                MAX_ATTEMPTS,
                Disambiguator::default(),
                invariants,
            )?,
            pending: None,
        })
    }

    fn ask(&mut self, session: u64, router: &str, map: &str, intent: &str) -> TurnResult {
        if self.pending.is_some() {
            return Err(ProtoError {
                code: "turn-in-flight",
                message: "a question is pending; send 'answer' (or 'close') first".to_string(),
            });
        }
        self.pending = Some(NetPending {
            router: router.to_string(),
            map: map.to_string(),
            intent: intent.to_string(),
            answers: Vec::new(),
        });
        self.progress(session)
    }

    fn answer(&mut self, session: u64, choice: Choice) -> TurnResult {
        match &mut self.pending {
            None => Err(ProtoError {
                code: "no-turn",
                message: "no question is pending on this session".to_string(),
            }),
            Some(p) => {
                p.answers.push(choice);
                self.progress(session)
            }
        }
    }

    /// Replays the whole interaction from the stored answers. Deterministic
    /// backend + deterministic disambiguator ⇒ the replay walks the same
    /// question sequence every time; the underlying session only commits
    /// when the replay runs past the last question.
    fn progress(&mut self, session: u64) -> TurnResult {
        let p = self
            .pending
            .take()
            .expect("progress requires a pending turn");
        let mut oracle = ReplayOracle {
            answers: p.answers.iter().copied().collect(),
            consumed: 0,
            captured: None,
        };
        match self
            .session
            .add_stanza_on(&p.router, &p.map, &p.intent, &mut oracle)
        {
            Err(ClarifyError::OracleExhausted) => {
                let q = oracle
                    .captured
                    .take()
                    .ok_or_else(|| internal("oracle exhausted without a captured question"))?;
                let number = oracle.consumed + 1;
                let frame = question_frame(session, number, q.pivot_seq as u64, &q.to_string());
                self.pending = Some(p);
                Ok(frame)
            }
            Err(e) => Err(intent_error(e)),
            Ok(NetworkUpdateOutcome::Committed {
                questions,
                llm_calls,
            }) => {
                let config = self
                    .session
                    .network()
                    .router(&p.router)
                    .map(|r| r.config.to_string())
                    .unwrap_or_default();
                Ok(Frame::ok(true)
                    .bool("done", true)
                    .u64("session", session)
                    .str("result", "committed")
                    .u64("questions", questions as u64)
                    .u64("llm_calls", llm_calls as u64)
                    .str("config", &config)
                    .finish())
            }
            Ok(NetworkUpdateOutcome::RolledBack {
                violated,
                questions,
                llm_calls,
            }) => Ok(Frame::ok(true)
                .bool("done", true)
                .u64("session", session)
                .str("result", "rolled-back")
                .raw("violated", &string_array(&violated))
                .u64("questions", questions as u64)
                .u64("llm_calls", llm_calls as u64)
                .finish()),
            Ok(NetworkUpdateOutcome::Punted { reason, llm_calls }) => Ok(Frame::ok(true)
                .bool("done", true)
                .u64("session", session)
                .str("result", "punted")
                .str("reason", &reason)
                .u64("llm_calls", llm_calls as u64)
                .finish()),
        }
    }
}
