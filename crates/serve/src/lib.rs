//! `clarify-serve` — clarify-as-a-service: a session daemon for the
//! interactive disambiguation loop.
//!
//! The one-shot CLI pays the full cost of parsing, symbolic space
//! construction, and pipeline setup on every invocation. This crate keeps
//! that state *warm* across a conversation: a daemon holds a table of
//! live sessions, each owning a configuration (or a whole simulated
//! network), a route/packet BDD space reused across turns, and an
//! incremental linter. The protocol is deliberately primitive — newline-
//! delimited JSON over a plain [`std::net::TcpListener`], no HTTP, no
//! external crates — so the workspace stays hermetic and a session can be
//! driven from `nc`.
//!
//! The turn structure mirrors the paper's interaction loop: `ask` runs
//! classify → synthesize → verify once and precomputes the full
//! disambiguation plan; each `answer` replays the plan in memory and
//! returns either the next question or the final placement. See
//! [`proto`] for the wire format and [`server`] for the concurrency and
//! eviction model.

#![warn(missing_docs)]

pub mod clock;
pub mod proto;
pub mod server;
pub mod session;
mod wheel;

pub use clock::{Clock, ManualClock, SystemClock};
pub use proto::{parse_request, Frame, ProtoError, Request};
pub use server::{Server, ServerConfig, Shared};
pub use session::{ConfigSession, NetSession, SessionKind};
pub use wheel::DeadlineWheel;

#[cfg(test)]
mod tests;
