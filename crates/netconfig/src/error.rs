//! Configuration-layer errors.

/// Everything that can go wrong parsing, validating, or editing a config.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A syntax error, with the 1-based line it occurred on.
    Syntax {
        /// Line number in the parsed text.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A route-map referenced a list that is not defined.
    UnknownList {
        /// The kind of list (`"prefix-list"` etc.).
        kind: &'static str,
        /// The dangling name.
        name: String,
    },
    /// A named object was defined (or merged) twice.
    DuplicateName {
        /// The kind of object.
        kind: &'static str,
        /// The clashing name.
        name: String,
    },
    /// An edit referenced an object that does not exist.
    NotFound {
        /// The kind of object.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// An edit was structurally invalid (bad position, empty snippet, …).
    InvalidEdit(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            ConfigError::UnknownList { kind, name } => {
                write!(f, "reference to undefined {kind} '{name}'")
            }
            ConfigError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} '{name}'")
            }
            ConfigError::NotFound { kind, name } => {
                write!(f, "no such {kind} '{name}'")
            }
            ConfigError::InvalidEdit(msg) => write!(f, "invalid edit: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}
