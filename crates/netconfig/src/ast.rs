//! Abstract syntax of the supported IOS subset.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use clarify_automata::Regex;
use clarify_nettypes::{Community, PortRange, Prefix, PrefixRange, Protocol};

use crate::error::ConfigError;

/// Permit or deny — the action of every kind of rule.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Action {
    /// Accept the route / packet.
    Permit,
    /// Reject the route / packet.
    Deny,
}

impl Action {
    /// IOS keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            Action::Permit => "permit",
            Action::Deny => "deny",
        }
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One `ip prefix-list NAME seq N (permit|deny) PFX [ge N] [le N]` line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixListEntry {
    /// Sequence number (IOS assigns 5, 10, 15… when omitted).
    pub seq: u32,
    /// Entry action.
    pub action: Action,
    /// The prefix/length-range this entry matches.
    pub range: PrefixRange,
}

/// An ordered prefix list; first matching entry decides, default deny.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixList {
    /// List name.
    pub name: String,
    /// Entries in sequence order.
    pub entries: Vec<PrefixListEntry>,
}

impl PrefixList {
    /// Whether the list *permits* the given prefix (used by
    /// `match ip address prefix-list`).
    pub fn permits(&self, prefix: &Prefix) -> bool {
        for e in &self.entries {
            if e.range.matches(prefix) {
                return e.action == Action::Permit;
            }
        }
        false
    }
}

/// One `ip as-path access-list NAME (permit|deny) REGEX` line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsPathListEntry {
    /// Entry action.
    pub action: Action,
    /// Cisco-style regex evaluated against the rendered AS path.
    pub regex: Regex,
}

/// An ordered AS-path access list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsPathList {
    /// List name.
    pub name: String,
    /// Entries in file order.
    pub entries: Vec<AsPathListEntry>,
}

impl AsPathList {
    /// First-match evaluation against the rendered path (e.g. `"10 32"`).
    pub fn permits_subject(&self, subject: &str) -> bool {
        for e in &self.entries {
            if e.regex.matches(subject) {
                return e.action == Action::Permit;
            }
        }
        false
    }
}

/// One `ip community-list expanded NAME (permit|deny) REGEX` line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommunityListEntry {
    /// Entry action.
    pub action: Action,
    /// Regex evaluated against each community rendered as `N:M`.
    pub regex: Regex,
}

/// An ordered expanded community list.
///
/// An entry matches a route when its regex matches **any one** of the
/// route's communities (the CommunityVar model Batfish uses); the first
/// matching entry's action decides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommunityList {
    /// List name.
    pub name: String,
    /// Entries in file order.
    pub entries: Vec<CommunityListEntry>,
}

impl CommunityList {
    /// First-match evaluation against a set of communities.
    pub fn permits(&self, communities: &std::collections::BTreeSet<Community>) -> bool {
        for e in &self.entries {
            let dfa = e.regex.dfa();
            if communities.iter().any(|c| dfa.matches(&c.subject())) {
                return e.action == Action::Permit;
            }
        }
        false
    }
}

/// A route-map `match` clause. Multiple names on one line OR together;
/// distinct clauses in a stanza AND together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteMapMatch {
    /// `match as-path NAME...`
    AsPath(Vec<String>),
    /// `match community NAME...`
    Community(Vec<String>),
    /// `match ip address prefix-list NAME...`
    PrefixList(Vec<String>),
    /// `match local-preference N`
    LocalPref(u32),
    /// `match metric N`
    Metric(u32),
    /// `match tag N`
    Tag(u32),
}

/// A route-map `set` clause, applied when a permit stanza matches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteMapSet {
    /// `set metric N`
    Metric(u32),
    /// `set local-preference N`
    LocalPref(u32),
    /// `set weight N`
    Weight(u16),
    /// `set tag N`
    Tag(u32),
    /// `set ip next-hop A.B.C.D`
    NextHop(Ipv4Addr),
    /// `set community C... additive` — adds to the existing set.
    CommunityAdd(Vec<Community>),
    /// `set community C...` — replaces the existing set.
    CommunityReplace(Vec<Community>),
}

/// One numbered stanza of a route-map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMapStanza {
    /// Sequence number; stanzas are evaluated in ascending order.
    pub seq: u32,
    /// Stanza action when it matches.
    pub action: Action,
    /// Conjunction of match clauses (empty = match everything).
    pub matches: Vec<RouteMapMatch>,
    /// Set clauses applied on permit.
    pub sets: Vec<RouteMapSet>,
}

impl RouteMapStanza {
    /// A stanza matching every route.
    pub fn match_all(seq: u32, action: Action) -> RouteMapStanza {
        RouteMapStanza {
            seq,
            action,
            matches: Vec::new(),
            sets: Vec::new(),
        }
    }

    /// Names of ancillary lists referenced by this stanza, by kind.
    pub fn referenced_lists(&self) -> ReferencedLists<'_> {
        let mut refs = ReferencedLists::default();
        for m in &self.matches {
            match m {
                RouteMapMatch::AsPath(ns) => refs.as_path.extend(ns.iter().map(String::as_str)),
                RouteMapMatch::Community(ns) => {
                    refs.community.extend(ns.iter().map(String::as_str))
                }
                RouteMapMatch::PrefixList(ns) => refs.prefix.extend(ns.iter().map(String::as_str)),
                _ => {}
            }
        }
        refs
    }
}

/// Ancillary list names referenced by a stanza.
#[derive(Clone, Debug, Default)]
pub struct ReferencedLists<'a> {
    /// `match as-path` names.
    pub as_path: Vec<&'a str>,
    /// `match community` names.
    pub community: Vec<&'a str>,
    /// `match ip address prefix-list` names.
    pub prefix: Vec<&'a str>,
}

/// A named route-map: an ordered list of stanzas with an implicit trailing
/// deny-everything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMap {
    /// Route-map name.
    pub name: String,
    /// Stanzas in ascending sequence order.
    pub stanzas: Vec<RouteMapStanza>,
}

impl RouteMap {
    /// A route-map with no stanzas (denies everything).
    pub fn empty(name: impl Into<String>) -> RouteMap {
        RouteMap {
            name: name.into(),
            stanzas: Vec::new(),
        }
    }

    /// The stanza with the given sequence number.
    pub fn stanza(&self, seq: u32) -> Option<&RouteMapStanza> {
        self.stanzas.iter().find(|s| s.seq == seq)
    }
}

/// Source or destination address match of an ACL entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddrMatch {
    /// `any`
    Any,
    /// `host A.B.C.D`
    Host(Ipv4Addr),
    /// A prefix (parsed from `addr wildcard` with a contiguous wildcard, or
    /// written in CIDR form).
    Net(Prefix),
}

impl AddrMatch {
    /// Whether a concrete address satisfies the match.
    pub fn matches(&self, addr: Ipv4Addr) -> bool {
        match self {
            AddrMatch::Any => true,
            AddrMatch::Host(h) => *h == addr,
            AddrMatch::Net(p) => p.contains_addr(addr),
        }
    }

    /// The equivalent prefix (hosts become /32, any becomes /0).
    pub fn as_prefix(&self) -> Prefix {
        match self {
            AddrMatch::Any => Prefix::DEFAULT,
            AddrMatch::Host(h) => Prefix::new(*h, 32),
            AddrMatch::Net(p) => *p,
        }
    }
}

/// One entry of an extended ACL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AclEntry {
    /// Entry action.
    pub action: Action,
    /// Protocol match (`ip` = any).
    pub protocol: Protocol,
    /// Source address match.
    pub src: AddrMatch,
    /// Source port range (`ANY` when unspecified).
    pub src_ports: PortRange,
    /// Destination address match.
    pub dst: AddrMatch,
    /// Destination port range (`ANY` when unspecified).
    pub dst_ports: PortRange,
}

impl AclEntry {
    /// Whether a concrete packet matches this entry.
    pub fn matches(&self, pkt: &clarify_nettypes::Packet) -> bool {
        self.protocol.matches(pkt.protocol)
            && self.src.matches(pkt.src_ip)
            && self.dst.matches(pkt.dst_ip)
            && self.src_ports.contains(pkt.src_port)
            && self.dst_ports.contains(pkt.dst_port)
    }

    /// Whether this entry's match set is a superset of `other`'s
    /// (used to filter the "trivial subset" overlaps of §3.2).
    pub fn match_superset_of(&self, other: &AclEntry) -> bool {
        let proto_ok = self.protocol == Protocol::Ip || self.protocol == other.protocol;
        proto_ok
            && self.src.as_prefix().covers(&other.src.as_prefix())
            && self.dst.as_prefix().covers(&other.dst.as_prefix())
            && self.src_ports.lo <= other.src_ports.lo
            && self.src_ports.hi >= other.src_ports.hi
            && self.dst_ports.lo <= other.dst_ports.lo
            && self.dst_ports.hi >= other.dst_ports.hi
    }
}

/// A named extended ACL with the implicit trailing deny.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Acl {
    /// ACL name.
    pub name: String,
    /// Entries in file order.
    pub entries: Vec<AclEntry>,
}

/// A device configuration namespace: every named object on one router.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Config {
    /// Route-maps by name (sorted for deterministic printing).
    pub route_maps: BTreeMap<String, RouteMap>,
    /// Extended ACLs by name.
    pub acls: BTreeMap<String, Acl>,
    /// Prefix lists by name.
    pub prefix_lists: BTreeMap<String, PrefixList>,
    /// AS-path access lists by name.
    pub as_path_lists: BTreeMap<String, AsPathList>,
    /// Expanded community lists by name.
    pub community_lists: BTreeMap<String, CommunityList>,
}

impl Config {
    /// An empty configuration.
    pub fn new() -> Config {
        Config::default()
    }

    /// Looks up a route-map.
    pub fn route_map(&self, name: &str) -> Option<&RouteMap> {
        self.route_maps.get(name)
    }

    /// Looks up an ACL.
    pub fn acl(&self, name: &str) -> Option<&Acl> {
        self.acls.get(name)
    }

    /// Looks up a prefix list, with a typed error for dangling references.
    pub fn prefix_list(&self, name: &str) -> Result<&PrefixList, ConfigError> {
        self.prefix_lists
            .get(name)
            .ok_or_else(|| ConfigError::UnknownList {
                kind: "prefix-list",
                name: name.to_string(),
            })
    }

    /// Looks up an AS-path list.
    pub fn as_path_list(&self, name: &str) -> Result<&AsPathList, ConfigError> {
        self.as_path_lists
            .get(name)
            .ok_or_else(|| ConfigError::UnknownList {
                kind: "as-path access-list",
                name: name.to_string(),
            })
    }

    /// Looks up a community list.
    pub fn community_list(&self, name: &str) -> Result<&CommunityList, ConfigError> {
        self.community_lists
            .get(name)
            .ok_or_else(|| ConfigError::UnknownList {
                kind: "community-list",
                name: name.to_string(),
            })
    }

    /// Checks that every list referenced from route-maps exists.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for rm in self.route_maps.values() {
            for stanza in &rm.stanzas {
                let refs = stanza.referenced_lists();
                for n in refs.prefix {
                    self.prefix_list(n)?;
                }
                for n in refs.as_path {
                    self.as_path_list(n)?;
                }
                for n in refs.community {
                    self.community_list(n)?;
                }
            }
        }
        Ok(())
    }

    /// Merges another configuration's objects into this one. Name clashes
    /// are an error — the insertion engine freshens names *before* merging.
    pub fn merge(&mut self, other: Config) -> Result<(), ConfigError> {
        fn merge_map<V>(
            dst: &mut BTreeMap<String, V>,
            src: BTreeMap<String, V>,
            kind: &'static str,
        ) -> Result<(), ConfigError> {
            for (k, v) in src {
                if dst.contains_key(&k) {
                    return Err(ConfigError::DuplicateName { kind, name: k });
                }
                dst.insert(k, v);
            }
            Ok(())
        }
        merge_map(&mut self.route_maps, other.route_maps, "route-map")?;
        merge_map(&mut self.acls, other.acls, "access-list")?;
        merge_map(&mut self.prefix_lists, other.prefix_lists, "prefix-list")?;
        merge_map(
            &mut self.as_path_lists,
            other.as_path_lists,
            "as-path access-list",
        )?;
        merge_map(
            &mut self.community_lists,
            other.community_lists,
            "community-list",
        )?;
        Ok(())
    }
}
