//! Pretty-printing back to IOS syntax. Output round-trips through
//! [`crate::Config::parse`]; tests enforce this.

use std::fmt;

use crate::ast::{
    Acl, AclEntry, AddrMatch, AsPathList, CommunityList, Config, PrefixList, RouteMap,
    RouteMapMatch, RouteMapSet, RouteMapStanza,
};

impl fmt::Display for PrefixList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(
                f,
                "ip prefix-list {} seq {} {} {}",
                self.name, e.seq, e.action, e.range
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for AsPathList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(
                f,
                "ip as-path access-list {} {} {}",
                self.name,
                e.action,
                e.regex.pattern()
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for CommunityList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(
                f,
                "ip community-list expanded {} {} {}",
                self.name,
                e.action,
                e.regex.pattern()
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for RouteMapMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteMapMatch::AsPath(ns) => write!(f, "match as-path {}", ns.join(" ")),
            RouteMapMatch::Community(ns) => write!(f, "match community {}", ns.join(" ")),
            RouteMapMatch::PrefixList(ns) => {
                write!(f, "match ip address prefix-list {}", ns.join(" "))
            }
            RouteMapMatch::LocalPref(v) => write!(f, "match local-preference {v}"),
            RouteMapMatch::Metric(v) => write!(f, "match metric {v}"),
            RouteMapMatch::Tag(v) => write!(f, "match tag {v}"),
        }
    }
}

impl fmt::Display for RouteMapSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteMapSet::Metric(v) => write!(f, "set metric {v}"),
            RouteMapSet::LocalPref(v) => write!(f, "set local-preference {v}"),
            RouteMapSet::Weight(v) => write!(f, "set weight {v}"),
            RouteMapSet::Tag(v) => write!(f, "set tag {v}"),
            RouteMapSet::NextHop(ip) => write!(f, "set ip next-hop {ip}"),
            RouteMapSet::CommunityAdd(cs) => {
                write!(
                    f,
                    "set community {} additive",
                    cs.iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            }
            RouteMapSet::CommunityReplace(cs) => {
                write!(
                    f,
                    "set community {}",
                    cs.iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            }
        }
    }
}

impl RouteMapStanza {
    fn fmt_with_name(&self, name: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "route-map {} {} {}", name, self.action, self.seq)?;
        for m in &self.matches {
            writeln!(f, " {m}")?;
        }
        for s in &self.sets {
            writeln!(f, " {s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for RouteMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stanzas {
            s.fmt_with_name(&self.name, f)?;
        }
        Ok(())
    }
}

impl fmt::Display for AclEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, " {} {}", self.action, self.protocol)?;
        write_addr(f, &self.src)?;
        if !self.src_ports.is_any() {
            write!(f, " {}", self.src_ports)?;
        }
        write_addr(f, &self.dst)?;
        if !self.dst_ports.is_any() {
            write!(f, " {}", self.dst_ports)?;
        }
        Ok(())
    }
}

fn write_addr(f: &mut fmt::Formatter<'_>, a: &AddrMatch) -> fmt::Result {
    match a {
        AddrMatch::Any => write!(f, " any"),
        AddrMatch::Host(ip) => write!(f, " host {ip}"),
        AddrMatch::Net(p) => write!(f, " {p}"),
    }
}

impl fmt::Display for Acl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ip access-list extended {}", self.name)?;
        for e in &self.entries {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Config {
    /// Canonical rendering: ancillary lists first (the order route-maps
    /// need them), then ACLs, then route-maps; each group sorted by name.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for pl in self.prefix_lists.values() {
            write!(f, "{pl}")?;
        }
        for al in self.as_path_lists.values() {
            write!(f, "{al}")?;
        }
        for cl in self.community_lists.values() {
            write!(f, "{cl}")?;
        }
        for acl in self.acls.values() {
            write!(f, "{acl}")?;
        }
        for rm in self.route_maps.values() {
            write!(f, "{rm}")?;
        }
        Ok(())
    }
}
