//! Line-oriented parser for the supported IOS subset.

use std::net::Ipv4Addr;

use clarify_automata::Regex;
use clarify_nettypes::{Community, PortRange, Prefix, PrefixRange, Protocol};

use crate::ast::{
    Acl, AclEntry, Action, AddrMatch, AsPathList, AsPathListEntry, CommunityList,
    CommunityListEntry, Config, PrefixList, PrefixListEntry, RouteMap, RouteMapMatch, RouteMapSet,
    RouteMapStanza,
};
use crate::error::ConfigError;
use crate::span::{ObjectKind, RuleId, SourceMap};

impl Config {
    /// Parses a configuration from IOS-style text.
    ///
    /// Supported statements: `ip prefix-list`, `ip as-path access-list`,
    /// `ip community-list expanded`, `route-map` (with `match`/`set`
    /// continuation lines), and `ip access-list extended` (with
    /// `permit`/`deny` continuation lines). Comment lines starting with `!`
    /// and blank lines are ignored. Indentation is not significant; a
    /// continuation block ends at the next top-level statement.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut spans = SourceMap::new();
        parse_impl(text, &mut spans)
    }

    /// Like [`Config::parse`], but also returns a [`SourceMap`] recording
    /// the one-based source line of every rule, for diagnostics that want
    /// to point back into the original text.
    pub fn parse_with_spans(text: &str) -> Result<(Config, SourceMap), ConfigError> {
        let mut spans = SourceMap::new();
        let cfg = parse_impl(text, &mut spans)?;
        Ok((cfg, spans))
    }
}

fn parse_impl(text: &str, spans: &mut SourceMap) -> Result<Config, ConfigError> {
    let mut cfg = Config::new();
    // (route-map name, stanza, header line) currently being filled.
    let mut open_stanza: Option<(String, RouteMapStanza, u32)> = None;
    // ACL currently being filled, if any.
    let mut open_acl: Option<String> = None;

    let close_stanza = |cfg: &mut Config,
                        open: &mut Option<(String, RouteMapStanza, u32)>,
                        spans: &mut SourceMap|
     -> Result<(), ConfigError> {
        if let Some((name, stanza, header_line)) = open.take() {
            let rm = cfg
                .route_maps
                .entry(name.clone())
                .or_insert_with(|| RouteMap::empty(name.clone()));
            if rm.stanzas.iter().any(|s| s.seq == stanza.seq) {
                return Err(ConfigError::DuplicateName {
                    kind: "route-map stanza",
                    name: format!("{} {}", rm.name, stanza.seq),
                });
            }
            spans.record(RuleId::object(ObjectKind::RouteMap, &name), header_line);
            spans.record(RuleId::route_map_stanza(&name, stanza.seq), header_line);
            rm.stanzas.push(stanza);
            rm.stanzas.sort_by_key(|s| s.seq);
        }
        Ok(())
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let words: Vec<&str> = raw.split_whitespace().collect();
        if words.is_empty() || words[0].starts_with('!') {
            continue;
        }
        let err = |message: String| ConfigError::Syntax { line, message };

        match words.as_slice() {
            // ---- route-map header --------------------------------
            // The sequence number may be omitted; IOS then assigns
            // 10, 20, 30, … after the map's current highest.
            ["route-map", name, action] | ["route-map", name, action, _] => {
                close_stanza(&mut cfg, &mut open_stanza, spans)?;
                open_acl = None;
                let action = parse_action(action).map_err(&err)?;
                let seq: u32 = match words.get(3) {
                    Some(seq) => seq
                        .parse()
                        .map_err(|_| err(format!("bad sequence number '{seq}'")))?,
                    None => cfg
                        .route_maps
                        .get(*name)
                        .and_then(|rm| rm.stanzas.last().map(|s| s.seq + 10))
                        .unwrap_or(10),
                };
                open_stanza = Some((
                    name.to_string(),
                    RouteMapStanza {
                        seq,
                        action,
                        matches: Vec::new(),
                        sets: Vec::new(),
                    },
                    line as u32,
                ));
            }
            // ---- match / set continuation lines ------------------
            ["match", rest @ ..] => {
                let (_, stanza, _) = open_stanza
                    .as_mut()
                    .ok_or_else(|| err("'match' outside a route-map stanza".into()))?;
                stanza.matches.push(parse_match(rest).map_err(&err)?);
            }
            ["set", rest @ ..] => {
                let (_, stanza, _) = open_stanza
                    .as_mut()
                    .ok_or_else(|| err("'set' outside a route-map stanza".into()))?;
                stanza.sets.push(parse_set(rest).map_err(&err)?);
            }
            // ---- prefix list -------------------------------------
            ["ip", "prefix-list", name, rest @ ..] => {
                close_stanza(&mut cfg, &mut open_stanza, spans)?;
                open_acl = None;
                let entry = parse_prefix_list_entry(rest, &cfg, name).map_err(&err)?;
                let pl = cfg
                    .prefix_lists
                    .entry(name.to_string())
                    .or_insert_with(|| PrefixList {
                        name: name.to_string(),
                        entries: Vec::new(),
                    });
                if pl.entries.iter().any(|e| e.seq == entry.seq) {
                    return Err(ConfigError::DuplicateName {
                        kind: "prefix-list entry",
                        name: format!("{name} seq {}", entry.seq),
                    });
                }
                spans.record(RuleId::object(ObjectKind::PrefixList, *name), line as u32);
                spans.record(RuleId::prefix_entry(*name, entry.seq), line as u32);
                pl.entries.push(entry);
                pl.entries.sort_by_key(|e| e.seq);
            }
            // ---- as-path list ------------------------------------
            ["ip", "as-path", "access-list", name, action, regex @ ..] => {
                close_stanza(&mut cfg, &mut open_stanza, spans)?;
                open_acl = None;
                let action = parse_action(action).map_err(&err)?;
                let pattern = regex.join(" ");
                if pattern.is_empty() {
                    return Err(err("as-path access-list missing regex".into()));
                }
                let regex =
                    Regex::parse(&pattern).map_err(|e| err(format!("bad as-path regex: {e}")))?;
                let entries = &mut cfg
                    .as_path_lists
                    .entry(name.to_string())
                    .or_insert_with(|| AsPathList {
                        name: name.to_string(),
                        entries: Vec::new(),
                    })
                    .entries;
                spans.record(RuleId::object(ObjectKind::AsPathList, *name), line as u32);
                spans.record(RuleId::as_path_entry(*name, entries.len()), line as u32);
                entries.push(AsPathListEntry { action, regex });
            }
            // ---- standard community list --------------------------
            // Desugared to the equivalent expanded entry `_N:M_`.
            // Conjunctive entries (several communities on one line)
            // are not supported; write one entry per community or use
            // several match clauses.
            ["ip", "community-list", "standard", name, action, comms @ ..] => {
                close_stanza(&mut cfg, &mut open_stanza, spans)?;
                open_acl = None;
                let action = parse_action(action).map_err(&err)?;
                if comms.len() != 1 {
                    return Err(err(
                        "standard community-list entries must name exactly one community \
                         (conjunctive entries are unsupported; use separate match clauses)"
                            .into(),
                    ));
                }
                let community: Community =
                    comms[0]
                        .parse()
                        .map_err(|e: clarify_nettypes::ParseError| {
                            err(format!("bad community: {}", e.message))
                        })?;
                let regex =
                    Regex::parse(&format!("_{community}_")).expect("community pattern is valid");
                let entries = &mut cfg
                    .community_lists
                    .entry(name.to_string())
                    .or_insert_with(|| CommunityList {
                        name: name.to_string(),
                        entries: Vec::new(),
                    })
                    .entries;
                spans.record(
                    RuleId::object(ObjectKind::CommunityList, *name),
                    line as u32,
                );
                spans.record(RuleId::community_entry(*name, entries.len()), line as u32);
                entries.push(CommunityListEntry { action, regex });
            }
            // ---- community list ----------------------------------
            ["ip", "community-list", "expanded", name, action, regex @ ..] => {
                close_stanza(&mut cfg, &mut open_stanza, spans)?;
                open_acl = None;
                let action = parse_action(action).map_err(&err)?;
                let pattern = regex.join(" ");
                if pattern.is_empty() {
                    return Err(err("community-list missing regex".into()));
                }
                let regex =
                    Regex::parse(&pattern).map_err(|e| err(format!("bad community regex: {e}")))?;
                let entries = &mut cfg
                    .community_lists
                    .entry(name.to_string())
                    .or_insert_with(|| CommunityList {
                        name: name.to_string(),
                        entries: Vec::new(),
                    })
                    .entries;
                spans.record(
                    RuleId::object(ObjectKind::CommunityList, *name),
                    line as u32,
                );
                spans.record(RuleId::community_entry(*name, entries.len()), line as u32);
                entries.push(CommunityListEntry { action, regex });
            }
            // ---- extended ACL header -----------------------------
            ["ip", "access-list", "extended", name] => {
                close_stanza(&mut cfg, &mut open_stanza, spans)?;
                cfg.acls.entry(name.to_string()).or_insert_with(|| Acl {
                    name: name.to_string(),
                    entries: Vec::new(),
                });
                spans.record(RuleId::object(ObjectKind::Acl, *name), line as u32);
                open_acl = Some(name.to_string());
            }
            // ---- ACL entries (inside an open ACL) ----------------
            [action @ ("permit" | "deny"), rest @ ..] => {
                let acl_name = open_acl
                    .clone()
                    .ok_or_else(|| err("permit/deny outside an access-list".into()))?;
                let action = parse_action(action).map_err(&err)?;
                let entry = parse_acl_entry(action, rest).map_err(&err)?;
                let entries = &mut cfg
                    .acls
                    .get_mut(&acl_name)
                    .expect("open ACL exists")
                    .entries;
                spans.record(RuleId::acl_entry(&acl_name, entries.len()), line as u32);
                entries.push(entry);
            }
            _ => {
                return Err(err(format!("unrecognised statement '{}'", words.join(" "))));
            }
        }
    }
    close_stanza(&mut cfg, &mut open_stanza, spans)?;
    Ok(cfg)
}

fn parse_action(word: &str) -> Result<Action, String> {
    match word {
        "permit" => Ok(Action::Permit),
        "deny" => Ok(Action::Deny),
        other => Err(format!("expected permit/deny, found '{other}'")),
    }
}

fn parse_prefix_list_entry(
    rest: &[&str],
    cfg: &Config,
    name: &str,
) -> Result<PrefixListEntry, String> {
    let mut rest = rest;
    // Optional `seq N`; IOS auto-assigns in steps of 5 when omitted.
    let seq = if rest.first() == Some(&"seq") {
        let n: u32 = rest
            .get(1)
            .ok_or("seq missing number")?
            .parse()
            .map_err(|_| "bad seq number".to_string())?;
        rest = &rest[2..];
        n
    } else {
        cfg.prefix_lists
            .get(name)
            .and_then(|pl| pl.entries.last().map(|e| e.seq + 5))
            .unwrap_or(5)
    };
    let action = parse_action(rest.first().ok_or("missing action")?)?;
    let range_text = rest[1..].join(" ");
    let range: PrefixRange = range_text
        .parse()
        .map_err(|e: clarify_nettypes::ParseError| e.message)?;
    Ok(PrefixListEntry { seq, action, range })
}

fn parse_match(rest: &[&str]) -> Result<RouteMapMatch, String> {
    match rest {
        ["as-path", names @ ..] if !names.is_empty() => Ok(RouteMapMatch::AsPath(
            names.iter().map(|s| s.to_string()).collect(),
        )),
        ["community", names @ ..] if !names.is_empty() => Ok(RouteMapMatch::Community(
            names.iter().map(|s| s.to_string()).collect(),
        )),
        ["ip", "address", "prefix-list", names @ ..] if !names.is_empty() => Ok(
            RouteMapMatch::PrefixList(names.iter().map(|s| s.to_string()).collect()),
        ),
        ["local-preference", v] => Ok(RouteMapMatch::LocalPref(
            v.parse().map_err(|_| "bad local-preference value")?,
        )),
        ["metric", v] => Ok(RouteMapMatch::Metric(
            v.parse().map_err(|_| "bad metric value")?,
        )),
        ["tag", v] => Ok(RouteMapMatch::Tag(v.parse().map_err(|_| "bad tag value")?)),
        other => Err(format!("unsupported match clause '{}'", other.join(" "))),
    }
}

fn parse_set(rest: &[&str]) -> Result<RouteMapSet, String> {
    match rest {
        ["metric", v] => Ok(RouteMapSet::Metric(
            v.parse().map_err(|_| "bad metric value")?,
        )),
        ["local-preference", v] => Ok(RouteMapSet::LocalPref(
            v.parse().map_err(|_| "bad local-preference value")?,
        )),
        ["weight", v] => Ok(RouteMapSet::Weight(
            v.parse().map_err(|_| "bad weight value")?,
        )),
        ["tag", v] => Ok(RouteMapSet::Tag(v.parse().map_err(|_| "bad tag value")?)),
        ["ip", "next-hop", ip] => Ok(RouteMapSet::NextHop(
            ip.parse::<Ipv4Addr>().map_err(|_| "bad next-hop address")?,
        )),
        ["community", rest @ ..] if !rest.is_empty() => {
            let (comms, additive) = match rest.split_last() {
                Some((&"additive", init)) => (init, true),
                _ => (rest, false),
            };
            if comms.is_empty() {
                return Err("set community needs at least one community".into());
            }
            let parsed: Result<Vec<Community>, _> =
                comms.iter().map(|c| c.parse::<Community>()).collect();
            let parsed = parsed.map_err(|e| e.message)?;
            Ok(if additive {
                RouteMapSet::CommunityAdd(parsed)
            } else {
                RouteMapSet::CommunityReplace(parsed)
            })
        }
        other => Err(format!("unsupported set clause '{}'", other.join(" "))),
    }
}

/// Parses `PROTO SRC [ports] DST [ports]`.
fn parse_acl_entry(action: Action, rest: &[&str]) -> Result<AclEntry, String> {
    let mut it = rest.iter().copied().peekable();
    let protocol: Protocol = it
        .next()
        .ok_or("missing protocol")?
        .parse()
        .map_err(|e: clarify_nettypes::ParseError| e.message)?;
    let src = parse_addr(&mut it)?;
    let src_ports = parse_ports(&mut it, protocol)?;
    let dst = parse_addr(&mut it)?;
    let dst_ports = parse_ports(&mut it, protocol)?;
    if let Some(extra) = it.next() {
        return Err(format!("trailing token '{extra}' in ACL entry"));
    }
    Ok(AclEntry {
        action,
        protocol,
        src,
        src_ports,
        dst,
        dst_ports,
    })
}

fn parse_addr<'a>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
) -> Result<AddrMatch, String> {
    match it.next().ok_or("missing address")? {
        "any" => Ok(AddrMatch::Any),
        "host" => {
            let ip: Ipv4Addr = it
                .next()
                .ok_or("host missing address")?
                .parse()
                .map_err(|_| "bad host address".to_string())?;
            Ok(AddrMatch::Host(ip))
        }
        tok if tok.contains('/') => {
            let p: Prefix = tok
                .parse()
                .map_err(|e: clarify_nettypes::ParseError| e.message)?;
            Ok(AddrMatch::Net(p))
        }
        tok => {
            // `addr wildcard` form; the wildcard must be contiguous.
            let addr: Ipv4Addr = tok.parse().map_err(|_| format!("bad address '{tok}'"))?;
            let wc: Ipv4Addr = it
                .next()
                .ok_or("address missing wildcard mask")?
                .parse()
                .map_err(|_| "bad wildcard mask".to_string())?;
            let wc = u32::from(wc);
            let mask = !wc;
            // A contiguous wildcard's complement is a left-aligned mask.
            let len = mask.leading_ones() as u8;
            if mask != Prefix::new(Ipv4Addr::new(255, 255, 255, 255), len).addr_u32() {
                return Err(format!("non-contiguous wildcard mask {wc:#010x}"));
            }
            Ok(AddrMatch::Net(Prefix::new(addr, len)))
        }
    }
}

fn parse_ports<'a>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    protocol: Protocol,
) -> Result<PortRange, String> {
    let allowed = matches!(protocol, Protocol::Tcp | Protocol::Udp);
    match it.peek().copied() {
        Some("eq") => {
            it.next();
            if !allowed {
                return Err("port match on non-TCP/UDP protocol".into());
            }
            let p: u16 = it
                .next()
                .ok_or("eq missing port")?
                .parse()
                .map_err(|_| "bad port".to_string())?;
            Ok(PortRange::eq(p))
        }
        Some("range") => {
            it.next();
            if !allowed {
                return Err("port match on non-TCP/UDP protocol".into());
            }
            let lo: u16 = it
                .next()
                .ok_or("range missing low port")?
                .parse()
                .map_err(|_| "bad port".to_string())?;
            let hi: u16 = it
                .next()
                .ok_or("range missing high port")?
                .parse()
                .map_err(|_| "bad port".to_string())?;
            if lo > hi {
                return Err(format!("inverted port range {lo} {hi}"));
            }
            Ok(PortRange::new(lo, hi))
        }
        Some("gt") => {
            it.next();
            if !allowed {
                return Err("port match on non-TCP/UDP protocol".into());
            }
            let p: u16 = it
                .next()
                .ok_or("gt missing port")?
                .parse()
                .map_err(|_| "bad port".to_string())?;
            if p == u16::MAX {
                return Err("gt 65535 matches nothing".into());
            }
            Ok(PortRange::new(p + 1, u16::MAX))
        }
        Some("lt") => {
            it.next();
            if !allowed {
                return Err("port match on non-TCP/UDP protocol".into());
            }
            let p: u16 = it
                .next()
                .ok_or("lt missing port")?
                .parse()
                .map_err(|_| "bad port".to_string())?;
            if p == 0 {
                return Err("lt 0 matches nothing".into());
            }
            Ok(PortRange::new(0, p - 1))
        }
        _ => Ok(PortRange::ANY),
    }
}
