//! A Cisco IOS-subset configuration model: route-maps, extended ACLs, and
//! the ancillary lists they reference.
//!
//! This crate owns the *concrete* side of Clarify: the abstract syntax of
//! policies, a line-oriented parser for the IOS syntax used throughout the
//! paper, a pretty-printer whose output round-trips through the parser, a
//! reference evaluator (first-match semantics with the implicit trailing
//! deny), and the insertion engine that splices an LLM-synthesized snippet
//! into an existing policy — renaming ancillary data structures to fresh
//! names and renumbering sequence numbers, exactly as the tool in the paper
//! does ("data structure names are automatically updated by the tool during
//! insertion").
//!
//! ```
//! use clarify_netconfig::Config;
//!
//! let cfg = Config::parse(
//!     "ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24\n\
//!      route-map ISP_OUT deny 10\n \
//!      match ip address prefix-list D1\n\
//!      route-map ISP_OUT permit 20\n \
//!      match local-preference 300\n",
//! )
//! .unwrap();
//! let rm = cfg.route_map("ISP_OUT").unwrap();
//! assert_eq!(rm.stanzas.len(), 2);
//! ```

#![warn(missing_docs)]

mod ast;
mod error;
mod eval;
mod hash;
mod insert;
mod parser;
mod print;
mod span;

pub use ast::{
    Acl, AclEntry, Action, AddrMatch, AsPathList, AsPathListEntry, CommunityList,
    CommunityListEntry, Config, PrefixList, PrefixListEntry, RouteMap, RouteMapMatch, RouteMapSet,
    RouteMapStanza,
};
pub use error::ConfigError;
pub use eval::{AclVerdict, RouteMapVerdict};
pub use hash::{fnv1a64, fnv1a64_combine, ConfigDiff, ObjectHashes};
pub use insert::{
    insert_acl_entry, insert_prefix_list_entry, insert_route_map_stanza, InsertReport,
};
pub use span::{ObjectKind, RuleId, RuleKey, SourceMap};

#[cfg(test)]
mod tests;
