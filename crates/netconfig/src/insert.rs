//! Splicing an LLM-synthesized snippet into an existing configuration.
//!
//! The disambiguator decides *where* a new stanza goes; this module performs
//! the mechanical edit: ancillary data-structure names from the snippet are
//! renamed to fresh names in the target namespace (the paper's Figure 2
//! shows `COM_LIST`/`PREFIX_100` becoming `D2`/`D3`), stanza sequence
//! numbers are renumbered in steps of 10, and the result is validated.

use std::collections::BTreeMap;

use crate::ast::{AclEntry, Config, RouteMapMatch, RouteMapStanza};
use crate::error::ConfigError;

/// What an insertion did: useful for showing the user the final diff.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsertReport {
    /// Ancillary list renames applied, `(snippet name, fresh name)`.
    pub renames: Vec<(String, String)>,
    /// Zero-based position of the new stanza within the final route-map.
    pub position: usize,
    /// The sequence number the new stanza received after renumbering.
    pub new_seq: u32,
}

/// Generates fresh `D0`, `D1`, … names that collide with nothing in `used`.
struct FreshNames<'a> {
    used: Vec<&'a str>,
    next: usize,
}

impl<'a> FreshNames<'a> {
    fn new(used: Vec<&'a str>) -> Self {
        FreshNames { used, next: 0 }
    }

    fn fresh(&mut self) -> String {
        loop {
            let candidate = format!("D{}", self.next);
            self.next += 1;
            if !self.used.iter().any(|&u| u == candidate) {
                return candidate;
            }
        }
    }
}

/// Inserts the single stanza of `snippet`'s route-map `snippet_map` into
/// `base`'s route-map `map_name` at zero-based `position`.
///
/// The snippet must contain exactly one route-map with exactly one stanza;
/// its ancillary lists are carried over under fresh names. Returns the new
/// configuration (the input is untouched) plus a report of the edit.
pub fn insert_route_map_stanza(
    base: &Config,
    map_name: &str,
    snippet: &Config,
    snippet_map: &str,
    position: usize,
) -> Result<(Config, InsertReport), ConfigError> {
    let target = base.route_map(map_name).ok_or(ConfigError::NotFound {
        kind: "route-map",
        name: map_name.to_string(),
    })?;
    let source = snippet
        .route_map(snippet_map)
        .ok_or(ConfigError::NotFound {
            kind: "route-map",
            name: snippet_map.to_string(),
        })?;
    if source.stanzas.len() != 1 {
        return Err(ConfigError::InvalidEdit(format!(
            "snippet route-map '{snippet_map}' must contain exactly one stanza, found {}",
            source.stanzas.len()
        )));
    }
    if position > target.stanzas.len() {
        return Err(ConfigError::InvalidEdit(format!(
            "position {position} out of range for a route-map with {} stanzas",
            target.stanzas.len()
        )));
    }
    snippet.validate()?;

    let mut stanza = source.stanzas[0].clone();

    // Fresh names for every ancillary list the snippet defines.
    let used: Vec<&str> = base
        .prefix_lists
        .keys()
        .chain(base.as_path_lists.keys())
        .chain(base.community_lists.keys())
        .map(String::as_str)
        .collect();
    let mut fresh = FreshNames::new(used);
    let mut out = base.clone();

    // Assign fresh names in sorted order of the snippet's own names so the
    // numbering is stable regardless of list kind (COM_LIST gets D2 before
    // PREFIX_100 gets D3, as in the paper's Figure 2).
    let mut snippet_names: Vec<&String> = snippet
        .prefix_lists
        .keys()
        .chain(snippet.as_path_lists.keys())
        .chain(snippet.community_lists.keys())
        .collect();
    snippet_names.sort();
    let mut renames: BTreeMap<String, String> = BTreeMap::new();
    for name in snippet_names {
        renames.insert(name.clone(), fresh.fresh());
    }

    for (name, pl) in &snippet.prefix_lists {
        let new = renames[name].clone();
        let mut pl = pl.clone();
        pl.name = new.clone();
        out.prefix_lists.insert(new, pl);
    }
    for (name, al) in &snippet.as_path_lists {
        let new = renames[name].clone();
        let mut al = al.clone();
        al.name = new.clone();
        out.as_path_lists.insert(new, al);
    }
    for (name, cl) in &snippet.community_lists {
        let new = renames[name].clone();
        let mut cl = cl.clone();
        cl.name = new.clone();
        out.community_lists.insert(new, cl);
    }

    rename_stanza_refs(&mut stanza, &renames)?;

    let rm = out
        .route_maps
        .get_mut(map_name)
        .expect("target route-map exists in clone");
    rm.stanzas.insert(position, stanza);
    // Renumber 10, 20, 30, … like the paper's Figure 2.
    for (i, s) in rm.stanzas.iter_mut().enumerate() {
        s.seq = (i as u32 + 1) * 10;
    }
    let new_seq = rm.stanzas[position].seq;

    out.validate()?;
    Ok((
        out,
        InsertReport {
            renames: renames.into_iter().collect(),
            position,
            new_seq,
        },
    ))
}

fn rename_stanza_refs(
    stanza: &mut RouteMapStanza,
    renames: &BTreeMap<String, String>,
) -> Result<(), ConfigError> {
    let rename = |names: &mut Vec<String>| -> Result<(), ConfigError> {
        for n in names {
            match renames.get(n) {
                Some(new) => *n = new.clone(),
                None => {
                    // A reference the snippet does not define: the snippet
                    // was supposed to be self-contained.
                    return Err(ConfigError::UnknownList {
                        kind: "snippet list",
                        name: n.clone(),
                    });
                }
            }
        }
        Ok(())
    };
    for m in &mut stanza.matches {
        match m {
            RouteMapMatch::AsPath(ns)
            | RouteMapMatch::Community(ns)
            | RouteMapMatch::PrefixList(ns) => rename(ns)?,
            _ => {}
        }
    }
    Ok(())
}

/// Inserts an ACL entry at zero-based `position` of the named ACL.
///
/// ACL entries reference no ancillary structures, so this is a plain splice.
pub fn insert_acl_entry(
    base: &Config,
    acl_name: &str,
    entry: AclEntry,
    position: usize,
) -> Result<Config, ConfigError> {
    let acl = base.acl(acl_name).ok_or(ConfigError::NotFound {
        kind: "access-list",
        name: acl_name.to_string(),
    })?;
    if position > acl.entries.len() {
        return Err(ConfigError::InvalidEdit(format!(
            "position {position} out of range for an ACL with {} entries",
            acl.entries.len()
        )));
    }
    let mut out = base.clone();
    out.acls
        .get_mut(acl_name)
        .expect("target ACL exists in clone")
        .entries
        .insert(position, entry);
    Ok(out)
}

/// Inserts a prefix-list entry at zero-based `position` of the named list,
/// renumbering sequence numbers in steps of 5 (the IOS default stride).
pub fn insert_prefix_list_entry(
    base: &Config,
    list_name: &str,
    entry: crate::ast::PrefixListEntry,
    position: usize,
) -> Result<Config, ConfigError> {
    let list = base
        .prefix_lists
        .get(list_name)
        .ok_or(ConfigError::NotFound {
            kind: "prefix-list",
            name: list_name.to_string(),
        })?;
    if position > list.entries.len() {
        return Err(ConfigError::InvalidEdit(format!(
            "position {position} out of range for a prefix-list with {} entries",
            list.entries.len()
        )));
    }
    let mut out = base.clone();
    let list = out
        .prefix_lists
        .get_mut(list_name)
        .expect("target list exists in clone");
    list.entries.insert(position, entry);
    for (i, e) in list.entries.iter_mut().enumerate() {
        e.seq = (i as u32 + 1) * 5;
    }
    Ok(out)
}
