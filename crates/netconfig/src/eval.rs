//! Reference (concrete) evaluation of route-maps and ACLs.
//!
//! This evaluator defines the ground-truth semantics the symbolic layer is
//! tested against: first matching rule wins, with an implicit trailing deny.

use clarify_nettypes::{BgpRoute, Packet};

use crate::ast::{Action, Config, RouteMapMatch, RouteMapSet, RouteMapStanza};
use crate::error::ConfigError;

/// Result of pushing a route through a route-map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteMapVerdict {
    /// A permit stanza matched; contains the transformed route and the
    /// sequence number of the matching stanza.
    Permit {
        /// The route after set clauses were applied.
        route: BgpRoute,
        /// Sequence number of the deciding stanza.
        seq: u32,
    },
    /// A deny stanza matched.
    DenyBy {
        /// Sequence number of the deciding stanza.
        seq: u32,
    },
    /// No stanza matched: the implicit trailing deny applies.
    ImplicitDeny,
}

impl RouteMapVerdict {
    /// Whether the route was permitted.
    pub fn is_permit(&self) -> bool {
        matches!(self, RouteMapVerdict::Permit { .. })
    }

    /// The deciding stanza's sequence number, if an explicit stanza matched.
    pub fn seq(&self) -> Option<u32> {
        match self {
            RouteMapVerdict::Permit { seq, .. } | RouteMapVerdict::DenyBy { seq } => Some(*seq),
            RouteMapVerdict::ImplicitDeny => None,
        }
    }

    /// The outgoing route for permits.
    pub fn route(&self) -> Option<&BgpRoute> {
        match self {
            RouteMapVerdict::Permit { route, .. } => Some(route),
            _ => None,
        }
    }
}

/// Result of pushing a packet through an ACL.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AclVerdict {
    /// The decision.
    pub action: Action,
    /// Index of the deciding entry, or `None` for the implicit deny.
    pub index: Option<usize>,
}

impl Config {
    /// Whether `stanza` (in this config's namespace) matches `route`.
    pub fn stanza_matches(
        &self,
        stanza: &RouteMapStanza,
        route: &BgpRoute,
    ) -> Result<bool, ConfigError> {
        for m in &stanza.matches {
            let ok = match m {
                RouteMapMatch::AsPath(names) => {
                    let subject = route.as_path.subject();
                    let mut any = false;
                    for n in names {
                        if self.as_path_list(n)?.permits_subject(&subject) {
                            any = true;
                            break;
                        }
                    }
                    any
                }
                RouteMapMatch::Community(names) => {
                    let mut any = false;
                    for n in names {
                        if self.community_list(n)?.permits(&route.communities) {
                            any = true;
                            break;
                        }
                    }
                    any
                }
                RouteMapMatch::PrefixList(names) => {
                    let mut any = false;
                    for n in names {
                        if self.prefix_list(n)?.permits(&route.network) {
                            any = true;
                            break;
                        }
                    }
                    any
                }
                RouteMapMatch::LocalPref(v) => route.local_pref == *v,
                RouteMapMatch::Metric(v) => route.metric == *v,
                RouteMapMatch::Tag(v) => route.tag == *v,
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Applies a stanza's set clauses to a route.
    pub fn apply_sets(stanza: &RouteMapStanza, route: &BgpRoute) -> BgpRoute {
        let mut out = route.clone();
        for s in &stanza.sets {
            match s {
                RouteMapSet::Metric(v) => out.metric = *v,
                RouteMapSet::LocalPref(v) => out.local_pref = *v,
                RouteMapSet::Weight(v) => out.weight = *v,
                RouteMapSet::Tag(v) => out.tag = *v,
                RouteMapSet::NextHop(ip) => out.next_hop = *ip,
                RouteMapSet::CommunityAdd(cs) => {
                    out.communities.extend(cs.iter().copied());
                }
                RouteMapSet::CommunityReplace(cs) => {
                    out.communities = cs.iter().copied().collect();
                }
            }
        }
        out
    }

    /// Evaluates the named route-map on a route.
    pub fn eval_route_map(
        &self,
        name: &str,
        route: &BgpRoute,
    ) -> Result<RouteMapVerdict, ConfigError> {
        let rm = self.route_map(name).ok_or_else(|| ConfigError::NotFound {
            kind: "route-map",
            name: name.to_string(),
        })?;
        for stanza in &rm.stanzas {
            if self.stanza_matches(stanza, route)? {
                return Ok(match stanza.action {
                    Action::Permit => RouteMapVerdict::Permit {
                        route: Config::apply_sets(stanza, route),
                        seq: stanza.seq,
                    },
                    Action::Deny => RouteMapVerdict::DenyBy { seq: stanza.seq },
                });
            }
        }
        Ok(RouteMapVerdict::ImplicitDeny)
    }

    /// Evaluates the named ACL on a packet.
    pub fn eval_acl(&self, name: &str, pkt: &Packet) -> Result<AclVerdict, ConfigError> {
        let acl = self.acl(name).ok_or_else(|| ConfigError::NotFound {
            kind: "access-list",
            name: name.to_string(),
        })?;
        for (i, entry) in acl.entries.iter().enumerate() {
            if entry.matches(pkt) {
                return Ok(AclVerdict {
                    action: entry.action,
                    index: Some(i),
                });
            }
        }
        Ok(AclVerdict {
            action: Action::Deny,
            index: None,
        })
    }
}
