//! Stable rule identities and source spans.
//!
//! Static-analysis passes (`clarify-lint`) need two things the plain AST
//! does not carry: a *name* for every individual rule that survives
//! re-sorting and insertion (the [`RuleId`]), and the source line the rule
//! came from when the configuration was parsed from text (the
//! [`SourceMap`]). Keeping spans in a side table rather than on the AST
//! nodes keeps structural equality (`PartialEq`) purely semantic: two
//! configs that print identically stay equal no matter where their lines
//! sat in the original file.

use std::collections::BTreeMap;

/// The kind of named configuration object a rule lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjectKind {
    /// A `route-map`.
    RouteMap,
    /// An `ip access-list extended`.
    Acl,
    /// An `ip prefix-list`.
    PrefixList,
    /// An `ip as-path access-list`.
    AsPathList,
    /// An `ip community-list`.
    CommunityList,
}

impl ObjectKind {
    /// The IOS-ish keyword used when rendering identities.
    pub fn keyword(&self) -> &'static str {
        match self {
            ObjectKind::RouteMap => "route-map",
            ObjectKind::Acl => "access-list",
            ObjectKind::PrefixList => "prefix-list",
            ObjectKind::AsPathList => "as-path access-list",
            ObjectKind::CommunityList => "community-list",
        }
    }
}

/// Which rule within an object an identity points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleKey {
    /// The object itself (its header line), not any one rule.
    Object,
    /// A rule addressed by its IOS sequence number (route-map stanzas,
    /// prefix-list entries).
    Seq(u32),
    /// A rule addressed by its zero-based position in file order (ACL,
    /// as-path and community-list entries, which carry no sequence
    /// numbers).
    Index(usize),
}

/// A stable identity for one rule (or one whole object) of a [`Config`].
///
/// [`Config`]: crate::Config
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId {
    /// The kind of containing object.
    pub kind: ObjectKind,
    /// The containing object's name.
    pub object: String,
    /// The rule within the object.
    pub rule: RuleKey,
}

impl RuleId {
    /// Identity of a whole named object.
    pub fn object(kind: ObjectKind, name: impl Into<String>) -> RuleId {
        RuleId {
            kind,
            object: name.into(),
            rule: RuleKey::Object,
        }
    }

    /// Identity of a route-map stanza by sequence number.
    pub fn route_map_stanza(map: impl Into<String>, seq: u32) -> RuleId {
        RuleId {
            kind: ObjectKind::RouteMap,
            object: map.into(),
            rule: RuleKey::Seq(seq),
        }
    }

    /// Identity of an ACL entry by zero-based index.
    pub fn acl_entry(acl: impl Into<String>, index: usize) -> RuleId {
        RuleId {
            kind: ObjectKind::Acl,
            object: acl.into(),
            rule: RuleKey::Index(index),
        }
    }

    /// Identity of a prefix-list entry by sequence number.
    pub fn prefix_entry(list: impl Into<String>, seq: u32) -> RuleId {
        RuleId {
            kind: ObjectKind::PrefixList,
            object: list.into(),
            rule: RuleKey::Seq(seq),
        }
    }

    /// Identity of an as-path access-list entry by zero-based index.
    pub fn as_path_entry(list: impl Into<String>, index: usize) -> RuleId {
        RuleId {
            kind: ObjectKind::AsPathList,
            object: list.into(),
            rule: RuleKey::Index(index),
        }
    }

    /// Identity of a community-list entry by zero-based index.
    pub fn community_entry(list: impl Into<String>, index: usize) -> RuleId {
        RuleId {
            kind: ObjectKind::CommunityList,
            object: list.into(),
            rule: RuleKey::Index(index),
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.kind.keyword(), self.object)?;
        match (self.kind, self.rule) {
            (_, RuleKey::Object) => Ok(()),
            (ObjectKind::RouteMap, RuleKey::Seq(n)) => write!(f, " stanza {n}"),
            (_, RuleKey::Seq(n)) => write!(f, " seq {n}"),
            (_, RuleKey::Index(i)) => write!(f, " rule {i}"),
        }
    }
}

/// Side table mapping rule identities to one-based source line numbers,
/// produced by [`Config::parse_with_spans`].
///
/// [`Config::parse_with_spans`]: crate::Config::parse_with_spans
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SourceMap {
    lines: BTreeMap<RuleId, u32>,
}

impl SourceMap {
    /// An empty map.
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// Records the line a rule was parsed from. The first record for an
    /// identity wins (object headers keep their first occurrence).
    pub fn record(&mut self, id: RuleId, line: u32) {
        self.lines.entry(id).or_insert(line);
    }

    /// The one-based source line for a rule, if known.
    pub fn line(&self, id: &RuleId) -> Option<u32> {
        self.lines.get(id).copied()
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Iterates over `(identity, line)` pairs in identity order.
    pub fn iter(&self) -> impl Iterator<Item = (&RuleId, u32)> {
        self.lines.iter().map(|(k, &v)| (k, v))
    }
}
