use clarify_nettypes::{BgpRoute, Community, Packet, Prefix, Protocol};
use std::net::Ipv4Addr;

use crate::{
    insert_acl_entry, insert_route_map_stanza, AclEntry, Action, AddrMatch, Config, ConfigError,
    RouteMapVerdict,
};

/// The paper's §2 running example: route-map ISP_OUT with lists D0/D1.
pub(crate) const ISP_OUT: &str = "\
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
";

/// The LLM-synthesized snippet from §2.1.
pub(crate) const SNIPPET: &str = "\
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
";

fn pfx(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn com(s: &str) -> Community {
    s.parse().unwrap()
}

#[test]
fn parse_paper_config() {
    let cfg = Config::parse(ISP_OUT).unwrap();
    assert_eq!(cfg.route_maps.len(), 1);
    let rm = cfg.route_map("ISP_OUT").unwrap();
    assert_eq!(rm.stanzas.len(), 3);
    assert_eq!(rm.stanzas[0].seq, 10);
    assert_eq!(rm.stanzas[0].action, Action::Deny);
    assert_eq!(cfg.prefix_lists["D1"].entries.len(), 3);
    assert_eq!(cfg.as_path_lists["D0"].entries.len(), 1);
    cfg.validate().unwrap();
}

#[test]
fn eval_deny_by_as_path() {
    let cfg = Config::parse(ISP_OUT).unwrap();
    // Route originating from AS 32 hits stanza 10.
    let r = BgpRoute::with_defaults(pfx("99.0.0.0/16")).path(&[10, 32]);
    let v = cfg.eval_route_map("ISP_OUT", &r).unwrap();
    assert_eq!(v, RouteMapVerdict::DenyBy { seq: 10 });
}

#[test]
fn eval_deny_by_prefix_list() {
    let cfg = Config::parse(ISP_OUT).unwrap();
    let r = BgpRoute::with_defaults(pfx("10.1.0.0/16")).path(&[7]);
    let v = cfg.eval_route_map("ISP_OUT", &r).unwrap();
    assert_eq!(v, RouteMapVerdict::DenyBy { seq: 20 });
}

#[test]
fn eval_permit_by_local_pref() {
    let cfg = Config::parse(ISP_OUT).unwrap();
    let r = BgpRoute::with_defaults(pfx("99.0.0.0/16"))
        .path(&[7])
        .lp(300);
    let v = cfg.eval_route_map("ISP_OUT", &r).unwrap();
    assert!(v.is_permit());
    assert_eq!(v.seq(), Some(30));
}

#[test]
fn eval_implicit_deny() {
    let cfg = Config::parse(ISP_OUT).unwrap();
    // local-pref 100 (default) matches nothing.
    let r = BgpRoute::with_defaults(pfx("99.0.0.0/16")).path(&[7]);
    let v = cfg.eval_route_map("ISP_OUT", &r).unwrap();
    assert_eq!(v, RouteMapVerdict::ImplicitDeny);
}

#[test]
fn eval_first_match_wins_over_later() {
    let cfg = Config::parse(ISP_OUT).unwrap();
    // Matches both stanza 10 (as-path 32) and stanza 30 (lp 300): 10 wins.
    let r = BgpRoute::with_defaults(pfx("99.0.0.0/16"))
        .path(&[32])
        .lp(300);
    assert_eq!(
        cfg.eval_route_map("ISP_OUT", &r).unwrap(),
        RouteMapVerdict::DenyBy { seq: 10 }
    );
}

#[test]
fn snippet_sets_metric() {
    let cfg = Config::parse(SNIPPET).unwrap();
    let r = BgpRoute::with_defaults(pfx("100.0.0.0/16")).community(com("300:3"));
    let v = cfg.eval_route_map("SET_METRIC", &r).unwrap();
    let out = v.route().expect("permitted");
    assert_eq!(out.metric, 55);
    // Mask length 24 exceeds `le 23`.
    let r = BgpRoute::with_defaults(pfx("100.0.1.0/24")).community(com("300:3"));
    assert_eq!(
        cfg.eval_route_map("SET_METRIC", &r).unwrap(),
        RouteMapVerdict::ImplicitDeny
    );
    // Missing community.
    let r = BgpRoute::with_defaults(pfx("100.0.0.0/16"));
    assert_eq!(
        cfg.eval_route_map("SET_METRIC", &r).unwrap(),
        RouteMapVerdict::ImplicitDeny
    );
}

#[test]
fn multiple_names_in_match_or_together() {
    let text = "\
ip prefix-list A seq 5 permit 10.0.0.0/8
ip prefix-list B seq 5 permit 20.0.0.0/8
route-map RM permit 10
 match ip address prefix-list A B
";
    let cfg = Config::parse(text).unwrap();
    for p in ["10.0.0.0/8", "20.0.0.0/8"] {
        let r = BgpRoute::with_defaults(pfx(p));
        assert!(cfg.eval_route_map("RM", &r).unwrap().is_permit(), "{p}");
    }
    let r = BgpRoute::with_defaults(pfx("30.0.0.0/8"));
    assert!(!cfg.eval_route_map("RM", &r).unwrap().is_permit());
}

#[test]
fn deny_entries_in_lists() {
    let text = "\
ip prefix-list PL seq 5 deny 10.1.0.0/16
ip prefix-list PL seq 10 permit 10.0.0.0/8 le 32
route-map RM permit 10
 match ip address prefix-list PL
";
    let cfg = Config::parse(text).unwrap();
    let denied = BgpRoute::with_defaults(pfx("10.1.0.0/16"));
    assert!(!cfg.eval_route_map("RM", &denied).unwrap().is_permit());
    let permitted = BgpRoute::with_defaults(pfx("10.2.0.0/16"));
    assert!(cfg.eval_route_map("RM", &permitted).unwrap().is_permit());
}

#[test]
fn set_clauses_apply_in_order() {
    let text = "\
route-map RM permit 10
 set metric 5
 set local-preference 200
 set community 65000:1 additive
 set weight 7
 set tag 9
 set ip next-hop 192.0.2.1
";
    let cfg = Config::parse(text).unwrap();
    let r = BgpRoute::with_defaults(pfx("10.0.0.0/8")).community(com("300:3"));
    let out = cfg
        .eval_route_map("RM", &r)
        .unwrap()
        .route()
        .unwrap()
        .clone();
    assert_eq!(out.metric, 5);
    assert_eq!(out.local_pref, 200);
    assert_eq!(out.weight, 7);
    assert_eq!(out.tag, 9);
    assert_eq!(out.next_hop, Ipv4Addr::new(192, 0, 2, 1));
    assert!(
        out.communities.contains(&com("300:3")),
        "additive keeps old"
    );
    assert!(out.communities.contains(&com("65000:1")));
}

#[test]
fn set_community_replace_drops_old() {
    let text = "\
route-map RM permit 10
 set community 65000:1
";
    let cfg = Config::parse(text).unwrap();
    let r = BgpRoute::with_defaults(pfx("10.0.0.0/8")).community(com("300:3"));
    let out = cfg
        .eval_route_map("RM", &r)
        .unwrap()
        .route()
        .unwrap()
        .clone();
    assert!(!out.communities.contains(&com("300:3")));
    assert!(out.communities.contains(&com("65000:1")));
}

#[test]
fn empty_stanza_matches_everything() {
    let cfg = Config::parse("route-map RM deny 10\n").unwrap();
    let r = BgpRoute::with_defaults(pfx("10.0.0.0/8"));
    assert_eq!(
        cfg.eval_route_map("RM", &r).unwrap(),
        RouteMapVerdict::DenyBy { seq: 10 }
    );
}

#[test]
fn parse_errors_carry_line_numbers() {
    let e = Config::parse("route-map RM permit 10\nbogus line here\n").unwrap_err();
    match e {
        ConfigError::Syntax { line, .. } => assert_eq!(line, 2),
        other => panic!("unexpected error {other:?}"),
    }
    let e = Config::parse("match as-path D0\n").unwrap_err();
    assert!(matches!(e, ConfigError::Syntax { line: 1, .. }));
    let e = Config::parse("route-map RM permit ten\n").unwrap_err();
    assert!(matches!(e, ConfigError::Syntax { .. }));
}

#[test]
fn duplicate_stanza_seq_rejected() {
    let text = "route-map RM permit 10\nroute-map RM deny 10\n";
    assert!(matches!(
        Config::parse(text),
        Err(ConfigError::DuplicateName { .. })
    ));
}

#[test]
fn validate_catches_dangling_reference() {
    let cfg = Config::parse("route-map RM permit 10\n match as-path NOPE\n").unwrap();
    assert!(matches!(
        cfg.validate(),
        Err(ConfigError::UnknownList { name, .. }) if name == "NOPE"
    ));
}

#[test]
fn eval_missing_route_map_errors() {
    let cfg = Config::new();
    let r = BgpRoute::with_defaults(pfx("10.0.0.0/8"));
    assert!(matches!(
        cfg.eval_route_map("NOPE", &r),
        Err(ConfigError::NotFound { .. })
    ));
}

#[test]
fn print_parse_roundtrip() {
    for text in [ISP_OUT, SNIPPET] {
        let cfg = Config::parse(text).unwrap();
        let printed = cfg.to_string();
        let reparsed = Config::parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(cfg, reparsed, "round-trip failed for:\n{printed}");
    }
}

#[test]
fn acl_parse_and_eval() {
    let text = "\
ip access-list extended EDGE_IN
 permit tcp host 1.1.1.1 host 2.2.2.2 eq 443
 deny ip 10.0.0.0 0.255.255.255 any
 permit udp any eq 53 any
 deny tcp any any range 8000 8100
 permit ip any any
";
    let cfg = Config::parse(text).unwrap();
    let acl = cfg.acl("EDGE_IN").unwrap();
    assert_eq!(acl.entries.len(), 5);

    let p = Packet::tcp(
        Ipv4Addr::new(1, 1, 1, 1),
        5555,
        Ipv4Addr::new(2, 2, 2, 2),
        443,
    );
    let v = cfg.eval_acl("EDGE_IN", &p).unwrap();
    assert_eq!(v.action, Action::Permit);
    assert_eq!(v.index, Some(0));

    let p = Packet::tcp(Ipv4Addr::new(10, 9, 8, 7), 1, Ipv4Addr::new(2, 2, 2, 2), 80);
    assert_eq!(cfg.eval_acl("EDGE_IN", &p).unwrap().index, Some(1));

    let p = Packet {
        src_ip: Ipv4Addr::new(3, 3, 3, 3),
        dst_ip: Ipv4Addr::new(4, 4, 4, 4),
        protocol: Protocol::Udp,
        src_port: 53,
        dst_port: 9,
    };
    assert_eq!(cfg.eval_acl("EDGE_IN", &p).unwrap().index, Some(2));

    let p = Packet::tcp(
        Ipv4Addr::new(3, 3, 3, 3),
        9,
        Ipv4Addr::new(4, 4, 4, 4),
        8050,
    );
    let v = cfg.eval_acl("EDGE_IN", &p).unwrap();
    assert_eq!(v.action, Action::Deny);
    assert_eq!(v.index, Some(3));
}

#[test]
fn acl_implicit_deny() {
    let cfg = Config::parse("ip access-list extended A\n permit tcp any any eq 80\n").unwrap();
    let p = Packet::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 81);
    let v = cfg.eval_acl("A", &p).unwrap();
    assert_eq!(v.action, Action::Deny);
    assert_eq!(v.index, None);
}

#[test]
fn acl_rejects_noncontiguous_wildcard() {
    let text = "ip access-list extended A\n permit ip 10.0.0.0 0.255.0.255 any\n";
    assert!(matches!(
        Config::parse(text),
        Err(ConfigError::Syntax { .. })
    ));
}

#[test]
fn acl_port_on_icmp_rejected() {
    let text = "ip access-list extended A\n permit icmp any eq 1 any\n";
    assert!(Config::parse(text).is_err());
}

#[test]
fn acl_gt_lt_ports() {
    let text = "\
ip access-list extended A
 permit tcp any gt 1023 any
 permit udp any any lt 1024
";
    let cfg = Config::parse(text).unwrap();
    let acl = cfg.acl("A").unwrap();
    assert_eq!(acl.entries[0].src_ports.lo, 1024);
    assert_eq!(acl.entries[0].src_ports.hi, u16::MAX);
    assert_eq!(acl.entries[1].dst_ports.hi, 1023);
}

#[test]
fn acl_roundtrip() {
    let text = "\
ip access-list extended EDGE_IN
 permit tcp host 1.1.1.1 host 2.2.2.2 eq 443
 deny ip 10.0.0.0/8 any
 permit udp any eq 53 any
";
    let cfg = Config::parse(text).unwrap();
    let printed = cfg.to_string();
    assert_eq!(Config::parse(&printed).unwrap(), cfg);
}

#[test]
fn entry_superset_detection() {
    let cfg = Config::parse(
        "ip access-list extended A\n deny ip any any\n permit tcp host 1.1.1.1 host 2.2.2.2\n",
    )
    .unwrap();
    let acl = cfg.acl("A").unwrap();
    assert!(acl.entries[0].match_superset_of(&acl.entries[1]));
    assert!(!acl.entries[1].match_superset_of(&acl.entries[0]));
}

#[test]
fn insert_at_top_matches_figure_2a() {
    let base = Config::parse(ISP_OUT).unwrap();
    let snippet = Config::parse(SNIPPET).unwrap();
    let (cfg, report) =
        insert_route_map_stanza(&base, "ISP_OUT", &snippet, "SET_METRIC", 0).unwrap();
    let rm = cfg.route_map("ISP_OUT").unwrap();
    assert_eq!(rm.stanzas.len(), 4);
    // Figure 2(a): new stanza first, renumbered 10/20/30/40.
    assert_eq!(
        rm.stanzas.iter().map(|s| s.seq).collect::<Vec<_>>(),
        vec![10, 20, 30, 40]
    );
    assert_eq!(rm.stanzas[0].action, Action::Permit);
    assert_eq!(report.new_seq, 10);
    assert_eq!(report.position, 0);
    // Lists renamed to the D-convention: D2 and D3 are the fresh names
    // (D0, D1 are taken by the base config).
    let renamed: Vec<&str> = report.renames.iter().map(|(_, n)| n.as_str()).collect();
    assert_eq!(renamed, vec!["D2", "D3"]);
    cfg.validate().unwrap();

    // Behaviour: the §2.2 differential route now gets metric 55.
    let r = BgpRoute::with_defaults(pfx("100.0.0.0/16"))
        .path(&[32])
        .community(com("300:3"));
    let v = cfg.eval_route_map("ISP_OUT", &r).unwrap();
    assert_eq!(v.route().unwrap().metric, 55);
}

#[test]
fn insert_at_bottom_matches_figure_2b() {
    let base = Config::parse(ISP_OUT).unwrap();
    let snippet = Config::parse(SNIPPET).unwrap();
    let (cfg, _) = insert_route_map_stanza(&base, "ISP_OUT", &snippet, "SET_METRIC", 3).unwrap();
    let rm = cfg.route_map("ISP_OUT").unwrap();
    assert_eq!(rm.stanzas[3].action, Action::Permit);
    assert!(!rm.stanzas[3].sets.is_empty());
    // Figure 2(b) / OPTION 2: the differential route is denied because
    // stanza 10 (as-path 32) fires first.
    let r = BgpRoute::with_defaults(pfx("100.0.0.0/16"))
        .path(&[32])
        .community(com("300:3"));
    assert_eq!(
        cfg.eval_route_map("ISP_OUT", &r).unwrap(),
        RouteMapVerdict::DenyBy { seq: 10 }
    );
}

#[test]
fn insert_positions_are_validated() {
    let base = Config::parse(ISP_OUT).unwrap();
    let snippet = Config::parse(SNIPPET).unwrap();
    assert!(matches!(
        insert_route_map_stanza(&base, "ISP_OUT", &snippet, "SET_METRIC", 5),
        Err(ConfigError::InvalidEdit(_))
    ));
    assert!(matches!(
        insert_route_map_stanza(&base, "NOPE", &snippet, "SET_METRIC", 0),
        Err(ConfigError::NotFound { .. })
    ));
    assert!(matches!(
        insert_route_map_stanza(&base, "ISP_OUT", &snippet, "NOPE", 0),
        Err(ConfigError::NotFound { .. })
    ));
}

#[test]
fn insert_rejects_multi_stanza_snippet() {
    let base = Config::parse(ISP_OUT).unwrap();
    let snippet = Config::parse("route-map S permit 10\nroute-map S permit 20\n").unwrap();
    assert!(matches!(
        insert_route_map_stanza(&base, "ISP_OUT", &snippet, "S", 0),
        Err(ConfigError::InvalidEdit(_))
    ));
}

#[test]
fn insert_preserves_base_behaviour_elsewhere() {
    let base = Config::parse(ISP_OUT).unwrap();
    let snippet = Config::parse(SNIPPET).unwrap();
    for pos in 0..=3 {
        let (cfg, _) =
            insert_route_map_stanza(&base, "ISP_OUT", &snippet, "SET_METRIC", pos).unwrap();
        // A route the snippet does not match behaves exactly as before.
        let r = BgpRoute::with_defaults(pfx("10.1.0.0/16")).path(&[7]);
        let before = base.eval_route_map("ISP_OUT", &r).unwrap();
        let after = cfg.eval_route_map("ISP_OUT", &r).unwrap();
        assert_eq!(before.is_permit(), after.is_permit(), "position {pos}");
    }
}

#[test]
fn insert_acl_entry_positions() {
    let base =
        Config::parse("ip access-list extended A\n permit tcp any any eq 80\n deny ip any any\n")
            .unwrap();
    let entry = AclEntry {
        action: Action::Permit,
        protocol: Protocol::Udp,
        src: AddrMatch::Any,
        src_ports: clarify_nettypes::PortRange::ANY,
        dst: AddrMatch::Any,
        dst_ports: clarify_nettypes::PortRange::eq(53),
    };
    let cfg = insert_acl_entry(&base, "A", entry.clone(), 1).unwrap();
    assert_eq!(cfg.acl("A").unwrap().entries.len(), 3);
    assert_eq!(cfg.acl("A").unwrap().entries[1], entry);
    assert!(insert_acl_entry(&base, "A", entry.clone(), 9).is_err());
    assert!(insert_acl_entry(&base, "B", entry, 0).is_err());
}

#[test]
fn prefix_list_auto_seq() {
    let text = "\
ip prefix-list PL permit 10.0.0.0/8
ip prefix-list PL permit 20.0.0.0/8
";
    let cfg = Config::parse(text).unwrap();
    let seqs: Vec<u32> = cfg.prefix_lists["PL"]
        .entries
        .iter()
        .map(|e| e.seq)
        .collect();
    assert_eq!(seqs, vec![5, 10]);
}

#[test]
fn comments_and_blank_lines_ignored() {
    let text = "! a comment\n\nroute-map RM permit 10\n!\n set metric 1\n";
    let cfg = Config::parse(text).unwrap();
    assert_eq!(cfg.route_map("RM").unwrap().stanzas[0].sets.len(), 1);
}

mod properties {
    use super::*;
    use crate::{PrefixList, PrefixListEntry};
    use clarify_nettypes::PrefixRange;
    use clarify_testkit::{gens, prop_assert_eq, property, Rng, Source};

    fn arb_prefix(g: &mut Source) -> Prefix {
        let addr = g.gen_range(0u32..=u32::MAX);
        let len = g.gen_range(0u8..=32);
        Prefix::from_u32(addr, len)
    }

    property! {
        /// Printing any parsed-then-printed config is a fixpoint.
        fn print_is_fixpoint(seed in gens::ints(0u32..1000)) {
            // Build a small config from the seed deterministically.
            let lp = 100 + seed % 400;
            let text = format!(
                "ip prefix-list P seq 5 permit 10.{}.0.0/16\nroute-map R permit 10\n match ip address prefix-list P\n set local-preference {lp}\n",
                seed % 256,
            );
            let cfg = Config::parse(&text).unwrap();
            let once = cfg.to_string();
            let twice = Config::parse(&once).unwrap().to_string();
            prop_assert_eq!(once, twice);
        }

        /// Prefix-list evaluation agrees with direct range matching when
        /// all entries are permits.
        fn prefix_list_permit_only(prefixes in gens::vec_of(arb_prefix, 1, 5), probe in arb_prefix) {
            let entries: Vec<PrefixListEntry> = prefixes
                .iter()
                .enumerate()
                .map(|(i, p)| PrefixListEntry {
                    seq: (i as u32 + 1) * 5,
                    action: Action::Permit,
                    range: PrefixRange::exact(*p),
                })
                .collect();
            let pl = PrefixList { name: "P".into(), entries };
            let direct = prefixes.contains(&probe);
            prop_assert_eq!(pl.permits(&probe), direct);
        }
    }
}

#[test]
fn insert_prefix_list_entry_renumbers() {
    use crate::{insert_prefix_list_entry, PrefixListEntry};
    use clarify_nettypes::PrefixRange;
    let base = Config::parse(
        "ip prefix-list PL seq 10 permit 10.0.0.0/8 le 24\nip prefix-list PL seq 20 deny 20.0.0.0/8\n",
    )
    .unwrap();
    let entry = PrefixListEntry {
        seq: 0,
        action: Action::Deny,
        range: "10.1.0.0/16 le 32".parse::<PrefixRange>().unwrap(),
    };
    let cfg = insert_prefix_list_entry(&base, "PL", entry.clone(), 0).unwrap();
    let pl = &cfg.prefix_lists["PL"];
    assert_eq!(pl.entries.len(), 3);
    assert_eq!(pl.entries[0].range, entry.range);
    assert_eq!(
        pl.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![5, 10, 15]
    );
    assert!(insert_prefix_list_entry(&base, "PL", entry.clone(), 5).is_err());
    assert!(insert_prefix_list_entry(&base, "NOPE", entry, 0).is_err());
}

#[test]
fn standard_community_list_desugars_to_expanded() {
    let text = "\
ip community-list standard ALLOW permit 300:3
ip community-list standard ALLOW deny 65000:1
route-map RM permit 10
 match community ALLOW
";
    let cfg = Config::parse(text).unwrap();
    let cl = &cfg.community_lists["ALLOW"];
    assert_eq!(cl.entries.len(), 2);
    assert_eq!(cl.entries[0].regex.pattern(), "_300:3_");
    let tagged = BgpRoute::with_defaults(pfx("10.0.0.0/8")).community(com("300:3"));
    assert!(cfg.eval_route_map("RM", &tagged).unwrap().is_permit());
    let denied = BgpRoute::with_defaults(pfx("10.0.0.0/8")).community(com("65000:1"));
    assert!(!cfg.eval_route_map("RM", &denied).unwrap().is_permit());
    let untagged = BgpRoute::with_defaults(pfx("10.0.0.0/8"));
    assert!(!cfg.eval_route_map("RM", &untagged).unwrap().is_permit());
    // Round-trips via the expanded form.
    let printed = cfg.to_string();
    assert!(printed.contains("ip community-list expanded ALLOW permit _300:3_"));
    assert_eq!(Config::parse(&printed).unwrap(), cfg);
}

#[test]
fn standard_community_list_rejects_conjunctive_entries() {
    let text = "ip community-list standard X permit 300:3 300:4\n";
    assert!(matches!(
        Config::parse(text),
        Err(ConfigError::Syntax { .. })
    ));
    let text = "ip community-list standard X permit\n";
    assert!(Config::parse(text).is_err());
    let text = "ip community-list standard X permit nonsense\n";
    assert!(Config::parse(text).is_err());
}

mod robustness {
    use super::*;
    use clarify_testkit::{gens, prop_assert_eq, property};

    property! {
        /// The parser never panics on arbitrary printable input — it either
        /// parses or returns a positioned error.
        fn parser_never_panics(input in gens::ascii_string_with_newlines(300)) cases 256 {
            let _ = Config::parse(&input);
        }

        /// Keyword-shaped garbage also never panics (denser coverage of
        /// the statement dispatch than uniform noise).
        fn parser_never_panics_on_keyword_soup(
            words in gens::vec_of(
                gens::sampled(vec![
                    "route-map", "ip", "prefix-list", "access-list",
                    "extended", "as-path", "community-list", "expanded",
                    "standard", "match", "set", "permit", "deny",
                    "seq", "le", "ge", "eq", "range", "host",
                    "any", "tcp", "udp", "10.0.0.0/8", "1.2.3.4",
                    "10", "300:3", "_32$", "RM", "\n",
                ]),
                0, 39,
            )
        ) cases 256 {
            let text = words.join(" ");
            let _ = Config::parse(&text);
        }

        /// Whatever parses, prints, and re-parses is stable (idempotent
        /// canonical form) — on keyword soup that happens to be valid.
        fn print_parse_idempotent_on_valid_soup(
            words in gens::vec_of(
                gens::sampled(vec![
                    "ip prefix-list P seq 5 permit 10.0.0.0/8 le 24\n",
                    "ip prefix-list Q seq 5 deny 20.0.0.0/8\n",
                    "ip as-path access-list A permit _32$\n",
                    "ip community-list expanded C permit _300:3_\n",
                    "route-map R1 permit 10\n match ip address prefix-list P\n",
                    "route-map R2 deny 10\n set metric 5\n",
                    "ip access-list extended ACL\n permit tcp any any eq 80\n",
                ]),
                1, 5,
            )
        ) cases 256 {
            let text: String = words.concat();
            if let Ok(cfg) = Config::parse(&text) {
                let printed = cfg.to_string();
                let reparsed = Config::parse(&printed).expect("canonical form parses");
                prop_assert_eq!(&cfg, &reparsed);
                prop_assert_eq!(printed.clone(), reparsed.to_string());
            }
        }
    }
}

#[test]
fn route_map_auto_sequence_numbers() {
    let text = "\
route-map RM permit
 match tag 1
route-map RM deny
 match tag 2
route-map RM permit 55
route-map RM deny
";
    let cfg = Config::parse(text).unwrap();
    let seqs: Vec<u32> = cfg
        .route_map("RM")
        .unwrap()
        .stanzas
        .iter()
        .map(|s| s.seq)
        .collect();
    assert_eq!(seqs, vec![10, 20, 55, 65]);
}

#[test]
fn config_merge_detects_clashes() {
    let mut a = Config::parse("ip prefix-list P seq 5 permit 10.0.0.0/8\n").unwrap();
    let b = Config::parse("ip prefix-list Q seq 5 permit 20.0.0.0/8\nroute-map RM permit 10\n")
        .unwrap();
    a.merge(b).unwrap();
    assert!(a.prefix_lists.contains_key("P"));
    assert!(a.prefix_lists.contains_key("Q"));
    assert!(a.route_maps.contains_key("RM"));
    // Clashing names are rejected.
    let clash = Config::parse("ip prefix-list P seq 5 permit 30.0.0.0/8\n").unwrap();
    assert!(matches!(
        a.merge(clash),
        Err(ConfigError::DuplicateName { .. })
    ));
}

#[test]
fn parse_with_spans_records_rule_lines() {
    use crate::{ObjectKind, RuleId};
    let (cfg, spans) = Config::parse_with_spans(ISP_OUT).unwrap();
    assert_eq!(cfg, Config::parse(ISP_OUT).unwrap());
    // ISP_OUT layout: as-path line 1, prefix-list seqs 10/20/30 on lines
    // 2-4, route-map stanza headers on lines 5, 7, 9.
    assert_eq!(spans.line(&RuleId::as_path_entry("D0", 0)), Some(1));
    assert_eq!(spans.line(&RuleId::prefix_entry("D1", 10)), Some(2));
    assert_eq!(spans.line(&RuleId::prefix_entry("D1", 30)), Some(4));
    assert_eq!(
        spans.line(&RuleId::route_map_stanza("ISP_OUT", 10)),
        Some(5)
    );
    assert_eq!(
        spans.line(&RuleId::route_map_stanza("ISP_OUT", 30)),
        Some(9)
    );
    // Object headers point at their first occurrence.
    assert_eq!(
        spans.line(&RuleId::object(ObjectKind::RouteMap, "ISP_OUT")),
        Some(5)
    );
    assert_eq!(
        spans.line(&RuleId::object(ObjectKind::PrefixList, "D1")),
        Some(2)
    );
    // Unknown rules have no span.
    assert_eq!(spans.line(&RuleId::route_map_stanza("ISP_OUT", 99)), None);
    assert!(!spans.is_empty());
}

#[test]
fn acl_spans_and_rule_id_display() {
    use crate::RuleId;
    let text = "\
ip access-list extended EDGE_IN
 permit tcp any host 10.0.0.1 eq 443
 deny ip any any
";
    let (_, spans) = Config::parse_with_spans(text).unwrap();
    assert_eq!(spans.line(&RuleId::acl_entry("EDGE_IN", 0)), Some(2));
    assert_eq!(spans.line(&RuleId::acl_entry("EDGE_IN", 1)), Some(3));
    assert_eq!(
        RuleId::acl_entry("EDGE_IN", 1).to_string(),
        "access-list EDGE_IN rule 1"
    );
    assert_eq!(
        RuleId::route_map_stanza("ISP_OUT", 20).to_string(),
        "route-map ISP_OUT stanza 20"
    );
    assert_eq!(
        RuleId::prefix_entry("D1", 10).to_string(),
        "prefix-list D1 seq 10"
    );
}
