//! Content hashing and structural diffing of configurations.
//!
//! These are the invalidation keys of the incremental re-lint layer: every
//! named object gets a stable 64-bit content hash over its canonical
//! printed form (which round-trips through the parser, so two objects that
//! print identically are semantically interchangeable to every analysis),
//! and two configurations can be diffed into added / removed / changed
//! object sets keyed by [`RuleId`]. Hashes deliberately ignore source
//! lines: moving an object within a file must not dirty it, exactly as
//! [`SourceMap`](crate::SourceMap) keeps spans out of structural equality.

use std::collections::BTreeMap;

use crate::ast::Config;
use crate::span::{ObjectKind, RuleId};

/// 64-bit FNV-1a over a byte string. Stable across platforms and runs —
/// the incremental lint cache persists these hashes to disk.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Extends an FNV-1a state with one `u64` (for combining hashes).
pub fn fnv1a64_combine(state: u64, value: u64) -> u64 {
    fnv1a64_extend(state, &value.to_le_bytes())
}

fn fnv1a64_extend(mut h: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Content hashes for every named object of a configuration, keyed by the
/// object-level [`RuleId`] (`RuleKey::Object`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObjectHashes {
    hashes: BTreeMap<RuleId, u64>,
}

impl ObjectHashes {
    /// The hash of one object, if it exists.
    pub fn get(&self, kind: ObjectKind, name: &str) -> Option<u64> {
        self.hashes.get(&RuleId::object(kind, name)).copied()
    }

    /// Iterates over `(identity, hash)` pairs in identity order.
    pub fn iter(&self) -> impl Iterator<Item = (&RuleId, u64)> {
        self.hashes.iter().map(|(k, &v)| (k, v))
    }

    /// Number of hashed objects.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the configuration had no objects.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The structural diff from `self` (the old configuration) to `new`:
    /// which objects appeared, disappeared, or changed content.
    pub fn diff(&self, new: &ObjectHashes) -> ConfigDiff {
        let mut diff = ConfigDiff::default();
        for (id, &h) in &new.hashes {
            match self.hashes.get(id) {
                None => diff.added.push(id.clone()),
                Some(&old) if old != h => diff.changed.push(id.clone()),
                Some(_) => {}
            }
        }
        for id in self.hashes.keys() {
            if !new.hashes.contains_key(id) {
                diff.removed.push(id.clone());
            }
        }
        diff
    }
}

/// The object-level structural diff between two configurations. Each list
/// holds object identities (`RuleKey::Object`), sorted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfigDiff {
    /// Objects present only in the new configuration.
    pub added: Vec<RuleId>,
    /// Objects present only in the old configuration.
    pub removed: Vec<RuleId>,
    /// Objects present in both whose content hashes differ.
    pub changed: Vec<RuleId>,
}

impl ConfigDiff {
    /// Whether the two configurations have identical objects.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// All touched identities (added ∪ removed ∪ changed), sorted.
    pub fn touched(&self) -> Vec<RuleId> {
        let mut all: Vec<RuleId> = self
            .added
            .iter()
            .chain(&self.removed)
            .chain(&self.changed)
            .cloned()
            .collect();
        all.sort();
        all
    }
}

impl Config {
    /// Content hashes for every named object, over each object's canonical
    /// printed form (prefixed by its kind keyword so equal text under
    /// different kinds cannot collide).
    pub fn object_hashes(&self) -> ObjectHashes {
        let mut hashes = BTreeMap::new();
        let mut put = |kind: ObjectKind, name: &str, text: String| {
            let mut h = fnv1a64(kind.keyword().as_bytes());
            h = fnv1a64_extend(h, b"\0");
            h = fnv1a64_extend(h, text.as_bytes());
            hashes.insert(RuleId::object(kind, name), h);
        };
        for (name, o) in &self.route_maps {
            put(ObjectKind::RouteMap, name, o.to_string());
        }
        for (name, o) in &self.acls {
            put(ObjectKind::Acl, name, o.to_string());
        }
        for (name, o) in &self.prefix_lists {
            put(ObjectKind::PrefixList, name, o.to_string());
        }
        for (name, o) in &self.as_path_lists {
            put(ObjectKind::AsPathList, name, o.to_string());
        }
        for (name, o) in &self.community_lists {
            put(ObjectKind::CommunityList, name, o.to_string());
        }
        ObjectHashes { hashes }
    }

    /// Hash of the whole canonical rendering (the printed config).
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.to_string().as_bytes())
    }

    /// The structural diff from `self` to `new`.
    pub fn diff_objects(&self, new: &Config) -> ConfigDiff {
        self.object_hashes().diff(&new.object_hashes())
    }
}
