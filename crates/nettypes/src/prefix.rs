//! IPv4 prefixes and Cisco prefix-list match ranges.

use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::ParseError;

/// An IPv4 prefix in CIDR notation, stored normalized (host bits zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// Builds a prefix, zeroing any bits beyond `len`. Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} out of range");
        let raw = u32::from(addr);
        Prefix {
            addr: raw & Self::mask(len),
            len,
        }
    }

    /// Builds from a raw network-order integer, zeroing host bits.
    pub fn from_u32(addr: u32, len: u8) -> Prefix {
        Self::new(Ipv4Addr::from(addr), len)
    }

    /// The all-zero default prefix `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Network address.
    pub fn addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Network address as a raw integer.
    pub fn addr_u32(&self) -> u32 {
        self.addr
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == self.addr
    }

    /// Whether `other` is equal to or more specific than `self`.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// Whether the two address ranges intersect at all.
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        let (ip, len) = s
            .split_once('/')
            .ok_or_else(|| ParseError::new(format!("prefix '{s}' missing '/'")))?;
        let addr: Ipv4Addr = ip
            .parse()
            .map_err(|_| ParseError::new(format!("bad IPv4 address '{ip}'")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| ParseError::new(format!("bad prefix length '{len}'")))?;
        if len > 32 {
            return Err(ParseError::new(format!("prefix length {len} > 32")));
        }
        Ok(Prefix::new(addr, len))
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl std::fmt::Debug for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

/// A Cisco prefix-list style match: a covering prefix plus a permitted
/// range of prefix lengths (`ge`/`le` modifiers).
///
/// Semantics follow IOS: a candidate route prefix matches when the covering
/// prefix covers it **and** its length falls within `[min_len, max_len]`.
/// Without modifiers the entry matches the exact prefix only.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefixRange {
    /// The covering prefix.
    pub prefix: Prefix,
    /// Minimum matching length (inclusive).
    pub min_len: u8,
    /// Maximum matching length (inclusive).
    pub max_len: u8,
}

impl PrefixRange {
    /// Exact-match range for a single prefix.
    pub fn exact(prefix: Prefix) -> PrefixRange {
        PrefixRange {
            prefix,
            min_len: prefix.len(),
            max_len: prefix.len(),
        }
    }

    /// Builds a range with optional `ge`/`le` bounds, validating the IOS
    /// constraint `len <= ge <= le <= 32`.
    pub fn with_bounds(prefix: Prefix, ge: Option<u8>, le: Option<u8>) -> Result<Self, ParseError> {
        let min_len = ge.unwrap_or_else(|| prefix.len());
        // `ge` without `le` opens the upper bound to /32 (IOS behaviour).
        let max_len = le.unwrap_or(if ge.is_some() { 32 } else { min_len });
        if !(prefix.len() <= min_len && min_len <= max_len && max_len <= 32) {
            return Err(ParseError::new(format!(
                "invalid prefix range: {} ge {} le {}",
                prefix, min_len, max_len
            )));
        }
        Ok(PrefixRange {
            prefix,
            min_len,
            max_len,
        })
    }

    /// Whether a concrete route prefix matches this range.
    pub fn matches(&self, candidate: &Prefix) -> bool {
        self.prefix.covers(candidate)
            && candidate.len() >= self.min_len
            && candidate.len() <= self.max_len
    }

    /// Whether two ranges can match a common prefix.
    pub fn overlaps(&self, other: &PrefixRange) -> bool {
        let lo = self.min_len.max(other.min_len);
        let hi = self.max_len.min(other.max_len);
        lo <= hi && self.prefix.overlaps(&other.prefix)
    }
}

impl FromStr for PrefixRange {
    type Err = ParseError;

    /// Parses `A.B.C.D/L`, optionally followed by `ge N` and/or `le N`.
    fn from_str(s: &str) -> Result<Self, ParseError> {
        let mut parts = s.split_whitespace();
        let prefix: Prefix = parts
            .next()
            .ok_or_else(|| ParseError::new("empty prefix range"))?
            .parse()?;
        let mut ge = None;
        let mut le = None;
        while let Some(word) = parts.next() {
            let value: u8 = parts
                .next()
                .ok_or_else(|| ParseError::new(format!("'{word}' missing value")))?
                .parse()
                .map_err(|_| ParseError::new(format!("bad length after '{word}'")))?;
            match word {
                "ge" => ge = Some(value),
                "le" => le = Some(value),
                other => {
                    return Err(ParseError::new(format!(
                        "expected 'ge' or 'le', found '{other}'"
                    )))
                }
            }
        }
        PrefixRange::with_bounds(prefix, ge, le)
    }
}

impl std::fmt::Display for PrefixRange {
    /// Renders the shortest IOS form that parses back to the same range:
    /// `ge` is printed when the lower bound exceeds the prefix length, and
    /// `le` when the upper bound differs from what the parser would infer
    /// (32 after a `ge`, the prefix length otherwise).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.prefix)?;
        let exact = self.prefix.len();
        let ge_printed = self.min_len != exact;
        if ge_printed {
            write!(f, " ge {}", self.min_len)?;
        }
        let implied_max = if ge_printed { 32 } else { exact };
        if self.max_len != implied_max {
            write!(f, " le {}", self.max_len)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for PrefixRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}
