//! BGP route advertisements, the input space of route-map analysis.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use crate::{AsPath, Community, Prefix};

/// A concrete BGP route advertisement.
///
/// Field set and default values follow the differential examples in the
/// paper (§2.2): network, AS path, communities, local preference, metric
/// (MED), next hop, tag, and weight.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BgpRoute {
    /// The advertised network.
    pub network: Prefix,
    /// AS path, most recent hop first.
    pub as_path: AsPath,
    /// Standard communities, kept sorted for deterministic display.
    pub communities: BTreeSet<Community>,
    /// LOCAL_PREF attribute.
    pub local_pref: u32,
    /// MED / metric attribute.
    pub metric: u32,
    /// NEXT_HOP attribute.
    pub next_hop: Ipv4Addr,
    /// Route tag.
    pub tag: u32,
    /// Cisco administrative weight.
    pub weight: u16,
}

impl BgpRoute {
    /// A route with the paper's default attribute values: local-pref 100,
    /// metric 0, next hop 0.0.0.1, tag 0, weight 0, empty path and
    /// communities.
    pub fn with_defaults(network: Prefix) -> BgpRoute {
        BgpRoute {
            network,
            as_path: AsPath::empty(),
            communities: BTreeSet::new(),
            local_pref: 100,
            metric: 0,
            next_hop: Ipv4Addr::new(0, 0, 0, 1),
            tag: 0,
            weight: 0,
        }
    }

    /// Builder-style setter for the AS path.
    pub fn path(mut self, asns: &[u32]) -> BgpRoute {
        self.as_path = AsPath::from_asns(asns.to_vec());
        self
    }

    /// Builder-style setter adding one community.
    pub fn community(mut self, c: Community) -> BgpRoute {
        self.communities.insert(c);
        self
    }

    /// Builder-style setter for local preference.
    pub fn lp(mut self, local_pref: u32) -> BgpRoute {
        self.local_pref = local_pref;
        self
    }

    /// Builder-style setter for metric.
    pub fn med(mut self, metric: u32) -> BgpRoute {
        self.metric = metric;
        self
    }

    /// Communities rendered for display: `["300:3", "65000:1"]`.
    pub fn communities_display(&self) -> String {
        let items: Vec<String> = self
            .communities
            .iter()
            .map(|c| format!("\"{c}\""))
            .collect();
        format!("[{}]", items.join(", "))
    }
}

impl std::fmt::Display for BgpRoute {
    /// Renders in the multi-line layout the paper shows to users.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Network: {}", self.network)?;
        writeln!(
            f,
            "AS Path: [{{ \"asns\": [{}], \"confederation\": false }}]",
            self.as_path
                .asns()
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        writeln!(f, "Communities: {}", self.communities_display())?;
        writeln!(f, "Local Preference: {}", self.local_pref)?;
        writeln!(f, "Metric: {}", self.metric)?;
        writeln!(f, "Next Hop IP: {}", self.next_hop)?;
        writeln!(f, "Tag: {}", self.tag)?;
        write!(f, "Weight: {}", self.weight)
    }
}
