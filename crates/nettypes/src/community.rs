//! BGP standard communities.

use std::str::FromStr;

use crate::ParseError;

/// A standard BGP community `ASN:value` (RFC 1997).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Community {
    /// High half, conventionally an AS number.
    pub asn: u16,
    /// Low half, operator-defined.
    pub value: u16,
}

impl Community {
    /// Builds a community from its two 16-bit halves.
    pub fn new(asn: u16, value: u16) -> Community {
        Community { asn, value }
    }

    /// The canonical `N:M` rendering used as the regex subject string for
    /// expanded community lists.
    pub fn subject(&self) -> String {
        format!("{}:{}", self.asn, self.value)
    }
}

impl FromStr for Community {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        let (a, v) = s
            .split_once(':')
            .ok_or_else(|| ParseError::new(format!("community '{s}' missing ':'")))?;
        let asn: u32 = a
            .parse()
            .map_err(|_| ParseError::new(format!("bad community half '{a}'")))?;
        let value: u32 = v
            .parse()
            .map_err(|_| ParseError::new(format!("bad community half '{v}'")))?;
        if asn > u32::from(u16::MAX) || value > u32::from(u16::MAX) {
            return Err(ParseError::new(format!(
                "community '{s}' half exceeds 65535"
            )));
        }
        Ok(Community::new(asn as u16, value as u16))
    }
}

impl std::fmt::Display for Community {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.asn, self.value)
    }
}

impl std::fmt::Debug for Community {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}
