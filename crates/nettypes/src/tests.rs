use std::net::Ipv4Addr;

use crate::{AsPath, BgpRoute, Community, Packet, PortRange, Prefix, PrefixRange, Protocol};

#[test]
fn prefix_normalizes_host_bits() {
    let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 8);
    assert_eq!(p.to_string(), "10.0.0.0/8");
    assert_eq!(p, "10.255.255.255/8".parse().unwrap());
}

#[test]
fn prefix_parse_roundtrip() {
    for s in ["0.0.0.0/0", "10.0.0.0/8", "100.0.0.0/16", "1.2.3.4/32"] {
        let p: Prefix = s.parse().unwrap();
        assert_eq!(p.to_string(), s);
    }
}

#[test]
fn prefix_parse_errors() {
    assert!("10.0.0.0".parse::<Prefix>().is_err());
    assert!("10.0.0.0/33".parse::<Prefix>().is_err());
    assert!("10.0.0/8".parse::<Prefix>().is_err());
    assert!("x/8".parse::<Prefix>().is_err());
}

#[test]
fn prefix_covers_and_overlaps() {
    let p8: Prefix = "10.0.0.0/8".parse().unwrap();
    let p16: Prefix = "10.1.0.0/16".parse().unwrap();
    let other: Prefix = "20.0.0.0/16".parse().unwrap();
    assert!(p8.covers(&p16));
    assert!(!p16.covers(&p8));
    assert!(p8.covers(&p8));
    assert!(p8.overlaps(&p16));
    assert!(p16.overlaps(&p8));
    assert!(!p16.overlaps(&other));
    assert!(Prefix::DEFAULT.covers(&other));
}

#[test]
fn prefix_contains_addr() {
    let p: Prefix = "10.0.0.0/8".parse().unwrap();
    assert!(p.contains_addr(Ipv4Addr::new(10, 200, 1, 1)));
    assert!(!p.contains_addr(Ipv4Addr::new(11, 0, 0, 1)));
    assert!(Prefix::DEFAULT.contains_addr(Ipv4Addr::new(1, 2, 3, 4)));
}

#[test]
fn prefix_range_exact() {
    let r = PrefixRange::exact("10.0.0.0/8".parse().unwrap());
    assert!(r.matches(&"10.0.0.0/8".parse().unwrap()));
    assert!(!r.matches(&"10.1.0.0/16".parse().unwrap()));
}

#[test]
fn prefix_range_le() {
    // The paper's D1 entry: 10.0.0.0/8 le 24.
    let r: PrefixRange = "10.0.0.0/8 le 24".parse().unwrap();
    assert!(r.matches(&"10.0.0.0/8".parse().unwrap()));
    assert!(r.matches(&"10.1.0.0/16".parse().unwrap()));
    assert!(r.matches(&"10.1.2.0/24".parse().unwrap()));
    assert!(!r.matches(&"10.1.2.0/25".parse().unwrap()));
    assert!(!r.matches(&"11.0.0.0/16".parse().unwrap()));
}

#[test]
fn prefix_range_ge() {
    // The paper's D1 entry: 1.0.0.0/20 ge 24 (le defaults to 32).
    let r: PrefixRange = "1.0.0.0/20 ge 24".parse().unwrap();
    assert!(!r.matches(&"1.0.0.0/20".parse().unwrap()));
    assert!(r.matches(&"1.0.0.0/24".parse().unwrap()));
    assert!(r.matches(&"1.0.15.255/32".parse().unwrap()));
}

#[test]
fn prefix_range_ge_le() {
    let r: PrefixRange = "100.0.0.0/16 ge 16 le 23".parse().unwrap();
    assert!(r.matches(&"100.0.0.0/16".parse().unwrap()));
    assert!(r.matches(&"100.0.0.0/23".parse().unwrap()));
    assert!(!r.matches(&"100.0.0.0/24".parse().unwrap()));
}

#[test]
fn prefix_range_invalid_bounds() {
    assert!("10.0.0.0/8 ge 4".parse::<PrefixRange>().is_err());
    assert!("10.0.0.0/8 ge 24 le 16".parse::<PrefixRange>().is_err());
    assert!("10.0.0.0/8 le 33".parse::<PrefixRange>().is_err());
    assert!("10.0.0.0/8 eq 9".parse::<PrefixRange>().is_err());
}

#[test]
fn prefix_range_overlap() {
    let a: PrefixRange = "10.0.0.0/8 le 24".parse().unwrap();
    let b: PrefixRange = "10.1.0.0/16 le 32".parse().unwrap();
    let c: PrefixRange = "10.0.0.0/8 ge 25".parse().unwrap();
    assert!(a.overlaps(&b));
    assert!(b.overlaps(&a));
    assert!(!a.overlaps(&c), "length ranges are disjoint");
}

#[test]
fn prefix_range_display_roundtrip() {
    for s in [
        "10.0.0.0/8",
        "10.0.0.0/8 le 24",
        "1.0.0.0/20 ge 24",
        "100.0.0.0/16 ge 17 le 23",
        // Regression: ge N le N used to print as a bare "ge N", widening
        // the upper bound to 32 on re-parse.
        "10.0.0.0/8 ge 24 le 24",
        "10.0.0.0/8 ge 9 le 9",
    ] {
        let r: PrefixRange = s.parse().unwrap();
        let printed = r.to_string();
        let reparsed: PrefixRange = printed.parse().unwrap();
        assert_eq!(r, reparsed, "{s} -> {printed}");
    }
}

#[test]
fn community_parse_and_display() {
    let c: Community = "300:3".parse().unwrap();
    assert_eq!(c, Community::new(300, 3));
    assert_eq!(c.to_string(), "300:3");
    assert_eq!(c.subject(), "300:3");
    assert!("300".parse::<Community>().is_err());
    assert!("70000:1".parse::<Community>().is_err());
    assert!("1:70000".parse::<Community>().is_err());
    assert!("a:b".parse::<Community>().is_err());
}

#[test]
fn aspath_basics() {
    let p = AsPath::from_asns(vec![10, 20, 32]);
    assert_eq!(p.len(), 3);
    assert_eq!(p.origin_as(), Some(32));
    assert_eq!(p.subject(), "10 20 32");
    assert!(p.contains(20));
    assert!(!p.contains(99));
    let q = p.prepend(7);
    assert_eq!(q.subject(), "7 10 20 32");
    assert_eq!(AsPath::empty().subject(), "");
    assert_eq!(AsPath::empty().origin_as(), None);
}

#[test]
fn aspath_parse() {
    let p: AsPath = "10 20 32".parse().unwrap();
    assert_eq!(p.asns(), &[10, 20, 32]);
    let empty: AsPath = "".parse().unwrap();
    assert!(empty.is_empty());
    assert!("10 x".parse::<AsPath>().is_err());
}

#[test]
fn protocol_matching() {
    assert!(Protocol::Ip.matches(Protocol::Tcp));
    assert!(Protocol::Ip.matches(Protocol::Icmp));
    assert!(Protocol::Tcp.matches(Protocol::Tcp));
    assert!(!Protocol::Tcp.matches(Protocol::Udp));
}

#[test]
fn protocol_codes_roundtrip() {
    for p in [Protocol::Tcp, Protocol::Udp, Protocol::Icmp] {
        assert_eq!(Protocol::from_code(p.code()), p);
    }
}

#[test]
fn port_range_semantics() {
    assert!(PortRange::ANY.contains(0));
    assert!(PortRange::ANY.contains(65535));
    assert!(PortRange::ANY.is_any());
    let r = PortRange::eq(443);
    assert!(r.contains(443));
    assert!(!r.contains(444));
    let r = PortRange::new(1000, 2000);
    assert!(r.overlaps(&PortRange::new(1500, 3000)));
    assert!(!r.overlaps(&PortRange::new(2001, 3000)));
    assert_eq!(r.to_string(), "range 1000 2000");
    assert_eq!(PortRange::eq(80).to_string(), "eq 80");
    assert_eq!(PortRange::ANY.to_string(), "any");
}

#[test]
#[should_panic(expected = "invalid port range")]
fn port_range_rejects_inverted() {
    PortRange::new(2, 1);
}

#[test]
fn packet_display() {
    let p = Packet::tcp(
        Ipv4Addr::new(1, 1, 1, 1),
        1234,
        Ipv4Addr::new(2, 2, 2, 2),
        80,
    );
    assert_eq!(p.to_string(), "tcp 1.1.1.1:1234 -> 2.2.2.2:80");
}

#[test]
fn route_defaults_match_paper() {
    let r = BgpRoute::with_defaults("100.0.0.0/16".parse().unwrap());
    assert_eq!(r.local_pref, 100);
    assert_eq!(r.metric, 0);
    assert_eq!(r.next_hop, Ipv4Addr::new(0, 0, 0, 1));
    assert_eq!(r.tag, 0);
    assert_eq!(r.weight, 0);
}

#[test]
fn route_display_matches_paper_layout() {
    let r = BgpRoute::with_defaults("100.0.0.0/16".parse().unwrap())
        .path(&[32])
        .community("300:3".parse().unwrap());
    let s = r.to_string();
    assert!(s.contains("Network: 100.0.0.0/16"), "{s}");
    assert!(
        s.contains("AS Path: [{ \"asns\": [32], \"confederation\": false }]"),
        "{s}"
    );
    assert!(s.contains("Communities: [\"300:3\"]"), "{s}");
    assert!(s.contains("Local Preference: 100"), "{s}");
    assert!(s.contains("Next Hop IP: 0.0.0.1"), "{s}");
}

#[test]
fn route_builder_chain() {
    let r = BgpRoute::with_defaults("10.0.0.0/8".parse().unwrap())
        .path(&[1, 2])
        .lp(300)
        .med(55)
        .community(Community::new(65000, 1))
        .community(Community::new(300, 3));
    assert_eq!(r.local_pref, 300);
    assert_eq!(r.metric, 55);
    assert_eq!(r.communities.len(), 2);
    // Sorted display.
    assert_eq!(r.communities_display(), "[\"300:3\", \"65000:1\"]");
}

mod properties {
    use super::*;
    use clarify_testkit::{gens, prop_assert, prop_assert_eq, property};

    property! {
        /// Covers is a partial order compatible with address containment.
        fn covers_transitive(
            a in gens::ints(0u32..=u32::MAX),
            la in gens::ints(0u8..=32),
            lb in gens::ints(0u8..=32),
            lc in gens::ints(0u8..=32),
        ) {
            let mut ls = [la, lb, lc];
            ls.sort_unstable();
            let p1 = Prefix::from_u32(a, ls[0]);
            let p2 = Prefix::from_u32(a, ls[1]);
            let p3 = Prefix::from_u32(a, ls[2]);
            prop_assert!(p1.covers(&p2));
            prop_assert!(p2.covers(&p3));
            prop_assert!(p1.covers(&p3));
        }

        /// A range built from any prefix matches that exact prefix iff the
        /// bounds admit its length.
        fn range_matches_self(addr in gens::ints(0u32..=u32::MAX), len in gens::ints(0u8..=32)) {
            let p = Prefix::from_u32(addr, len);
            prop_assert!(PrefixRange::exact(p).matches(&p));
        }

        /// Display/parse round-trip for prefixes.
        fn prefix_roundtrip(addr in gens::ints(0u32..=u32::MAX), len in gens::ints(0u8..=32)) {
            let p = Prefix::from_u32(addr, len);
            let q: Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, q);
        }

        /// Community subject strings always re-parse to the same community.
        fn community_roundtrip(asn in gens::ints(0u16..=u16::MAX), value in gens::ints(0u16..=u16::MAX)) {
            let c = Community::new(asn, value);
            let d: Community = c.subject().parse().unwrap();
            prop_assert_eq!(c, d);
        }

        /// AS-path subject strings round-trip.
        fn aspath_roundtrip(asns in gens::vec_of(gens::ints(0u32..=65535), 0, 5)) {
            let p = AsPath::from_asns(asns);
            let q: AsPath = p.subject().parse().unwrap();
            prop_assert_eq!(p, q);
        }
    }
}

mod range_display_properties {
    use super::*;
    use clarify_testkit::{gens, prop_assert_eq, property};

    property! {
        /// Display/parse round-trip for *every* representable range.
        fn any_range_roundtrips(
            addr in gens::ints(0u32..=u32::MAX),
            len in gens::ints(0u8..=32),
            a in gens::ints(0u8..=32),
            b in gens::ints(0u8..=32),
        ) {
            let prefix = Prefix::from_u32(addr, len);
            let (mut lo, mut hi) = (a.min(b), a.max(b));
            lo = lo.max(len);
            hi = hi.max(lo);
            let r = PrefixRange { prefix, min_len: lo, max_len: hi };
            let printed = r.to_string();
            let reparsed: PrefixRange = printed.parse().unwrap();
            prop_assert_eq!(r, reparsed, "printed as {}", printed);
        }
    }
}
