//! Domain types shared by every Clarify crate.
//!
//! These are the *concrete* values that flow through configurations and
//! analyses: IPv4 prefixes and prefix ranges, BGP communities and AS paths,
//! route advertisements, and packets. The symbolic layer
//! (`clarify-analysis`) mirrors each field with BDD variables; witnesses it
//! extracts decode back into these types, so `Display` output here is what
//! users see in differential examples.
//!
//! ```
//! use clarify_nettypes::{Prefix, PrefixRange};
//!
//! let range: PrefixRange = "10.0.0.0/8 le 24".parse().unwrap();
//! assert!(range.matches(&"10.1.0.0/16".parse::<Prefix>().unwrap()));
//! assert!(!range.matches(&"10.1.2.0/30".parse::<Prefix>().unwrap()));
//! ```

#![warn(missing_docs)]

mod aspath;
mod community;
mod packet;
mod prefix;
mod route;

pub use aspath::AsPath;
pub use community::Community;
pub use packet::{Packet, PortRange, Protocol};
pub use prefix::{Prefix, PrefixRange};
pub use route::BgpRoute;

/// Error type for all textual parsing in this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What failed to parse and why.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests;
