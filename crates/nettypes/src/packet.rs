//! Packets and the match dimensions of extended ACLs.

use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::ParseError;

/// The protocols an extended ACL can match on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Protocol {
    /// Any IP protocol (`ip` keyword).
    Ip,
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
    /// Internet Control Message Protocol.
    Icmp,
}

impl Protocol {
    /// Whether a concrete packet protocol satisfies this match value
    /// (`Ip` matches everything).
    pub fn matches(&self, concrete: Protocol) -> bool {
        *self == Protocol::Ip || *self == concrete
    }

    /// A small stable code used by the symbolic encoding (2 bits).
    pub fn code(&self) -> u8 {
        match self {
            Protocol::Ip => 0, // only used as a match wildcard, never concrete
            Protocol::Tcp => 1,
            Protocol::Udp => 2,
            Protocol::Icmp => 3,
        }
    }

    /// Inverse of [`Protocol::code`] for witness decoding; code 0 decodes
    /// to TCP (an arbitrary concrete representative of "any").
    pub fn from_code(code: u8) -> Protocol {
        match code & 0b11 {
            1 => Protocol::Tcp,
            2 => Protocol::Udp,
            3 => Protocol::Icmp,
            _ => Protocol::Tcp,
        }
    }

    /// The IOS keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            Protocol::Ip => "ip",
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
            Protocol::Icmp => "icmp",
        }
    }
}

impl FromStr for Protocol {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        match s {
            "ip" => Ok(Protocol::Ip),
            "tcp" => Ok(Protocol::Tcp),
            "udp" => Ok(Protocol::Udp),
            "icmp" => Ok(Protocol::Icmp),
            other => Err(ParseError::new(format!("unknown protocol '{other}'"))),
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// An inclusive L4 port range; `0..=65535` means "any port".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PortRange {
    /// Lowest matching port.
    pub lo: u16,
    /// Highest matching port.
    pub hi: u16,
}

impl PortRange {
    /// The full range (matches any port).
    pub const ANY: PortRange = PortRange {
        lo: 0,
        hi: u16::MAX,
    };

    /// A single port (`eq N`).
    pub fn eq(port: u16) -> PortRange {
        PortRange { lo: port, hi: port }
    }

    /// An explicit range; panics if `lo > hi`.
    pub fn new(lo: u16, hi: u16) -> PortRange {
        assert!(lo <= hi, "invalid port range {lo}..{hi}");
        PortRange { lo, hi }
    }

    /// Whether `port` falls inside.
    pub fn contains(&self, port: u16) -> bool {
        self.lo <= port && port <= self.hi
    }

    /// Whether this is the unconstrained range.
    pub fn is_any(&self) -> bool {
        self.lo == 0 && self.hi == u16::MAX
    }

    /// Whether the two ranges share a port.
    pub fn overlaps(&self, other: &PortRange) -> bool {
        self.lo.max(other.lo) <= self.hi.min(other.hi)
    }
}

impl std::fmt::Display for PortRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_any() {
            write!(f, "any")
        } else if self.lo == self.hi {
            write!(f, "eq {}", self.lo)
        } else {
            write!(f, "range {} {}", self.lo, self.hi)
        }
    }
}

/// A concrete packet header, the input space of ACL analysis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Packet {
    /// Source address.
    pub src_ip: Ipv4Addr,
    /// Destination address.
    pub dst_ip: Ipv4Addr,
    /// L4 protocol (never [`Protocol::Ip`], which is match-only).
    pub protocol: Protocol,
    /// Source port (0 for ICMP).
    pub src_port: u16,
    /// Destination port (0 for ICMP).
    pub dst_port: u16,
}

impl Packet {
    /// A TCP packet with the given endpoints.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Packet {
        Packet {
            src_ip,
            dst_ip,
            protocol: Protocol::Tcp,
            src_port,
            dst_port,
        }
    }
}

impl std::fmt::Display for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.protocol, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}
