//! BGP AS paths.

use std::str::FromStr;

use crate::ParseError;

/// A BGP AS path: the sequence of autonomous systems a route traversed,
/// most recent hop first (so the last element is the originating AS).
///
/// Confederation segments and AS sets are out of scope; the paper's own
/// examples use plain sequences (`"confederation": false`).
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AsPath {
    asns: Vec<u32>,
}

impl AsPath {
    /// An empty path (locally originated route).
    pub fn empty() -> AsPath {
        AsPath::default()
    }

    /// Builds a path from hops, most recent first.
    pub fn from_asns(asns: Vec<u32>) -> AsPath {
        AsPath { asns }
    }

    /// The hops, most recent first.
    pub fn asns(&self) -> &[u32] {
        &self.asns
    }

    /// Number of hops (BGP best-path compares this).
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// The originating AS (last hop), if any.
    pub fn origin_as(&self) -> Option<u32> {
        self.asns.last().copied()
    }

    /// Prepends a hop, as a router does when advertising to an eBGP peer.
    pub fn prepend(&self, asn: u32) -> AsPath {
        let mut asns = Vec::with_capacity(self.asns.len() + 1);
        asns.push(asn);
        asns.extend_from_slice(&self.asns);
        AsPath { asns }
    }

    /// Whether the path already contains `asn` (loop prevention).
    pub fn contains(&self, asn: u32) -> bool {
        self.asns.contains(&asn)
    }

    /// The space-separated rendering Cisco regexes are matched against,
    /// e.g. `"10 20 32"`. The empty path renders as an empty string.
    pub fn subject(&self) -> String {
        self.asns
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl FromStr for AsPath {
    type Err = ParseError;

    /// Parses a space-separated list of AS numbers; empty input is the
    /// empty path.
    fn from_str(s: &str) -> Result<Self, ParseError> {
        let mut asns = Vec::new();
        for tok in s.split_whitespace() {
            let asn: u32 = tok
                .parse()
                .map_err(|_| ParseError::new(format!("bad AS number '{tok}'")))?;
            asns.push(asn);
        }
        Ok(AsPath { asns })
    }
}

impl std::fmt::Display for AsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.subject())
    }
}

impl std::fmt::Debug for AsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}
