use super::*;
use clarify_testkit::{gens, prop_assert_eq, property, Source};

fn splat(x: u64) -> u64 {
    // splitmix64-style mixer: cheap, deterministic, input-sensitive.
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn empty_and_singleton() {
    let empty: Vec<u64> = Vec::new();
    assert_eq!(par_map(&empty, |&x| x + 1), Vec::<u64>::new());
    assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
}

#[test]
fn indexed_matches_enumerate() {
    let items: Vec<u64> = (0..100).collect();
    let got = par_map_indexed(&items, |i, &x| i as u64 * 1000 + x);
    let want: Vec<u64> = items
        .iter()
        .enumerate()
        .map(|(i, &x)| i as u64 * 1000 + x)
        .collect();
    assert_eq!(got, want);
}

#[test]
fn init_runs_at_most_once_per_worker() {
    let inits = AtomicUsize::new(0);
    let items: Vec<u64> = (0..64).collect();
    let got = par_map_init_with_threads(
        4,
        &items,
        || {
            inits.fetch_add(1, Ordering::SeqCst);
            0u64
        },
        |acc, _, &x| {
            *acc = acc.wrapping_add(x);
            splat(x)
        },
    );
    assert_eq!(got, items.iter().map(|&x| splat(x)).collect::<Vec<_>>());
    let n = inits.load(Ordering::SeqCst);
    assert!((1..=4).contains(&n), "init ran {n} times");
}

#[test]
fn panic_propagates_with_first_payload() {
    let items: Vec<u64> = (0..200).collect();
    let caught = panic::catch_unwind(AssertUnwindSafe(|| {
        par_map_init_with_threads(
            4,
            &items,
            || (),
            |(), _, &x| {
                if x >= 50 {
                    panic!("boom at {x}");
                }
                x
            },
        )
    }));
    let payload = caught.expect_err("a worker panic must reach the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.starts_with("boom at"), "unexpected payload: {msg:?}");
}

#[test]
fn parse_threads_accepts_positive_integers_only() {
    assert_eq!(parse_threads("8"), Some(8));
    assert_eq!(parse_threads(" 3 "), Some(3));
    assert_eq!(parse_threads("0"), None);
    assert_eq!(parse_threads(""), None);
    assert_eq!(parse_threads("-2"), None);
    assert_eq!(parse_threads("many"), None);
}

#[test]
fn current_threads_honors_override() {
    // The override is process-global; this is the only test that touches
    // it, and it restores the unset state before returning.
    set_threads(3);
    assert_eq!(current_threads(), 3);
    set_threads(0);
    assert!(current_threads() >= 1);
}

fn arb_workload(g: &mut Source) -> Vec<u64> {
    gens::vec_of(gens::ints(0u64..=u64::MAX), 0, 300)(g)
}

property! {
    /// The tentpole determinism contract: `par_map` output equals the
    /// serial `map` for random workloads at every pool size.
    fn par_map_equals_serial_map(items in arb_workload, threads in gens::ints(1usize..=9)) {
        let serial: Vec<u64> = items.iter().map(|&x| splat(x)).collect();
        let parallel = par_map_init_with_threads(threads, &items, || (), |(), _, &x| splat(x));
        prop_assert_eq!(parallel, serial);
    }

    /// Worker-local state never leaks into results: a stateful fold used
    /// only as scratch yields the same per-item outputs at any pool size.
    fn par_map_init_matches_serial(items in arb_workload, threads in gens::ints(2usize..=8)) {
        let run = |t: usize| {
            par_map_init_with_threads(t, &items, || 0u64, |scratch, i, &x| {
                *scratch = scratch.wrapping_add(x); // history-dependent scratch...
                splat(x ^ i as u64) // ...but a history-free result
            })
        };
        prop_assert_eq!(run(threads), run(1));
    }
}
