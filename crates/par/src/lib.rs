//! `clarify-par` — a zero-dependency, `std::thread`-based scoped worker
//! pool for deterministic data parallelism.
//!
//! The disambiguator's per-candidate `compareRoutePolicies`-style symbolic
//! comparisons, the linter's per-object rule checks, and the E3/E4
//! population sweeps are all embarrassingly parallel: each unit of work
//! builds (or reuses) its own `Manager`-backed BDD space, so there is no
//! shared mutable state to contend over. This crate provides the one
//! primitive they all need — a parallel map over a slice that is
//! *byte-identical* to the serial map:
//!
//! - [`par_map`] / [`par_map_indexed`]: stateless parallel map.
//! - [`par_map_init`]: parallel map with worker-local state (one
//!   `RouteSpace`/`PacketSpace` per worker, reused across its items).
//!
//! # Determinism
//!
//! Results are collected in *input index order* regardless of which worker
//! computed them or in what order chunks were claimed, so the output `Vec`
//! is exactly `items.iter().map(f).collect()` whenever `f` itself is
//! deterministic per item. The callers in this workspace guarantee that by
//! keeping every `Manager` worker-local: ROBDD canonicity means witness
//! extraction depends only on the Boolean function and the fixed variable
//! order, never on manager history, so a fresh space per worker answers
//! identically to a shared space.
//!
//! # Thread count
//!
//! Resolution order: programmatic override ([`set_threads`], used by the
//! CLIs' `--threads` flag) > the `CLARIFY_THREADS` environment variable >
//! [`std::thread::available_parallelism`]. With one thread the map runs
//! inline on the caller's thread — no pool, no synchronization.
//!
//! # Panics
//!
//! A panic in `f` is caught on the worker, the pool drains, and the
//! payload of the panic with the *smallest input index* is re-raised on
//! the caller via [`std::panic::resume_unwind`] — so a panicking workload
//! fails with the same (first) payload serial code would.

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets a process-wide thread-count override (the CLIs' `--threads` flag).
///
/// Passing 0 clears the override, restoring `CLARIFY_THREADS` /
/// `available_parallelism` resolution.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// Parses a `CLARIFY_THREADS`-style value: a positive decimal integer.
///
/// Returns `None` for anything else (empty, zero, garbage), in which case
/// the resolver falls through to the next source.
pub fn parse_threads(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Resolves the worker-pool size: [`set_threads`] override, then the
/// `CLARIFY_THREADS` environment variable, then
/// [`std::thread::available_parallelism`] (1 if undetectable).
pub fn current_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(s) = std::env::var("CLARIFY_THREADS") {
        if let Some(n) = parse_threads(&s) {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel map preserving input order: `par_map(xs, f)` returns exactly
/// `xs.iter().map(f).collect()`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_init(items, || (), |(), _, item| f(item))
}

/// Parallel map with the input index: returns
/// `xs.iter().enumerate().map(|(i, x)| f(i, x)).collect()`.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_init(items, || (), |(), i, item| f(i, item))
}

/// Parallel map with worker-local state.
///
/// Each worker calls `init()` once (lazily, on its first item) and passes
/// the state mutably to `f` for every item it processes — the shape the
/// disambiguators need to build one `Manager`-backed space per worker and
/// reuse it across a chunk. Equivalent to
/// `{ let mut s = init(); xs.iter().enumerate().map(|(i, x)| f(&mut s, i, x)).collect() }`
/// whenever `f`'s per-item result does not depend on the state's history
/// (which ROBDD canonicity guarantees for the spaces used here).
pub fn par_map_init<T, S, R, FI, F>(items: &[T], init: FI, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    par_map_init_with_threads(current_threads(), items, init, f)
}

/// [`par_map_init`] with an explicit thread count (tests and benches; the
/// public entry points resolve the count via [`current_threads`]).
pub fn par_map_init_with_threads<T, S, R, FI, F>(
    threads: usize,
    items: &[T],
    init: FI,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let len = items.len();
    let threads = threads.clamp(1, len.max(1));
    let obs = clarify_obs::global();
    obs.counter("par.maps").incr();
    obs.counter("par.items").add(len as u64);
    if threads == 1 || len <= 1 {
        // Inline serial path: no pool, natural panic propagation. This is
        // also the reference implementation the parallel path must match.
        obs.counter("par.inline_runs").incr();
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }
    obs.counter("par.pool_runs").incr();
    let _pool_span = obs.span("par_map");

    // Chunked distribution: workers claim fixed-size chunks from a shared
    // atomic counter. ~4 chunks per worker balances load against counter
    // traffic for the skewed per-item costs BDD work produces.
    let chunk = len.div_ceil(threads * 4).max(1);
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);

    let mut slots: Vec<(usize, R)> = Vec::with_capacity(len);
    let mut first_panic: Option<(usize, Box<dyn Any + Send>)> = None;

    std::thread::scope(|scope| {
        let worker = || {
            let mut state: Option<S> = None;
            let mut local: Vec<(usize, R)> = Vec::new();
            let mut caught: Option<(usize, Box<dyn Any + Send>)> = None;
            'claim: while !poisoned.load(Ordering::Relaxed) {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                for (i, item) in items.iter().enumerate().take(end).skip(start) {
                    let state = state.get_or_insert_with(&init);
                    match panic::catch_unwind(AssertUnwindSafe(|| f(state, i, item))) {
                        Ok(r) => local.push((i, r)),
                        Err(payload) => {
                            poisoned.store(true, Ordering::Relaxed);
                            caught = Some((i, payload));
                            break 'claim;
                        }
                    }
                }
            }
            (local, caught)
        };

        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
        for handle in handles {
            // Workers never unwind (panics are caught above), so join()
            // only fails if the runtime kills a thread; treat that as a
            // panic at an index past every real one.
            let (local, caught) = handle
                .join()
                .unwrap_or_else(|payload| (Vec::new(), Some((usize::MAX, payload))));
            slots.extend(local);
            if let Some((i, payload)) = caught {
                match &first_panic {
                    Some((j, _)) if *j <= i => {}
                    _ => first_panic = Some((i, payload)),
                }
            }
        }
    });

    if let Some((_, payload)) = first_panic {
        panic::resume_unwind(payload);
    }

    debug_assert_eq!(slots.len(), len);
    slots.sort_unstable_by_key(|&(i, _)| i);
    slots.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests;
