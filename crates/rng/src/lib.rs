//! Seedable pseudo-random number generation with no external dependencies.
//!
//! The workspace's randomized components — the workload population
//! generators, the fault-injecting LLM backend, and the benches — need a
//! small, reproducible PRNG, not a cryptographic one. This crate provides
//! [splitmix64] (for seeding) and [xoshiro256**] (the workhorse), exposed
//! behind a [`Rng`] trait shaped like the subset of `rand::Rng` the repo
//! actually uses: `gen_range`, `gen_bool`, `gen`, `shuffle`, `choose`, and
//! `seed_from_u64` / `from_seed` construction.
//!
//! Determinism contract (DESIGN.md "Determinism"): the same seed always
//! produces the same stream, on every platform, forever. The generators
//! here are pinned algorithms with published reference outputs, so that
//! contract survives toolchain upgrades — unlike a third-party crate whose
//! minor versions may legally change streams.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256**]: https://prng.di.unimi.it/xoshiro256starstar.c

#![warn(missing_docs)]

/// The raw 64-bit generator interface: everything else is derived.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Sebastiano Vigna's splitmix64: a tiny counter-based generator used to
/// expand a single `u64` seed into the larger xoshiro state (its intended
/// role) and as a standalone generator for throwaway streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's general-purpose generator. 256 bits of
/// state, period 2^256 − 1, passes BigCrush; equidistributed enough for
/// workload synthesis and fault injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's default seedable generator (the role `rand::rngs::StdRng`
/// played before the zero-dependency port).
pub type StdRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state by running splitmix64, the seeding
    /// procedure recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Constructs a generator from raw state bytes (little-endian words).
    /// An all-zero state is a fixed point of xoshiro, so it is re-seeded
    /// through splitmix64 instead.
    pub fn from_seed(seed: [u8; 32]) -> Xoshiro256StarStar {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            return Xoshiro256StarStar::seed_from_u64(0);
        }
        Xoshiro256StarStar { s }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from an inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi]` (both inclusive) from `rng`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u128) - (lo as u128) + 1;
                if span == 0 {
                    // Full u128 span is impossible for <= 64-bit types, but
                    // the widest full range still needs the raw draw.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128 + 1) as u128;
                ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`]: `lo..hi` and `lo..=hi`.
pub trait SampleRange<T> {
    /// The inclusive `(lo, hi)` bounds. Panics on an empty range.
    fn inclusive_bounds(self) -> (T, T);
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn inclusive_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "gen_range on empty range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn inclusive_bounds(self) -> ($t, $t) {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                (lo, hi)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "uniform over the whole domain" distribution,
/// supporting `rng.gen::<T>()`.
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The convenience surface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        let (lo, hi) = range.inclusive_bounds();
        T::sample_inclusive(lo, hi, self)
    }

    /// Draws one value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// Fisher–Yates shuffles `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if `slice` is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests;
