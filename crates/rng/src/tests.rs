use crate::{Rng, RngCore, SplitMix64, StdRng, Xoshiro256StarStar};

#[test]
fn splitmix64_matches_reference_vector() {
    // First outputs of the reference splitmix64.c with seed 0; the same
    // vector is used by numpy and rand_xoshiro to pin the algorithm.
    let mut sm = SplitMix64::new(0);
    assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
}

#[test]
fn xoshiro_matches_reference_vector() {
    // xoshiro256** from state [1, 2, 3, 4]; the first three outputs are
    // derivable by hand from the reference algorithm (and match the
    // published rand_xoshiro vector).
    let mut seed = [0u8; 32];
    seed[0] = 1;
    seed[8] = 2;
    seed[16] = 3;
    seed[24] = 4;
    let mut rng = Xoshiro256StarStar::from_seed(seed);
    assert_eq!(rng.next_u64(), 11520);
    assert_eq!(rng.next_u64(), 0);
    assert_eq!(rng.next_u64(), 1509978240);
}

#[test]
fn same_seed_same_stream() {
    let mut a = StdRng::seed_from_u64(42);
    let mut b = StdRng::seed_from_u64(42);
    for _ in 0..100 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    let mut c = StdRng::seed_from_u64(43);
    assert_ne!(
        (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
        (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
    );
}

#[test]
fn zero_state_is_reseeded() {
    let mut rng = Xoshiro256StarStar::from_seed([0; 32]);
    // An all-zero xoshiro state would emit zeros forever.
    assert!((0..4).any(|_| rng.next_u64() != 0));
}

#[test]
fn gen_range_stays_in_bounds() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..1000 {
        let v = rng.gen_range(11u8..200);
        assert!((11..200).contains(&v));
        let w = rng.gen_range(1..=20);
        assert!((1..=20).contains(&w));
        let s: i64 = rng.gen_range(-5i64..=5);
        assert!((-5..=5).contains(&s));
    }
    // Degenerate one-value ranges work.
    assert_eq!(rng.gen_range(9usize..=9), 9);
}

#[test]
fn gen_range_covers_small_domains() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut seen = [false; 6];
    for _ in 0..200 {
        seen[rng.gen_range(0usize..6)] = true;
    }
    assert!(seen.iter().all(|&s| s), "{seen:?}");
}

#[test]
fn full_width_ranges_do_not_overflow() {
    let mut rng = StdRng::seed_from_u64(3);
    let _: u64 = rng.gen_range(0u64..=u64::MAX);
    let _: u32 = rng.gen_range(0u32..=u32::MAX);
    let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
}

#[test]
fn f64_is_unit_interval() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..1000 {
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}

#[test]
fn gen_bool_extremes() {
    let mut rng = StdRng::seed_from_u64(5);
    assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    assert!((0..100).all(|_| rng.gen_bool(1.0)));
}

#[test]
fn shuffle_is_a_permutation() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut v: Vec<u32> = (0..50).collect();
    rng.shuffle(&mut v);
    let mut sorted = v.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
}

#[test]
fn choose_behaviour() {
    let mut rng = StdRng::seed_from_u64(9);
    assert_eq!(rng.choose::<u8>(&[]), None);
    let opts = [1, 2, 3];
    for _ in 0..20 {
        assert!(opts.contains(rng.choose(&opts).unwrap()));
    }
}
