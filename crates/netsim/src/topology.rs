//! The topology file format: a plain-text description of routers,
//! originations, and per-neighbor sessions that instantiates into a
//! [`Network`] plus the per-router source maps the network linter needs.
//!
//! The format is line-oriented, like the IOS subset `clarify-netconfig`
//! parses; `!` and `#` start comments and blank lines are skipped:
//!
//! ```text
//! router R1 asn 65001 config r1.cfg
//!   originate 203.0.113.0/24
//!   neighbor ISP1 import ISP_IN export ISP_OUT role provider
//!   neighbor DC1 import FROM_DC role customer
//! router ISP1 asn 100
//!   originate 8.8.0.0/16
//!   neighbor R1 role customer
//! ```
//!
//! * `router NAME asn N [config PATH]` opens a router block; `originate`
//!   and `neighbor` lines attach to the most recent one. `PATH` names the
//!   router's configuration file, resolved by the loader callback (the
//!   CLIs resolve it relative to the topology file).
//! * `neighbor NAME [import MAP] [export MAP] [role ROLE]` declares one
//!   session; `ROLE` is what the *neighbor* is to this router
//!   (`provider`, `customer`, `peer`, or the default `internal`).
//! * Sessions must be declared from **both** ends, and declared roles
//!   must be converses (`provider` on one end ⇔ `customer` on the other);
//!   anything else is almost certainly a typo and is rejected.

use std::collections::BTreeMap;

use clarify_netconfig::{Config, SourceMap};
use clarify_nettypes::Prefix;

use crate::error::SimError;
use crate::network::{Network, NetworkBuilder, SessionRole};

/// One `neighbor` line of a router block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighborSpec {
    /// The neighbor router's name.
    pub name: String,
    /// Import route-map (in this router's configuration).
    pub import: Option<String>,
    /// Export route-map (in this router's configuration).
    pub export: Option<String>,
    /// What the neighbor is to this router.
    pub role: SessionRole,
    /// One-based topology-file line of the declaration.
    pub line: u32,
}

/// One `router` block of a topology file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterSpec {
    /// Router name (unique in the file).
    pub name: String,
    /// Autonomous system number.
    pub asn: u32,
    /// Configuration file path, as written in the file.
    pub config: Option<String>,
    /// Locally originated prefixes.
    pub originate: Vec<Prefix>,
    /// Declared sessions.
    pub neighbors: Vec<NeighborSpec>,
    /// One-based topology-file line of the `router` header.
    pub line: u32,
}

/// A parsed (but not yet loaded) topology file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopologySpec {
    /// The router blocks, in file order.
    pub routers: Vec<RouterSpec>,
}

/// A topology with every referenced configuration loaded and parsed:
/// the buildable [`Network`] plus the per-router side tables
/// (`clarify-lint`'s network pass needs source lines and raw text for
/// suppression directives).
#[derive(Clone, Debug, Default)]
pub struct LoadedTopology {
    /// The network, ready to lint or converge.
    pub network: Network,
    /// Per-router source maps for the routers that had a `config` file.
    pub spans: BTreeMap<String, SourceMap>,
    /// Per-router raw configuration text.
    pub sources: BTreeMap<String, String>,
    /// Per-router configuration path, as written in the topology file.
    pub config_paths: BTreeMap<String, String>,
}

fn err(line: u32, message: impl Into<String>) -> SimError {
    SimError::Topology {
        line,
        message: message.into(),
    }
}

impl TopologySpec {
    /// Parses a topology file.
    pub fn parse(text: &str) -> Result<TopologySpec, SimError> {
        let mut spec = TopologySpec::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = (idx + 1) as u32;
            let words: Vec<&str> = raw.split_whitespace().collect();
            let Some(&first) = words.first() else {
                continue;
            };
            if first.starts_with('!') || first.starts_with('#') {
                continue;
            }
            match first {
                "router" => {
                    // router NAME asn N [config PATH]
                    let (name, rest) = match &words[1..] {
                        [name, "asn", asn, rest @ ..] => {
                            let asn: u32 = asn
                                .parse()
                                .map_err(|_| err(line, format!("bad asn '{asn}'")))?;
                            (
                                RouterSpec {
                                    name: name.to_string(),
                                    asn,
                                    config: None,
                                    originate: Vec::new(),
                                    neighbors: Vec::new(),
                                    line,
                                },
                                rest,
                            )
                        }
                        _ => return Err(err(line, "expected 'router NAME asn N [config PATH]'")),
                    };
                    let mut router = name;
                    match rest {
                        [] => {}
                        ["config", path] => router.config = Some(path.to_string()),
                        _ => return Err(err(line, "trailing words after router header")),
                    }
                    if spec.routers.iter().any(|r| r.name == router.name) {
                        return Err(err(line, format!("duplicate router '{}'", router.name)));
                    }
                    spec.routers.push(router);
                }
                "originate" => {
                    let current = spec
                        .routers
                        .last_mut()
                        .ok_or_else(|| err(line, "'originate' before any 'router'"))?;
                    let [prefix] = &words[1..] else {
                        return Err(err(line, "expected 'originate PREFIX'"));
                    };
                    let prefix: Prefix = prefix
                        .parse()
                        .map_err(|_| err(line, format!("bad prefix '{prefix}'")))?;
                    current.originate.push(prefix);
                }
                "neighbor" => {
                    let current = spec
                        .routers
                        .last_mut()
                        .ok_or_else(|| err(line, "'neighbor' before any 'router'"))?;
                    let [name, options @ ..] = &words[1..] else {
                        return Err(err(
                            line,
                            "expected 'neighbor NAME [import MAP] [export MAP] [role ROLE]'",
                        ));
                    };
                    let mut n = NeighborSpec {
                        name: name.to_string(),
                        import: None,
                        export: None,
                        role: SessionRole::Internal,
                        line,
                    };
                    let mut opts = options.iter();
                    while let Some(&key) = opts.next() {
                        let Some(&value) = opts.next() else {
                            return Err(err(line, format!("'{key}' needs a value")));
                        };
                        match key {
                            "import" => n.import = Some(value.to_string()),
                            "export" => n.export = Some(value.to_string()),
                            "role" => {
                                n.role = SessionRole::parse(value)
                                    .ok_or_else(|| err(line, format!("unknown role '{value}'")))?
                            }
                            _ => return Err(err(line, format!("unknown neighbor option '{key}'"))),
                        }
                    }
                    if current.neighbors.iter().any(|o| o.name == n.name) {
                        return Err(err(
                            line,
                            format!(
                                "duplicate neighbor '{}' on router '{}'",
                                n.name, current.name
                            ),
                        ));
                    }
                    if n.name == current.name {
                        return Err(err(
                            line,
                            format!("router '{}' cannot neighbor itself", current.name),
                        ));
                    }
                    current.neighbors.push(n);
                }
                other => return Err(err(line, format!("unknown directive '{other}'"))),
            }
        }
        if spec.routers.is_empty() {
            return Err(err(0, "topology declares no routers"));
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Structural checks beyond per-line syntax: every neighbor exists,
    /// every session is declared from both ends, and declared roles are
    /// converses of each other.
    fn validate(&self) -> Result<(), SimError> {
        let by_name: BTreeMap<&str, &RouterSpec> =
            self.routers.iter().map(|r| (r.name.as_str(), r)).collect();
        for r in &self.routers {
            for n in &r.neighbors {
                let Some(other) = by_name.get(n.name.as_str()) else {
                    return Err(err(n.line, format!("unknown neighbor '{}'", n.name)));
                };
                let Some(back) = other.neighbors.iter().find(|o| o.name == r.name) else {
                    return Err(err(
                        n.line,
                        format!(
                            "router '{}' does not declare neighbor '{}' back",
                            n.name, r.name
                        ),
                    ));
                };
                if back.role != n.role.converse() {
                    return Err(err(
                        n.line,
                        format!(
                            "role mismatch on session {}–{}: '{}' here requires '{}' on \
                             router '{}', found '{}'",
                            r.name,
                            n.name,
                            n.role,
                            n.role.converse(),
                            n.name,
                            back.role
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// The distinct configuration paths referenced, in file order.
    pub fn config_paths(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.routers {
            if let Some(p) = r.config.as_deref() {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Loads every referenced configuration through `load` (path ↦ file
    /// contents), parses them with spans, and builds the network. Routers
    /// without a `config` line get an empty configuration.
    pub fn instantiate(
        &self,
        load: &mut dyn FnMut(&str) -> Result<String, String>,
    ) -> Result<LoadedTopology, SimError> {
        // Load and parse each distinct path once; routers may share one.
        let mut parsed: BTreeMap<&str, (Config, SourceMap, String)> = BTreeMap::new();
        for path in self.config_paths() {
            let text = load(path).map_err(|e| SimError::Topology {
                line: 0,
                message: format!("cannot load config '{path}': {e}"),
            })?;
            let (cfg, spans) = Config::parse_with_spans(&text).map_err(|e| SimError::Topology {
                line: 0,
                message: format!("config '{path}': {e}"),
            })?;
            parsed.insert(path, (cfg, spans, text));
        }

        let mut b = NetworkBuilder::new();
        let mut loaded = LoadedTopology::default();
        for r in &self.routers {
            let mut rb = b.router(&r.name, r.asn);
            for p in &r.originate {
                rb.originate(*p);
            }
            if let Some(path) = r.config.as_deref() {
                let (cfg, spans, text) = &parsed[path];
                rb.config(cfg.clone());
                loaded.spans.insert(r.name.clone(), spans.clone());
                loaded.sources.insert(r.name.clone(), text.clone());
                loaded.config_paths.insert(r.name.clone(), path.to_string());
            }
            for n in &r.neighbors {
                rb.session_with_role(&n.name, n.import.as_deref(), n.export.as_deref(), n.role);
            }
        }
        loaded.network = b.build()?;
        Ok(loaded)
    }
}
