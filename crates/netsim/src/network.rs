//! Topology model and builder.

use std::collections::BTreeMap;

use clarify_netconfig::Config;
use clarify_nettypes::{BgpRoute, Prefix};

use crate::error::SimError;

/// The business relationship a session's *neighbor* has to this router,
/// in Gao–Rexford terms. Valley-free analysis (`clarify-lint`'s L008
/// transit-leak check) derives its policy obligations from these roles:
/// routes learned from a [`SessionRole::Provider`] or [`SessionRole::Peer`]
/// must never be re-exported towards another provider or peer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SessionRole {
    /// Same organization (iBGP or a trusted confederation edge); routes
    /// flow freely and taint propagates across it.
    #[default]
    Internal,
    /// The neighbor is our customer: we sell it transit.
    Customer,
    /// The neighbor is a settlement-free peer.
    Peer,
    /// The neighbor is our provider: it sells us transit.
    Provider,
}

impl SessionRole {
    /// The keyword used in topology files (`role <keyword>`).
    pub fn keyword(&self) -> &'static str {
        match self {
            SessionRole::Internal => "internal",
            SessionRole::Customer => "customer",
            SessionRole::Peer => "peer",
            SessionRole::Provider => "provider",
        }
    }

    /// Parses a topology-file role keyword.
    pub fn parse(word: &str) -> Option<SessionRole> {
        match word {
            "internal" => Some(SessionRole::Internal),
            "customer" => Some(SessionRole::Customer),
            "peer" => Some(SessionRole::Peer),
            "provider" => Some(SessionRole::Provider),
            _ => None,
        }
    }

    /// The role the other end must declare for the pair to be consistent
    /// (provider ↔ customer; peer and internal are symmetric).
    pub fn converse(&self) -> SessionRole {
        match self {
            SessionRole::Internal => SessionRole::Internal,
            SessionRole::Customer => SessionRole::Provider,
            SessionRole::Peer => SessionRole::Peer,
            SessionRole::Provider => SessionRole::Customer,
        }
    }

    /// Whether routes learned over a session with this role are
    /// restricted by valley-free export (provider- or peer-learned).
    pub fn taints(&self) -> bool {
        matches!(self, SessionRole::Provider | SessionRole::Peer)
    }
}

impl std::fmt::Display for SessionRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One BGP session from a router's point of view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Session {
    /// Name of the neighbor router.
    pub neighbor: String,
    /// Route-map applied to routes received from the neighbor.
    pub import_policy: Option<String>,
    /// Route-map applied to routes advertised to the neighbor.
    pub export_policy: Option<String>,
    /// What the neighbor is to us (defaults to [`SessionRole::Internal`]).
    pub role: SessionRole,
}

/// A router: name, AS number, configuration, originations, sessions.
#[derive(Clone, Debug, Default)]
pub struct Router {
    /// Router name (unique in the network).
    pub name: String,
    /// Autonomous system number.
    pub asn: u32,
    /// The router's configuration namespace (route-maps and lists).
    pub config: Config,
    /// Locally originated prefixes.
    pub originated: Vec<Prefix>,
    /// Sessions, keyed implicitly by neighbor name.
    pub sessions: Vec<Session>,
}

impl Router {
    /// The session facing `neighbor`, if any.
    pub fn session(&self, neighbor: &str) -> Option<&Session> {
        self.sessions.iter().find(|s| s.neighbor == neighbor)
    }
}

/// One entry of a router's routing information base.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RibEntry {
    /// The best route for this prefix, after import processing.
    pub route: BgpRoute,
    /// Which neighbor it was learned from (`None` = locally originated).
    pub learned_from: Option<String>,
}

/// A built network, ready to converge. See [`NetworkBuilder`].
#[derive(Clone, Debug, Default)]
pub struct Network {
    pub(crate) routers: BTreeMap<String, Router>,
    pub(crate) ribs: BTreeMap<String, BTreeMap<Prefix, RibEntry>>,
    pub(crate) converged: bool,
}

impl Network {
    /// The routers, by name.
    pub fn routers(&self) -> impl Iterator<Item = &Router> {
        self.routers.values()
    }

    /// One router by name.
    pub fn router(&self, name: &str) -> Option<&Router> {
        self.routers.get(name)
    }

    /// Every `(router, session)` pair, in router-name order then session
    /// declaration order — the per-neighbor policy bindings the
    /// cross-device analyses iterate over.
    pub fn sessions(&self) -> impl Iterator<Item = (&Router, &Session)> {
        self.routers
            .values()
            .flat_map(|r| r.sessions.iter().map(move |s| (r, s)))
    }

    /// Whether the adjacency between `a` and `b` is up: both ends declare
    /// a session towards the other (one-sided declarations are ignored by
    /// propagation and by the network linter alike).
    pub fn adjacency_up(&self, a: &str, b: &str) -> bool {
        let declared =
            |x: &str, y: &str| self.routers.get(x).is_some_and(|r| r.session(y).is_some());
        declared(a, b) && declared(b, a)
    }

    /// Mutable access to a router's configuration (invalidates any prior
    /// convergence; call [`Network::converge`] again afterwards).
    pub fn router_config_mut(&mut self, name: &str) -> Option<&mut Config> {
        self.converged = false;
        self.routers.get_mut(name).map(|r| &mut r.config)
    }

    /// The RIB of a router (empty until [`Network::converge`] has run).
    pub fn rib(&self, router: &str) -> Option<&BTreeMap<Prefix, RibEntry>> {
        self.ribs.get(router)
    }

    /// The best route a router holds for a prefix.
    pub fn best_route(&self, router: &str, prefix: &Prefix) -> Option<&RibEntry> {
        self.ribs.get(router)?.get(prefix)
    }

    /// Whether `router` has any route for `prefix`.
    pub fn can_reach(&self, router: &str, prefix: &Prefix) -> bool {
        self.best_route(router, prefix).is_some()
    }

    /// The neighbor a router forwards towards for a prefix (`None` when
    /// unreachable or locally originated).
    pub fn next_hop_router(&self, router: &str, prefix: &Prefix) -> Option<&str> {
        self.best_route(router, prefix)?.learned_from.as_deref()
    }
}

/// Fluent builder for [`Network`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    routers: Vec<Router>,
}

/// Builder handle for one router (returned by [`NetworkBuilder::router`]).
pub struct RouterBuilder<'a> {
    router: &'a mut Router,
}

impl RouterBuilder<'_> {
    /// Adds a locally originated prefix.
    pub fn originate(&mut self, prefix: Prefix) -> &mut Self {
        self.router.originated.push(prefix);
        self
    }

    /// Installs the router's configuration namespace.
    pub fn config(&mut self, config: Config) -> &mut Self {
        self.router.config = config;
        self
    }

    /// Adds a session towards `neighbor` with optional import/export
    /// route-maps (named in this router's configuration).
    pub fn session(
        &mut self,
        neighbor: &str,
        import_policy: Option<&str>,
        export_policy: Option<&str>,
    ) -> &mut Self {
        self.session_with_role(
            neighbor,
            import_policy,
            export_policy,
            SessionRole::Internal,
        )
    }

    /// Like [`RouterBuilder::session`] but with an explicit neighbor role.
    pub fn session_with_role(
        &mut self,
        neighbor: &str,
        import_policy: Option<&str>,
        export_policy: Option<&str>,
        role: SessionRole,
    ) -> &mut Self {
        self.router.sessions.push(Session {
            neighbor: neighbor.to_string(),
            import_policy: import_policy.map(str::to_string),
            export_policy: export_policy.map(str::to_string),
            role,
        });
        self
    }
}

impl NetworkBuilder {
    /// An empty builder.
    pub fn new() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Adds (or revisits) a router and returns its builder handle.
    pub fn router(&mut self, name: &str, asn: u32) -> RouterBuilder<'_> {
        if let Some(pos) = self.routers.iter().position(|r| r.name == name) {
            return RouterBuilder {
                router: &mut self.routers[pos],
            };
        }
        self.routers.push(Router {
            name: name.to_string(),
            asn,
            ..Router::default()
        });
        let last = self.routers.len() - 1;
        RouterBuilder {
            router: &mut self.routers[last],
        }
    }

    /// Adds a policy-free bidirectional session between two routers.
    ///
    /// Fails with [`SimError::UnknownRouter`] if either endpoint has not
    /// been declared with [`NetworkBuilder::router`].
    pub fn link(&mut self, a: &str, b: &str) -> Result<&mut Self, SimError> {
        self.session_pair(a, b, None, None, None, None)
    }

    /// Adds a bidirectional session with per-direction policies:
    /// `a_import`/`a_export` are applied on router `a`, and symmetrically.
    ///
    /// Both routers must already have been declared with
    /// [`NetworkBuilder::router`]; an undeclared endpoint fails with
    /// [`SimError::UnknownRouter`] — a silent no-op would surface much
    /// later as a mysteriously missing adjacency. Neither side is
    /// modified on failure.
    pub fn session_pair(
        &mut self,
        a: &str,
        b: &str,
        a_import: Option<&str>,
        a_export: Option<&str>,
        b_import: Option<&str>,
        b_export: Option<&str>,
    ) -> Result<&mut Self, SimError> {
        self.session_pair_with_roles(
            a,
            b,
            a_import,
            a_export,
            b_import,
            b_export,
            SessionRole::Internal,
        )
    }

    /// Like [`NetworkBuilder::session_pair`] but declaring what `b` is to
    /// `a` (`b_role_to_a`); `a`'s role on `b`'s side is its converse.
    #[allow(clippy::too_many_arguments)]
    pub fn session_pair_with_roles(
        &mut self,
        a: &str,
        b: &str,
        a_import: Option<&str>,
        a_export: Option<&str>,
        b_import: Option<&str>,
        b_export: Option<&str>,
        b_role_to_a: SessionRole,
    ) -> Result<&mut Self, SimError> {
        let ra = self
            .routers
            .iter()
            .position(|r| r.name == a)
            .ok_or_else(|| SimError::UnknownRouter(a.to_string()))?;
        let rb = self
            .routers
            .iter()
            .position(|r| r.name == b)
            .ok_or_else(|| SimError::UnknownRouter(b.to_string()))?;
        self.routers[ra].sessions.push(Session {
            neighbor: b.to_string(),
            import_policy: a_import.map(str::to_string),
            export_policy: a_export.map(str::to_string),
            role: b_role_to_a,
        });
        self.routers[rb].sessions.push(Session {
            neighbor: a.to_string(),
            import_policy: b_import.map(str::to_string),
            export_policy: b_export.map(str::to_string),
            role: b_role_to_a.converse(),
        });
        Ok(self)
    }

    /// Validates and produces the network.
    pub fn build(self) -> Result<Network, SimError> {
        let mut routers: BTreeMap<String, Router> = BTreeMap::new();
        for r in self.routers {
            if routers.contains_key(&r.name) {
                return Err(SimError::DuplicateRouter(r.name));
            }
            routers.insert(r.name.clone(), r);
        }
        // Sessions must reference existing routers and referenced policies
        // must exist in the router's config.
        for r in routers.values() {
            for s in &r.sessions {
                if !routers.contains_key(&s.neighbor) {
                    return Err(SimError::UnknownRouter(s.neighbor.clone()));
                }
                for policy in [&s.import_policy, &s.export_policy].into_iter().flatten() {
                    if r.config.route_map(policy).is_none() {
                        return Err(SimError::Config {
                            router: r.name.clone(),
                            error: clarify_netconfig::ConfigError::NotFound {
                                kind: "route-map",
                                name: policy.clone(),
                            },
                        });
                    }
                }
            }
        }
        Ok(Network {
            routers,
            ribs: BTreeMap::new(),
            converged: false,
        })
    }
}

impl Network {
    /// The chain of routers traffic towards `prefix` traverses starting at
    /// `from`, ending at the router that originates it. `None` when the
    /// prefix is unreachable from `from` or a forwarding loop is detected
    /// (impossible after convergence, but checked defensively).
    pub fn path_to(&self, from: &str, prefix: &Prefix) -> Option<Vec<&str>> {
        let mut path: Vec<&str> = Vec::new();
        let mut cur = self.routers.get(from)?.name.as_str();
        loop {
            if path.contains(&cur) {
                return None; // loop
            }
            path.push(cur);
            match self.best_route(cur, prefix)?.learned_from.as_deref() {
                None => return Some(path),
                Some(next) => cur = self.routers.get(next)?.name.as_str(),
            }
        }
    }
}
