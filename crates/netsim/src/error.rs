//! Simulator errors.

use clarify_netconfig::ConfigError;

/// Everything that can go wrong building or running a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A session referenced a router that does not exist.
    UnknownRouter(String),
    /// Two routers share a name.
    DuplicateRouter(String),
    /// A session's policy referenced a route-map missing from the router's
    /// configuration, or evaluation failed.
    Config {
        /// The router whose configuration failed.
        router: String,
        /// The underlying error.
        error: ConfigError,
    },
    /// Propagation did not reach a fixed point within the round budget.
    NoConvergence {
        /// The budget that was exhausted.
        rounds: usize,
    },
    /// A topology file failed to parse, validate, or load.
    Topology {
        /// One-based topology-file line (0 when the error is not tied to
        /// a specific line, e.g. a config file that failed to load).
        line: u32,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownRouter(n) => write!(f, "unknown router '{n}'"),
            SimError::DuplicateRouter(n) => write!(f, "duplicate router '{n}'"),
            SimError::Config { router, error } => {
                write!(f, "configuration error on router '{router}': {error}")
            }
            SimError::NoConvergence { rounds } => {
                write!(f, "propagation did not converge within {rounds} rounds")
            }
            SimError::Topology { line: 0, message } => write!(f, "topology: {message}"),
            SimError::Topology { line, message } => {
                write!(f, "topology line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}
