use clarify_netconfig::Config;
use clarify_nettypes::Prefix;

use crate::{NetworkBuilder, SimError};

fn pfx(s: &str) -> Prefix {
    s.parse().unwrap()
}

#[test]
fn single_link_propagation() {
    let mut b = NetworkBuilder::new();
    b.router("A", 65001).originate(pfx("10.0.0.0/8"));
    b.router("B", 65002);
    b.link("A", "B").unwrap();
    let net = b.build().unwrap().converge().unwrap();
    let e = net.best_route("B", &pfx("10.0.0.0/8")).unwrap();
    assert_eq!(e.learned_from.as_deref(), Some("A"));
    assert_eq!(e.route.as_path.asns(), &[65001]);
    assert!(net.can_reach("A", &pfx("10.0.0.0/8")));
    assert_eq!(net.next_hop_router("B", &pfx("10.0.0.0/8")), Some("A"));
}

#[test]
fn multi_hop_prepends_each_as() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2);
    b.router("C", 3);
    b.link("A", "B").unwrap();
    b.link("B", "C").unwrap();
    let net = b.build().unwrap().converge().unwrap();
    let e = net.best_route("C", &pfx("10.0.0.0/8")).unwrap();
    assert_eq!(e.route.as_path.asns(), &[2, 1]);
}

#[test]
fn loop_prevention_drops_own_as() {
    // Triangle: A originates; C must not accept the route via a path that
    // already contains its own AS (simulate by B and C sharing an AS and a
    // detour; simpler: A-B-C-A triangle all different ASNs converges, and
    // no path ever contains a repeated ASN).
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2);
    b.router("C", 3);
    b.link("A", "B").unwrap();
    b.link("B", "C").unwrap();
    b.link("C", "A").unwrap();
    let net = b.build().unwrap().converge().unwrap();
    for r in ["A", "B", "C"] {
        let e = net.best_route(r, &pfx("10.0.0.0/8")).unwrap();
        let asns = e.route.as_path.asns();
        let mut dedup = asns.to_vec();
        dedup.dedup();
        assert_eq!(asns.len(), dedup.len(), "no repeated AS on {r}");
    }
    // C prefers the direct link to A (shorter path).
    assert_eq!(net.next_hop_router("C", &pfx("10.0.0.0/8")), Some("A"));
}

#[test]
fn split_horizon_no_echo() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2);
    b.link("A", "B").unwrap();
    let net = b.build().unwrap().converge().unwrap();
    // A's own route stays locally originated (not replaced by an echo).
    let e = net.best_route("A", &pfx("10.0.0.0/8")).unwrap();
    assert!(e.learned_from.is_none());
    assert!(e.route.as_path.is_empty());
}

#[test]
fn export_policy_filters() {
    let cfg = Config::parse(
        "ip prefix-list TEN seq 5 permit 10.0.0.0/8\nroute-map NO_TEN deny 10\n match ip address prefix-list TEN\nroute-map NO_TEN permit 20\n",
    )
    .unwrap();
    let mut b = NetworkBuilder::new();
    b.router("A", 1).config(cfg).originate(pfx("10.0.0.0/8"));
    b.router("A", 1).originate(pfx("20.0.0.0/8"));
    b.router("B", 2);
    b.session_pair("A", "B", None, Some("NO_TEN"), None, None)
        .unwrap();
    let net = b.build().unwrap().converge().unwrap();
    assert!(
        !net.can_reach("B", &pfx("10.0.0.0/8")),
        "filtered on export"
    );
    assert!(net.can_reach("B", &pfx("20.0.0.0/8")));
}

#[test]
fn import_policy_sets_local_pref_and_influences_choice() {
    // B hears 10/8 from A (direct) and from C (via A); import policy
    // raises local-pref on the C session, overriding path length.
    let cfg_b = Config::parse("route-map PREFER permit 10\n set local-preference 300\n").unwrap();
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2).config(cfg_b);
    b.router("C", 3);
    b.link("A", "C").unwrap();
    b.session_pair("B", "A", None, None, None, None).unwrap();
    b.session_pair("B", "C", Some("PREFER"), None, None, None)
        .unwrap();
    let net = b.build().unwrap().converge().unwrap();
    let e = net.best_route("B", &pfx("10.0.0.0/8")).unwrap();
    assert_eq!(e.learned_from.as_deref(), Some("C"), "local-pref 300 wins");
    assert_eq!(e.route.local_pref, 300);
}

#[test]
fn best_path_prefers_shorter_as_path() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2);
    b.router("C", 3);
    b.router("D", 4);
    b.link("A", "D").unwrap(); // direct: path length 1
    b.link("A", "B").unwrap();
    b.link("B", "C").unwrap();
    b.link("C", "D").unwrap(); // long way: length 3
    let net = b.build().unwrap().converge().unwrap();
    assert_eq!(net.next_hop_router("D", &pfx("10.0.0.0/8")), Some("A"));
}

#[test]
fn deterministic_tie_break_by_neighbor_name() {
    // Two equal-length paths to D; the lower neighbor name wins.
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2);
    b.router("C", 3);
    b.router("D", 4);
    b.link("A", "B").unwrap();
    b.link("A", "C").unwrap();
    b.link("B", "D").unwrap();
    b.link("C", "D").unwrap();
    let net = b.build().unwrap().converge().unwrap();
    assert_eq!(net.next_hop_router("D", &pfx("10.0.0.0/8")), Some("B"));
}

#[test]
fn local_pref_does_not_cross_as_boundaries() {
    let cfg_a = Config::parse("route-map LP permit 10\n set local-preference 400\n").unwrap();
    let mut b = NetworkBuilder::new();
    b.router("A", 1).config(cfg_a).originate(pfx("10.0.0.0/8"));
    b.router("B", 2);
    b.router("C", 3);
    // A exports with LP 400; crossing the AS boundary resets it to 100.
    b.session_pair("A", "B", None, Some("LP"), None, None)
        .unwrap();
    b.link("B", "C").unwrap();
    let net = b.build().unwrap().converge().unwrap();
    let e = net.best_route("B", &pfx("10.0.0.0/8")).unwrap();
    assert_eq!(e.route.local_pref, 100, "reset at eBGP boundary");
}

#[test]
fn unknown_router_in_session_rejected() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1).session("GHOST", None, None);
    assert!(matches!(
        b.build(),
        Err(SimError::UnknownRouter(n)) if n == "GHOST"
    ));
}

#[test]
fn missing_policy_rejected_at_build() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1).session("B", Some("NOPE"), None);
    b.router("B", 2).session("A", None, None);
    assert!(matches!(b.build(), Err(SimError::Config { .. })));
}

#[test]
fn duplicate_router_rejected() {
    // NetworkBuilder::router reuses an existing entry, so duplicates can
    // only arise through direct construction; the builder API cannot
    // produce them. Verify reuse instead.
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("A", 1).originate(pfx("20.0.0.0/8"));
    let net = b.build().unwrap();
    assert_eq!(net.router("A").unwrap().originated.len(), 2);
}

#[test]
fn one_way_session_does_not_come_up() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2);
    // Only A declares the session; B never does.
    b.router("A", 1).session("B", None, None);
    let net = b.build().unwrap().converge().unwrap();
    assert!(!net.can_reach("B", &pfx("10.0.0.0/8")));
}

#[test]
fn import_filter_blocks_transit() {
    // Classic no-transit: B refuses to re-export ISP routes between its
    // two providers by denying everything to one of them on export.
    let cfg_b = Config::parse("route-map BLOCK deny 10\n").unwrap();
    let mut b = NetworkBuilder::new();
    b.router("ISP1", 100).originate(pfx("8.0.0.0/8"));
    b.router("ISP2", 200).originate(pfx("9.0.0.0/8"));
    b.router("B", 2).config(cfg_b);
    b.session_pair("B", "ISP1", None, None, None, None).unwrap();
    b.session_pair("B", "ISP2", None, Some("BLOCK"), None, None)
        .unwrap();
    let net = b.build().unwrap().converge().unwrap();
    assert!(net.can_reach("B", &pfx("8.0.0.0/8")));
    assert!(net.can_reach("B", &pfx("9.0.0.0/8")));
    assert!(
        !net.can_reach("ISP2", &pfx("8.0.0.0/8")),
        "B must not provide transit to ISP2"
    );
    // ISP1 still hears ISP2's prefix through B (no export filter there).
    assert!(net.can_reach("ISP1", &pfx("9.0.0.0/8")));
}

#[test]
fn converge_is_idempotent() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2);
    b.link("A", "B").unwrap();
    let net = b.build().unwrap().converge().unwrap();
    let ribs_before = net.rib("B").unwrap().clone();
    let net = net.converge().unwrap();
    assert_eq!(net.rib("B").unwrap(), &ribs_before);
}

#[test]
fn reconfigure_and_reconverge() {
    let cfg = Config::parse("route-map BLOCK deny 10\n").unwrap();
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2).config(cfg);
    b.session_pair("A", "B", None, None, Some("BLOCK"), None)
        .unwrap();
    let net = b.build().unwrap().converge().unwrap();
    assert!(!net.can_reach("B", &pfx("10.0.0.0/8")));

    // Open the import policy and reconverge.
    let mut net = net;
    let cfg = net.router_config_mut("B").unwrap();
    *cfg = Config::parse("route-map BLOCK permit 10\n").unwrap();
    let net = net.converge().unwrap();
    assert!(net.can_reach("B", &pfx("10.0.0.0/8")));
}

#[test]
fn path_to_traces_forwarding_chain() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1).originate(pfx("10.0.0.0/8"));
    b.router("B", 2);
    b.router("C", 3);
    b.link("A", "B").unwrap();
    b.link("B", "C").unwrap();
    let net = b.build().unwrap().converge().unwrap();
    assert_eq!(
        net.path_to("C", &pfx("10.0.0.0/8")),
        Some(vec!["C", "B", "A"])
    );
    assert_eq!(net.path_to("A", &pfx("10.0.0.0/8")), Some(vec!["A"]));
    assert_eq!(net.path_to("C", &pfx("99.0.0.0/8")), None);
    assert_eq!(net.path_to("GHOST", &pfx("10.0.0.0/8")), None);
}

#[test]
fn ibgp_same_as_does_not_prepend() {
    let mut b = NetworkBuilder::new();
    b.router("A", 65000).originate(pfx("10.0.0.0/8"));
    b.router("B", 65000);
    b.link("A", "B").unwrap();
    let net = b.build().unwrap().converge().unwrap();
    let e = net.best_route("B", &pfx("10.0.0.0/8")).unwrap();
    assert!(e.route.as_path.is_empty(), "iBGP keeps the path empty");
    assert_eq!(e.learned_from.as_deref(), Some("A"));
}

#[test]
fn ibgp_preserves_local_pref() {
    let cfg = Config::parse("route-map LP permit 10\n set local-preference 400\n").unwrap();
    let mut b = NetworkBuilder::new();
    b.router("A", 65000)
        .config(cfg)
        .originate(pfx("10.0.0.0/8"));
    b.router("B", 65000);
    b.session_pair("A", "B", None, Some("LP"), None, None)
        .unwrap();
    let net = b.build().unwrap().converge().unwrap();
    let e = net.best_route("B", &pfx("10.0.0.0/8")).unwrap();
    assert_eq!(e.route.local_pref, 400, "LOCAL_PREF survives iBGP");
}

#[test]
fn session_pair_rejects_undeclared_router() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1);
    let err = b
        .session_pair("A", "GHOST", None, None, None, None)
        .expect_err("undeclared endpoint must be rejected");
    assert_eq!(err, SimError::UnknownRouter("GHOST".to_string()));
    // The failed call must not have half-linked anything: A gained no
    // session, and the builder is still usable.
    let err = b.link("GHOST", "A").expect_err("still rejected");
    assert_eq!(err, SimError::UnknownRouter("GHOST".to_string()));
    let net = b.build().unwrap();
    assert!(net.router("A").is_none_or(|r| r.sessions.is_empty()));
}

#[test]
fn session_pair_roles_are_converses() {
    let mut b = NetworkBuilder::new();
    b.router("A", 1);
    b.router("B", 2);
    b.session_pair_with_roles(
        "A",
        "B",
        None,
        None,
        None,
        None,
        crate::SessionRole::Provider,
    )
    .unwrap();
    let net = b.build().unwrap();
    assert_eq!(
        net.router("A").unwrap().session("B").unwrap().role,
        crate::SessionRole::Provider
    );
    assert_eq!(
        net.router("B").unwrap().session("A").unwrap().role,
        crate::SessionRole::Customer
    );
    assert!(net.adjacency_up("A", "B"));
    assert!(!net.adjacency_up("A", "C"));
    assert_eq!(net.sessions().count(), 2);
}

const TOPO: &str = "\
! two-router topology
router A asn 1 config a.cfg
  originate 10.0.0.0/8
  neighbor B import IN role provider
router B asn 2
  neighbor A role customer
";

#[test]
fn topology_parses_and_instantiates() {
    let spec = crate::TopologySpec::parse(TOPO).unwrap();
    assert_eq!(spec.routers.len(), 2);
    assert_eq!(spec.config_paths(), vec!["a.cfg"]);
    let loaded = spec
        .instantiate(&mut |path| {
            assert_eq!(path, "a.cfg");
            Ok("route-map IN permit 10\n".to_string())
        })
        .unwrap();
    let a = loaded.network.router("A").unwrap();
    assert_eq!(a.asn, 1);
    assert_eq!(a.originated, vec![pfx("10.0.0.0/8")]);
    let s = a.session("B").unwrap();
    assert_eq!(s.import_policy.as_deref(), Some("IN"));
    assert_eq!(s.role, crate::SessionRole::Provider);
    assert_eq!(
        loaded.config_paths.get("A").map(String::as_str),
        Some("a.cfg")
    );
    assert!(loaded.sources.get("A").unwrap().contains("route-map IN"));
    assert!(!loaded.spans.get("A").unwrap().is_empty());
    assert!(loaded
        .network
        .router("B")
        .unwrap()
        .config
        .route_maps
        .is_empty());
}

#[test]
fn topology_rejects_structural_errors() {
    // One-sided session.
    let err =
        crate::TopologySpec::parse("router A asn 1\n  neighbor B\nrouter B asn 2\n").unwrap_err();
    assert!(matches!(err, SimError::Topology { line: 2, .. }), "{err}");
    // Role mismatch (provider requires customer on the far end).
    let err = crate::TopologySpec::parse(
        "router A asn 1\n  neighbor B role provider\nrouter B asn 2\n  neighbor A role peer\n",
    )
    .unwrap_err();
    assert!(err.to_string().contains("role mismatch"), "{err}");
    // Unknown neighbor.
    let err = crate::TopologySpec::parse("router A asn 1\n  neighbor GHOST\n").unwrap_err();
    assert!(err.to_string().contains("unknown neighbor"), "{err}");
    // A bound policy missing from the config fails at build time.
    let spec = crate::TopologySpec::parse(TOPO).unwrap();
    let err = spec.instantiate(&mut |_| Ok(String::new())).unwrap_err();
    assert!(matches!(err, SimError::Config { .. }), "{err}");
}

#[test]
fn topology_instantiates_e1_testdata() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../testdata");
    let text = std::fs::read_to_string(dir.join("e1_topology.txt")).unwrap();
    let spec = crate::TopologySpec::parse(&text).unwrap();
    assert_eq!(spec.routers.len(), 7);
    let loaded = spec
        .instantiate(&mut |p| std::fs::read_to_string(dir.join(p)).map_err(|e| e.to_string()))
        .unwrap();
    // The clean topology converges, and the service prefix reaches M.
    let net = loaded.network.converge().unwrap();
    assert!(net.can_reach("M", &pfx("10.1.0.0/16")));
    // Valley-free holds concretely: the ISPs never hear each other's
    // prefixes through our network.
    assert!(!net.can_reach("ISP2", &pfx("8.8.0.0/16")));
    assert!(!net.can_reach("ISP1", &pfx("9.9.0.0/16")));
}
