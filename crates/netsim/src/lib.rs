//! A deterministic BGP propagation simulator.
//!
//! The §5 evaluation of the paper checks five *global* routing policies on
//! a small topology after synthesizing all route-maps incrementally. This
//! crate provides the substrate for that check: routers with per-neighbor
//! import/export route-maps (evaluated by `clarify-netconfig`), synchronous
//! route propagation to a fixed point, Cisco-style best-path selection, and
//! RIB queries.
//!
//! The model is deliberately simple and fully deterministic:
//!
//! * every session is point-to-point; split horizon applies (a route is
//!   never re-advertised to the neighbor it was learned from);
//! * when advertising across AS boundaries the sender prepends its ASN,
//!   the receiver drops looped paths, and LOCAL_PREF/weight reset to their
//!   defaults (100 / 0) before the import policy runs;
//! * within an AS, routes propagate transitively over iBGP sessions (as if
//!   every router were a route reflector); real iBGP's
//!   no-re-advertisement rule — which requires a full mesh or explicit
//!   reflectors — is intentionally not modelled;
//! * best-path selection: highest weight, then highest LOCAL_PREF, then
//!   shortest AS path, then lowest MED, then lowest neighbor name (a
//!   deterministic stand-in for router-id comparison);
//! * propagation iterates synchronous rounds until the adj-RIBs stop
//!   changing, erroring out if convergence takes implausibly long.
//!
//! ```
//! use clarify_netsim::NetworkBuilder;
//!
//! let mut b = NetworkBuilder::new();
//! b.router("A", 65001).originate("10.0.0.0/8".parse().unwrap());
//! b.router("B", 65002);
//! b.link("A", "B").unwrap();
//! let net = b.build().unwrap().converge().unwrap();
//! assert!(net.best_route("B", &"10.0.0.0/8".parse().unwrap()).is_some());
//! ```

#![warn(missing_docs)]

mod error;
mod network;
mod propagate;
mod topology;

pub use error::SimError;
pub use network::{Network, NetworkBuilder, RibEntry, Router, RouterBuilder, Session, SessionRole};
pub use topology::{LoadedTopology, NeighborSpec, RouterSpec, TopologySpec};

#[cfg(test)]
mod tests;
