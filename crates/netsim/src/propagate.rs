//! Synchronous route propagation to a fixed point.

use std::collections::BTreeMap;

use clarify_netconfig::RouteMapVerdict;
use clarify_nettypes::{BgpRoute, Prefix};

use crate::error::SimError;
use crate::network::{Network, RibEntry};

/// Hard bound on propagation rounds; BGP on an n-router topology without
/// policy oscillation converges in O(n) synchronous rounds, so this only
/// trips on genuinely divergent (policy-dispute) configurations.
const MAX_ROUNDS: usize = 200;

impl Network {
    /// Runs synchronous propagation rounds until every adj-RIB stops
    /// changing, then populates the per-router RIBs. Consumes and returns
    /// the network for fluent use.
    pub fn converge(mut self) -> Result<Network, SimError> {
        // adj_in[(receiver, sender)] = routes offered on that session.
        let mut adj_in: BTreeMap<(String, String), BTreeMap<Prefix, BgpRoute>> = BTreeMap::new();
        let mut ribs: BTreeMap<String, BTreeMap<Prefix, RibEntry>> = BTreeMap::new();

        // Round 0: locally originated routes only.
        for r in self.routers.values() {
            let mut rib = BTreeMap::new();
            for p in &r.originated {
                rib.insert(
                    *p,
                    RibEntry {
                        route: BgpRoute::with_defaults(*p),
                        learned_from: None,
                    },
                );
            }
            ribs.insert(r.name.clone(), rib);
        }

        for _round in 0..MAX_ROUNDS {
            // 1. Compute every advertisement from the current RIBs.
            let mut next_adj: BTreeMap<(String, String), BTreeMap<Prefix, BgpRoute>> =
                BTreeMap::new();
            for sender in self.routers.values() {
                let rib = &ribs[&sender.name];
                for session in &sender.sessions {
                    let receiver = &self.routers[&session.neighbor];
                    // The receiver must also have a session back to us for
                    // the adjacency to be up.
                    let Some(recv_session) = receiver.session(&sender.name) else {
                        continue;
                    };
                    let mut offered: BTreeMap<Prefix, BgpRoute> = BTreeMap::new();
                    for (prefix, entry) in rib {
                        // Split horizon.
                        if entry.learned_from.as_deref() == Some(receiver.name.as_str()) {
                            continue;
                        }
                        // Sender-side export policy.
                        let mut route = entry.route.clone();
                        if let Some(policy) = &session.export_policy {
                            match sender.config.eval_route_map(policy, &route) {
                                Ok(RouteMapVerdict::Permit { route: out, .. }) => route = out,
                                Ok(_) => continue,
                                Err(error) => {
                                    return Err(SimError::Config {
                                        router: sender.name.clone(),
                                        error,
                                    })
                                }
                            }
                        }
                        // Cross-AS transmission semantics.
                        if sender.asn != receiver.asn {
                            route.as_path = route.as_path.prepend(sender.asn);
                            route.local_pref = 100;
                            route.weight = 0;
                            if route.as_path.contains(receiver.asn) {
                                continue; // loop prevention
                            }
                        }
                        // Receiver-side import policy.
                        if let Some(policy) = &recv_session.import_policy {
                            match receiver.config.eval_route_map(policy, &route) {
                                Ok(RouteMapVerdict::Permit { route: out, .. }) => route = out,
                                Ok(_) => continue,
                                Err(error) => {
                                    return Err(SimError::Config {
                                        router: receiver.name.clone(),
                                        error,
                                    })
                                }
                            }
                        }
                        offered.insert(*prefix, route);
                    }
                    next_adj.insert((receiver.name.clone(), sender.name.clone()), offered);
                }
            }

            // 2. Recompute RIBs from originations + adjacency inputs.
            let mut next_ribs: BTreeMap<String, BTreeMap<Prefix, RibEntry>> = BTreeMap::new();
            for r in self.routers.values() {
                let mut rib: BTreeMap<Prefix, RibEntry> = BTreeMap::new();
                for p in &r.originated {
                    rib.insert(
                        *p,
                        RibEntry {
                            route: BgpRoute::with_defaults(*p),
                            learned_from: None,
                        },
                    );
                }
                for ((recv, sender), offered) in &next_adj {
                    if recv != &r.name {
                        continue;
                    }
                    for (prefix, route) in offered {
                        let candidate = RibEntry {
                            route: route.clone(),
                            learned_from: Some(sender.clone()),
                        };
                        match rib.get(prefix) {
                            None => {
                                rib.insert(*prefix, candidate);
                            }
                            Some(current) => {
                                if better(&candidate, current) {
                                    rib.insert(*prefix, candidate);
                                }
                            }
                        }
                    }
                }
                next_ribs.insert(r.name.clone(), rib);
            }

            let done = next_adj == adj_in && next_ribs == ribs;
            adj_in = next_adj;
            ribs = next_ribs;
            if done {
                self.ribs = ribs;
                self.converged = true;
                return Ok(self);
            }
        }
        Err(SimError::NoConvergence { rounds: MAX_ROUNDS })
    }
}

/// Cisco-style best-path comparison (locally originated routes always win
/// because they never appear as candidates against themselves here; the
/// origination loop inserts them first and `better` prefers the incumbent
/// on full ties).
fn better(candidate: &RibEntry, current: &RibEntry) -> bool {
    // Locally originated beats learned.
    if current.learned_from.is_none() {
        return false;
    }
    let a = &candidate.route;
    let b = &current.route;
    if a.weight != b.weight {
        return a.weight > b.weight;
    }
    if a.local_pref != b.local_pref {
        return a.local_pref > b.local_pref;
    }
    if a.as_path.len() != b.as_path.len() {
        return a.as_path.len() < b.as_path.len();
    }
    if a.metric != b.metric {
        return a.metric < b.metric;
    }
    // Deterministic final tie-break: lowest neighbor name.
    candidate.learned_from < current.learned_from
}
