//! Synthetic configuration populations calibrated to the paper's §3
//! measurements.
//!
//! The paper measured overlap prevalence in a major cloud provider's WAN
//! and a university campus network. Those configurations are proprietary;
//! this crate generates seeded synthetic populations whose *measured*
//! overlap statistics land on the reported numbers, so the census code
//! (`clarify-analysis`) runs against data of the same shape and scale:
//!
//! * **cloud WAN** — 237 ACLs (69 with ≥1 overlap, 48 of those with more
//!   than 20, one border ACL with over 100 overlapping pairs) and 800
//!   route-maps (140 with overlaps, 3 with more than 20);
//! * **campus** — 11,088 ACLs (37.7% with conflicting overlaps; 27% of
//!   those with >20 conflicts; 18.6% non-trivial after filtering
//!   subset-shaped pairs, 16.3% of those >20) and 169 route-maps (2 with
//!   overlapping stanzas, one of which has three overlapping pairs, two of
//!   them conflicting).
//!
//! Every generator takes an explicit seed; identical seeds produce
//! identical populations. Individual ACL/route-map family constructors are
//! exported for tests and benchmarks.

#![warn(missing_docs)]

mod census;
mod families;
mod populations;

pub use census::{AclCensus, RouteMapCensus};
pub use families::{
    clean_acl, clean_route_map_config, cross_acl, disambiguation_family, nested_route_map_config,
    subset_tail_acl,
};
pub use populations::{campus, cloud, CampusWorkload, CloudWorkload};

#[cfg(test)]
mod tests;
