//! The two §3 populations: cloud WAN and campus.

use clarify_rng::{Rng, StdRng};

use clarify_netconfig::{Acl, Config};

use crate::families::{
    clean_acl, clean_route_map_config, cross_acl, nested_route_map_config, subset_tail_acl,
};

/// The cloud-WAN population of §3.1.
#[derive(Clone, Debug)]
pub struct CloudWorkload {
    /// 237 non-identical ACLs.
    pub acls: Vec<Acl>,
    /// 800 route-maps, one per config (each config carries the map's
    /// ancillary lists).
    pub route_maps: Vec<(Config, String)>,
}

/// Generates the cloud-WAN population.
///
/// Class layout (engineered so the measured census reproduces §3.1):
/// 237 ACLs = 168 clean + 21 lightly overlapping (1–20 pairs) + 47 heavy
/// (>20 pairs) + 1 border ACL with >100 pairs; 800 route-maps = 660 clean
/// + 137 light (1–20 overlapping pairs) + 3 heavy (>20).
pub fn cloud(seed: u64) -> CloudWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acls = Vec::with_capacity(237);
    // The border ACL from the paper's anecdote: "dozens of rules permitting
    // and denying combinations" with over 100 overlapping pairs.
    acls.push(cross_acl(&mut rng, "EDGE_INGRESS", 12, 9)); // 108 pairs
    for i in 0..47 {
        let p = rng.gen_range(7..=12);
        let d = rng.gen_range(3..=4);
        debug_assert!(p * d > 20 && p * d <= 48);
        acls.push(cross_acl(&mut rng, &format!("CLOUD_HEAVY_{i}"), p, d));
    }
    for i in 0..21 {
        let p = rng.gen_range(1..=10);
        let d = rng.gen_range(1..=2);
        debug_assert!(p * d >= 1 && p * d <= 20);
        acls.push(cross_acl(&mut rng, &format!("CLOUD_LIGHT_{i}"), p, d));
    }
    for i in 0..168 {
        let n = rng.gen_range(3..=12);
        acls.push(clean_acl(&mut rng, &format!("CLOUD_CLEAN_{i}"), n));
    }

    let mut route_maps = Vec::with_capacity(800);
    for i in 0..3 {
        // >20 overlapping pairs: wide stanza over 21+ narrows.
        let n = rng.gen_range(23..=30);
        let name = format!("RM_HEAVY_{i}");
        route_maps.push((nested_route_map_config(&name, n, n / 2), name));
    }
    for i in 0..137 {
        let n = rng.gen_range(2usize..=15); // 1..=14 overlapping pairs
        let name = format!("RM_LIGHT_{i}");
        route_maps.push((
            nested_route_map_config(&name, n.max(2), (n.max(2) - 1) / 2),
            name,
        ));
    }
    for i in 0..660 {
        let n = rng.gen_range(1..=8);
        let name = format!("RM_CLEAN_{i}");
        route_maps.push((clean_route_map_config(&mut rng, &name, n), name));
    }
    CloudWorkload { acls, route_maps }
}

/// The campus population of §3.2.
#[derive(Clone, Debug)]
pub struct CampusWorkload {
    /// 11,088 ACLs.
    pub acls: Vec<Acl>,
    /// 169 route-maps.
    pub route_maps: Vec<(Config, String)>,
}

/// Generates the campus population.
///
/// Class layout (engineered to reproduce §3.2):
///
/// | class              | count | conflicts | non-trivial |
/// |--------------------|------:|-----------|-------------|
/// | clean              |  6908 | 0         | 0           |
/// | subset-tail light  |  1325 | 1–20      | 0           |
/// | subset-tail heavy  |   793 | >20       | 0           |
/// | crossing light     |  1726 | 1–20      | 1–20        |
/// | crossing heavy     |   336 | >20       | >20         |
///
/// Giving 4180/11088 = 37.7% with conflicting overlaps, 1129/4180 = 27%
/// of those with more than 20 conflicts, 2062/11088 = 18.6% non-trivial,
/// and 336/2062 = 16.3% of those with more than 20 non-trivial pairs.
pub fn campus(seed: u64) -> CampusWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acls = Vec::with_capacity(11_088);
    for i in 0..6908 {
        let n = rng.gen_range(2..=10);
        acls.push(clean_acl(&mut rng, &format!("CAMPUS_CLEAN_{i}"), n));
    }
    for i in 0..1325 {
        let k = rng.gen_range(1..=20);
        acls.push(subset_tail_acl(&mut rng, &format!("CAMPUS_TAIL_L_{i}"), k));
    }
    for i in 0..793 {
        let k = rng.gen_range(21..=40);
        acls.push(subset_tail_acl(&mut rng, &format!("CAMPUS_TAIL_H_{i}"), k));
    }
    for i in 0..1726 {
        let p = rng.gen_range(1..=10);
        let d = rng.gen_range(1..=2);
        let (p, d) = if p * d > 20 { (p, 1) } else { (p, d) };
        acls.push(cross_acl(&mut rng, &format!("CAMPUS_CROSS_L_{i}"), p, d));
    }
    for i in 0..336 {
        let p = rng.gen_range(7..=12);
        let d = rng.gen_range(3..=5);
        debug_assert!(p * d > 20);
        acls.push(cross_acl(&mut rng, &format!("CAMPUS_CROSS_H_{i}"), p, d));
    }

    let mut route_maps = Vec::with_capacity(169);
    // The paper: 2 route-maps with overlapping stanzas; one has three
    // overlapping pairs of which two are conflicting.
    route_maps.push((
        nested_route_map_config("CAMPUS_RM_A", 4, 2),
        "CAMPUS_RM_A".to_string(),
    ));
    route_maps.push((
        nested_route_map_config("CAMPUS_RM_B", 2, 1),
        "CAMPUS_RM_B".to_string(),
    ));
    for i in 0..167 {
        let n = rng.gen_range(1..=6);
        let name = format!("CAMPUS_RM_{i}");
        route_maps.push((clean_route_map_config(&mut rng, &name, n), name));
    }
    CampusWorkload { acls, route_maps }
}
