//! Parameterized configuration families with known overlap structure.

use std::net::Ipv4Addr;

use clarify_rng::Rng;

use clarify_netconfig::{Acl, AclEntry, Action, AddrMatch, Config};
use clarify_nettypes::{PortRange, Prefix, Protocol};

/// An ACL with `n` rules on pairwise-disjoint /16 source prefixes: zero
/// overlapping pairs.
pub fn clean_acl(rng: &mut impl Rng, name: &str, n: usize) -> Acl {
    assert!(n <= 200, "disjoint /16 pool exhausted");
    let base = rng.gen_range(11u8..200);
    let entries = (0..n)
        .map(|i| AclEntry {
            action: Action::Permit,
            protocol: Protocol::Tcp,
            src: AddrMatch::Net(Prefix::new(Ipv4Addr::new(base, i as u8, 0, 0), 16)),
            src_ports: PortRange::ANY,
            dst: AddrMatch::Any,
            dst_ports: PortRange::eq(1000 + i as u16),
        })
        .collect();
    Acl {
        name: name.to_string(),
        entries,
    }
}

/// An ACL with `k` pairwise-disjoint host-to-host permits followed by
/// `deny ip any any`: exactly `k` conflicting pairs, every one of them
/// subset-shaped (the "trivial" §3.2 case).
pub fn subset_tail_acl(rng: &mut impl Rng, name: &str, k: usize) -> Acl {
    assert!(k <= 250, "host pool exhausted");
    let a = rng.gen_range(1u8..250);
    let mut entries: Vec<AclEntry> = (0..k)
        .map(|i| AclEntry {
            action: Action::Permit,
            protocol: Protocol::Tcp,
            src: AddrMatch::Host(Ipv4Addr::new(10, a, (i / 250) as u8, (i % 250) as u8 + 1)),
            src_ports: PortRange::ANY,
            dst: AddrMatch::Host(Ipv4Addr::new(20, a, 0, (i % 250) as u8 + 1)),
            dst_ports: PortRange::eq(443),
        })
        .collect();
    entries.push(AclEntry {
        action: Action::Deny,
        protocol: Protocol::Ip,
        src: AddrMatch::Any,
        src_ports: PortRange::ANY,
        dst: AddrMatch::Any,
        dst_ports: PortRange::ANY,
    });
    Acl {
        name: name.to_string(),
        entries,
    }
}

/// A "crossing" ACL with `p` narrow permits and `d` wide denies built so
/// that every permit/deny pair overlaps without either containing the
/// other: exactly `p * d` conflicting, non-subset pairs and nothing else.
///
/// Structure: permits match distinct /16s under 10.0.0.0/8 with the full
/// destination-port band `[0, 400]`; denies match all of 10.0.0.0/8 but a
/// single destination port each.
pub fn cross_acl(rng: &mut impl Rng, name: &str, p: usize, d: usize) -> Acl {
    assert!(p <= 250 && d <= 200, "pool exhausted");
    let shift = rng.gen_range(0u16..50);
    let mut entries: Vec<AclEntry> = (0..p)
        .map(|i| AclEntry {
            action: Action::Permit,
            protocol: Protocol::Tcp,
            src: AddrMatch::Net(Prefix::new(Ipv4Addr::new(10, i as u8, 0, 0), 16)),
            src_ports: PortRange::ANY,
            dst: AddrMatch::Any,
            dst_ports: PortRange::new(0, 400),
        })
        .collect();
    entries.extend((0..d).map(|j| AclEntry {
        action: Action::Deny,
        protocol: Protocol::Tcp,
        src: AddrMatch::Net(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8)),
        src_ports: PortRange::ANY,
        dst: AddrMatch::Any,
        dst_ports: PortRange::eq(50 + shift + j as u16),
    }));
    Acl {
        name: name.to_string(),
        entries,
    }
}

/// A config holding one route-map whose `n` stanzas match pairwise
/// disjoint exact /8 prefixes: zero overlapping stanza pairs.
pub fn clean_route_map_config(rng: &mut impl Rng, map: &str, n: usize) -> Config {
    assert!(n <= 100, "prefix pool exhausted");
    let base = rng.gen_range(30u8..120);
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!(
            "ip prefix-list {map}_PL{i} seq 5 permit {}.0.0.0/8\n",
            base + i as u8
        ));
    }
    for i in 0..n {
        text.push_str(&format!(
            "route-map {map} {} {}\n match ip address prefix-list {map}_PL{i}\n",
            if i % 2 == 0 { "permit" } else { "deny" },
            (i + 1) * 10,
        ));
    }
    Config::parse(&text).expect("generated config parses")
}

/// A config holding one route-map with one *wide* stanza (all of
/// 10.0.0.0/8) and `n - 1` narrow stanzas on distinct /16s below it:
/// exactly `n - 1` overlapping pairs (wide × each narrow). `conflicting`
/// of the narrow stanzas take the opposite action from the wide stanza.
pub fn nested_route_map_config(map: &str, n: usize, conflicting: usize) -> Config {
    assert!((1..=200).contains(&n) && conflicting <= n.saturating_sub(1));
    let mut text = String::new();
    text.push_str(&format!(
        "ip prefix-list {map}_WIDE seq 5 permit 10.0.0.0/8 le 32\n"
    ));
    for i in 1..n {
        text.push_str(&format!(
            "ip prefix-list {map}_PL{i} seq 5 permit 10.{}.0.0/16 le 32\n",
            i as u8
        ));
    }
    // Wide stanza first: action deny.
    text.push_str(&format!(
        "route-map {map} deny 10\n match ip address prefix-list {map}_WIDE\n"
    ));
    for i in 1..n {
        // `conflicting` narrows get the opposite action (permit).
        let action = if i <= conflicting { "permit" } else { "deny" };
        text.push_str(&format!(
            "route-map {map} {action} {}\n match ip address prefix-list {map}_PL{i}\n",
            (i + 1) * 10,
        ));
    }
    Config::parse(&text).expect("generated config parses")
}

/// The disambiguation-scaling family: a route-map with `n` stanzas
/// (`match tag i`, `set metric 1000+i`) plus a snippet matching every
/// 10.0.0.0/8 route — the snippet overlaps all `n` stanzas, and each of
/// the `n + 1` insertion slots is behaviourally distinct. Returns
/// `(base, snippet)`; the snippet's route-map is named `NEW`.
pub fn disambiguation_family(n: usize) -> (Config, Config) {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!(
            "route-map RM permit {}\n match tag {}\n set metric {}\n",
            (i + 1) * 10,
            i,
            1000 + i
        ));
    }
    let base = Config::parse(&text).expect("generated config parses");
    let snippet = Config::parse(
        "ip prefix-list PL permit 10.0.0.0/8 le 32\nroute-map NEW permit 10\n match ip address prefix-list PL\n set metric 99\n",
    )
    .expect("snippet parses");
    (base, snippet)
}
