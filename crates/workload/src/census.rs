//! Aggregate statistics over overlap reports — the numbers §3 reports.

use clarify_analysis::OverlapReport;

/// Census of an ACL population, mirroring §3's ACL metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AclCensus {
    /// Number of ACLs examined.
    pub total: usize,
    /// ACLs with at least one overlapping pair.
    pub with_overlap: usize,
    /// ACLs with more than 20 overlapping pairs.
    pub overlap_gt20: usize,
    /// ACLs with at least one *conflicting* overlap.
    pub with_conflicts: usize,
    /// ACLs with more than 20 conflicting pairs.
    pub conflicts_gt20: usize,
    /// ACLs with at least one non-trivial (non-subset) conflicting overlap.
    pub nontrivial: usize,
    /// ACLs with more than 20 non-trivial conflicting pairs.
    pub nontrivial_gt20: usize,
    /// Largest overlapping-pair count seen in a single ACL.
    pub max_pairs: usize,
}

impl AclCensus {
    /// Folds one ACL's report into the census.
    pub fn add(&mut self, report: &OverlapReport) {
        self.total += 1;
        let pairs = report.count();
        let conflicts = report.conflict_count();
        let nontrivial = report.nontrivial_conflict_count();
        if pairs > 0 {
            self.with_overlap += 1;
        }
        if pairs > 20 {
            self.overlap_gt20 += 1;
        }
        if conflicts > 0 {
            self.with_conflicts += 1;
        }
        if conflicts > 20 {
            self.conflicts_gt20 += 1;
        }
        if nontrivial > 0 {
            self.nontrivial += 1;
        }
        if nontrivial > 20 {
            self.nontrivial_gt20 += 1;
        }
        self.max_pairs = self.max_pairs.max(pairs);
    }

    /// Computes the census over many reports.
    pub fn of<'a>(reports: impl IntoIterator<Item = &'a OverlapReport>) -> AclCensus {
        let mut c = AclCensus::default();
        for r in reports {
            c.add(r);
        }
        c
    }

    /// Fraction of ACLs with conflicting overlaps (the §3.2 "37.7%").
    pub fn conflict_fraction(&self) -> f64 {
        frac(self.with_conflicts, self.total)
    }

    /// Fraction of conflicting ACLs with more than 20 conflicts ("27%").
    pub fn gt20_of_conflicting(&self) -> f64 {
        frac(self.conflicts_gt20, self.with_conflicts)
    }

    /// Fraction of ACLs with non-trivial overlaps ("18.6%").
    pub fn nontrivial_fraction(&self) -> f64 {
        frac(self.nontrivial, self.total)
    }

    /// Fraction of non-trivial ACLs with more than 20 such pairs ("16.3%").
    pub fn gt20_of_nontrivial(&self) -> f64 {
        frac(self.nontrivial_gt20, self.nontrivial)
    }
}

/// Census of a route-map population, mirroring §3's route-map metrics
/// (actions ignored for the overlap count; conflicts tracked separately).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RouteMapCensus {
    /// Number of route-maps examined.
    pub total: usize,
    /// Route-maps with at least one overlapping stanza pair.
    pub with_overlap: usize,
    /// Route-maps with more than 20 overlapping pairs.
    pub overlap_gt20: usize,
    /// Largest overlapping-pair count in a single route-map.
    pub max_pairs: usize,
}

impl RouteMapCensus {
    /// Folds one route-map's report into the census.
    pub fn add(&mut self, report: &OverlapReport) {
        self.total += 1;
        let pairs = report.count();
        if pairs > 0 {
            self.with_overlap += 1;
        }
        if pairs > 20 {
            self.overlap_gt20 += 1;
        }
        self.max_pairs = self.max_pairs.max(pairs);
    }

    /// Computes the census over many reports.
    pub fn of<'a>(reports: impl IntoIterator<Item = &'a OverlapReport>) -> RouteMapCensus {
        let mut c = RouteMapCensus::default();
        for r in reports {
            c.add(r);
        }
        c
    }
}

fn frac(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}
