use clarify_rng::StdRng;

use clarify_analysis::{acl_overlaps, route_map_overlaps, RouteSpace};

use crate::{
    campus, clean_acl, clean_route_map_config, cloud, cross_acl, disambiguation_family,
    nested_route_map_config, subset_tail_acl, AclCensus, RouteMapCensus,
};

fn rng() -> StdRng {
    StdRng::seed_from_u64(7)
}

#[test]
fn clean_acl_has_no_overlaps() {
    let acl = clean_acl(&mut rng(), "A", 10);
    let r = acl_overlaps(&acl);
    assert_eq!(r.count(), 0);
    assert_eq!(r.num_rules, 10);
}

#[test]
fn subset_tail_acl_counts_exact() {
    for k in [1, 5, 20, 25] {
        let acl = subset_tail_acl(&mut rng(), "A", k);
        let r = acl_overlaps(&acl);
        assert_eq!(r.count(), k, "k={k}");
        assert_eq!(r.conflict_count(), k, "all pairs conflict");
        assert_eq!(r.nontrivial_conflict_count(), 0, "all pairs are subsets");
    }
}

#[test]
fn cross_acl_counts_exact() {
    for (p, d) in [(1, 1), (4, 3), (12, 9), (10, 2)] {
        let acl = cross_acl(&mut rng(), "A", p, d);
        let r = acl_overlaps(&acl);
        assert_eq!(r.count(), p * d, "p={p} d={d}");
        assert_eq!(r.conflict_count(), p * d);
        assert_eq!(r.nontrivial_conflict_count(), p * d, "no subset pairs");
    }
}

#[test]
fn clean_route_map_has_no_overlaps() {
    let cfg = clean_route_map_config(&mut rng(), "RM", 6);
    let rm = cfg.route_map("RM").unwrap().clone();
    let mut space = RouteSpace::new(&[&cfg]).unwrap();
    let r = route_map_overlaps(&mut space, &cfg, &rm).unwrap();
    assert_eq!(r.count(), 0);
}

#[test]
fn nested_route_map_counts_exact() {
    let cfg = nested_route_map_config("RM", 4, 2);
    let rm = cfg.route_map("RM").unwrap().clone();
    let mut space = RouteSpace::new(&[&cfg]).unwrap();
    let r = route_map_overlaps(&mut space, &cfg, &rm).unwrap();
    assert_eq!(r.count(), 3, "wide stanza overlaps each narrow");
    let conflicting = r.pairs.iter().filter(|p| p.conflicting).count();
    assert_eq!(conflicting, 2, "the paper's campus route-map shape");
}

#[test]
fn disambiguation_family_shape() {
    let (base, snip) = disambiguation_family(5);
    assert_eq!(base.route_map("RM").unwrap().stanzas.len(), 5);
    assert_eq!(snip.route_map("NEW").unwrap().stanzas.len(), 1);
}

#[test]
fn populations_are_deterministic_per_seed() {
    let a = cloud(11);
    let b = cloud(11);
    assert_eq!(a.acls.len(), b.acls.len());
    for (x, y) in a.acls.iter().zip(&b.acls) {
        assert_eq!(x, y);
    }
    let c = cloud(12);
    assert_ne!(
        a.acls.iter().map(|x| format!("{x}")).collect::<String>(),
        c.acls.iter().map(|x| format!("{x}")).collect::<String>(),
        "different seeds differ"
    );
}

#[test]
fn cloud_census_matches_paper() {
    let w = cloud(42);
    assert_eq!(w.acls.len(), 237);
    assert_eq!(w.route_maps.len(), 800);
    let reports: Vec<_> = w.acls.iter().map(acl_overlaps).collect();
    let census = AclCensus::of(&reports);
    // §3.1: 69 of 237 with at least one overlap; 48 with more than 20;
    // one ACL with over 100 pairs.
    assert_eq!(census.total, 237);
    assert_eq!(census.with_overlap, 69);
    assert_eq!(census.overlap_gt20, 48);
    assert!(census.max_pairs > 100, "max {}", census.max_pairs);
}

#[test]
fn cloud_route_map_census_matches_paper() {
    let w = cloud(42);
    let mut census = RouteMapCensus::default();
    for (cfg, name) in &w.route_maps {
        let rm = cfg.route_map(name).unwrap().clone();
        let mut space = RouteSpace::new(&[cfg]).unwrap();
        let r = route_map_overlaps(&mut space, cfg, &rm).unwrap();
        census.add(&r);
    }
    // §3.1: 800 policies, 140 with overlaps, 3 with more than 20 each.
    assert_eq!(census.total, 800);
    assert_eq!(census.with_overlap, 140);
    assert_eq!(census.overlap_gt20, 3);
}

#[test]
fn campus_acl_census_matches_paper_fractions() {
    let w = campus(42);
    assert_eq!(w.acls.len(), 11_088);
    let reports: Vec<_> = w.acls.iter().map(acl_overlaps).collect();
    let census = AclCensus::of(&reports);
    // §3.2: 37.7% conflicting; 27% of those >20; 18.6% non-trivial;
    // 16.3% of those >20.
    assert!(
        (census.conflict_fraction() - 0.377).abs() < 0.002,
        "{census:?}"
    );
    assert!(
        (census.gt20_of_conflicting() - 0.27).abs() < 0.01,
        "{census:?}"
    );
    assert!(
        (census.nontrivial_fraction() - 0.186).abs() < 0.002,
        "{census:?}"
    );
    assert!(
        (census.gt20_of_nontrivial() - 0.163).abs() < 0.01,
        "{census:?}"
    );
}

#[test]
fn campus_route_map_census_matches_paper() {
    let w = campus(42);
    assert_eq!(w.route_maps.len(), 169);
    let mut census = RouteMapCensus::default();
    let mut pair_counts = Vec::new();
    for (cfg, name) in &w.route_maps {
        let rm = cfg.route_map(name).unwrap().clone();
        let mut space = RouteSpace::new(&[cfg]).unwrap();
        let r = route_map_overlaps(&mut space, cfg, &rm).unwrap();
        if r.count() > 0 {
            pair_counts.push((r.count(), r.pairs.iter().filter(|p| p.conflicting).count()));
        }
        census.add(&r);
    }
    // §3.2: 2 route-maps with overlapping stanzas; one with three pairs of
    // which two conflict.
    assert_eq!(census.with_overlap, 2);
    assert!(pair_counts.contains(&(3, 2)), "{pair_counts:?}");
}

#[test]
fn census_fraction_edge_cases() {
    let c = AclCensus::default();
    assert_eq!(c.conflict_fraction(), 0.0);
    assert_eq!(c.gt20_of_conflicting(), 0.0);
}
