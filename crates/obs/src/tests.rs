use super::*;

#[test]
fn counters_gauges_and_handles_share_storage() {
    let reg = Registry::new();
    let a = reg.counter("events");
    let b = reg.counter("events");
    a.incr();
    b.add(4);
    assert_eq!(a.get(), 5);
    assert_eq!(reg.snapshot().counter("events"), 5);

    let g = reg.gauge("level");
    g.add(10);
    g.sub(3);
    assert_eq!(g.get(), 7);
    g.set(-2);
    assert_eq!(reg.snapshot().gauge("level"), -2);
}

#[test]
fn disabled_registry_is_a_no_op() {
    let reg = Registry::disabled();
    assert!(!reg.is_enabled());
    let c = reg.counter("events");
    c.incr();
    assert_eq!(c.get(), 0);
    reg.gauge("level").add(7);
    reg.histogram("h").record(9);
    {
        let _span = reg.span("work");
    }
    let snap = reg.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    assert_eq!(snap, Snapshot::default());
}

#[test]
fn histogram_buckets_are_log_scale() {
    let reg = Registry::new();
    let h = reg.histogram("values");
    for v in [0u64, 1, 1, 2, 3, 1024, u64::MAX] {
        h.record(v);
    }
    let snap = reg.snapshot();
    let hs = snap.histogram("values").expect("registered");
    assert_eq!(hs.count, 7);
    assert_eq!(hs.min, 0);
    assert_eq!(hs.max, u64::MAX);
    // 0 -> bucket 0 (le 0); 1 -> [1,2) le 1; 2,3 -> [2,4) le 3;
    // 1024 -> [1024,2048) le 2047; u64::MAX -> the open-ended last bucket.
    let by_le: Vec<(u64, u64)> = hs.buckets.iter().map(|b| (b.le, b.count)).collect();
    assert_eq!(
        by_le,
        vec![(0, 1), (1, 2), (3, 2), (2047, 1), (u64::MAX, 1)]
    );
    // The sum atomic wraps on overflow (fetch_add semantics).
    assert_eq!(hs.sum, 1031u64.wrapping_add(u64::MAX));
}

#[test]
fn span_records_into_named_histogram_on_drop() {
    let reg = Registry::new();
    {
        let _guard = reg.span("pivot_scan");
        std::hint::black_box(());
    }
    {
        let _guard = reg.span("pivot_scan");
    }
    let snap = reg.snapshot();
    let hs = snap.histogram("span.pivot_scan.ns").expect("span recorded");
    assert_eq!(hs.count, 2);
    assert!(hs.max >= hs.min);
}

#[test]
fn snapshot_json_round_trips() {
    let reg = Registry::new();
    reg.counter("a.b").add(42);
    reg.counter("weird \"name\"\n").incr();
    reg.gauge("g").set(-17);
    let h = reg.histogram("h.ns");
    h.record(0);
    h.record(500);
    h.record(70_000);
    let snap = reg.snapshot();
    let json = snap.to_json();
    let back = Snapshot::from_json(&json).expect("parses");
    assert_eq!(back, snap);
}

#[test]
fn empty_snapshot_round_trips() {
    let snap = Registry::new().snapshot();
    let back = Snapshot::from_json(&snap.to_json()).expect("parses");
    assert_eq!(back, snap);
}

#[test]
fn from_json_rejects_garbage() {
    assert!(Snapshot::from_json("").is_err());
    assert!(Snapshot::from_json("{").is_err());
    assert!(Snapshot::from_json("{\"counters\": {\"x\": \"y\"}}").is_err());
    assert!(Snapshot::from_json("{\"unknown\": {}}").is_err());
    assert!(Snapshot::from_json("{\"counters\": {}} trailing").is_err());
    // Counters are u64: negatives must be rejected, not wrapped.
    assert!(Snapshot::from_json("{\"counters\": {\"x\": -1}}").is_err());
    // Gauges are i64: negatives are fine.
    let s = Snapshot::from_json("{\"gauges\": {\"x\": -1}}").expect("parses");
    assert_eq!(s.gauge("x"), -1);
}

#[test]
fn render_human_mentions_every_section() {
    let reg = Registry::new();
    reg.counter("c").incr();
    reg.gauge("g").set(3);
    reg.histogram("span.x.ns").record(1_500);
    let text = reg.snapshot().render_human();
    assert!(text.contains("counters:"));
    assert!(text.contains("gauges:"));
    assert!(text.contains("histograms:"));
    assert!(text.contains("span.x.ns"));
    assert!(text.contains("1.5us"));

    assert_eq!(
        Registry::disabled().snapshot().render_human(),
        "obs: no metrics recorded\n"
    );
}

#[test]
fn global_starts_disabled_and_install_swaps() {
    // The one test that touches process-global state: every other obs
    // test uses a local registry, so no cross-test interference.
    assert!(!global().is_enabled());
    let reg = install(Registry::new());
    let guard = span!("global_probe");
    drop(guard);
    reg.counter("global.probe").incr();
    let snap = global().snapshot();
    assert_eq!(snap.counter("global.probe"), 1);
    assert_eq!(
        snap.histogram("span.global_probe.ns").map(|h| h.count),
        Some(1)
    );
    install(Registry::disabled());
    assert!(!global().is_enabled());
}

#[test]
fn counter_registration_alone_appears_in_snapshot() {
    // Handing out a handle registers the name at 0, so reports always
    // contain the full counter vocabulary of the code that ran — a punt
    // counter that stayed at zero is still present.
    let reg = Registry::new();
    let _ = reg.counter("pipeline.punts");
    assert_eq!(reg.snapshot().counters.get("pipeline.punts"), Some(&0));
}
