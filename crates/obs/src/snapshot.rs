//! Point-in-time registry snapshots: the machine-readable JSON report
//! behind `--trace-json`, the human summary behind `--stats`, and a
//! minimal JSON reader so integration tests can check emitted reports
//! without an external JSON crate.

use std::collections::BTreeMap;

use crate::json;

/// One non-empty histogram bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket (0, then `2^i - 1`).
    pub le: u64,
    /// Observations that landed in it.
    pub count: u64,
}

/// A frozen histogram: totals plus the non-empty buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// The non-empty buckets, ascending by bound.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A frozen copy of a whole [`crate::Registry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// A counter's value, 0 when it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's level, 0 when it was never registered.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, when it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as a deterministic JSON document (names
    /// sorted; hand-rolled — the workspace is dependency-free by
    /// design).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_str(k)));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_str(k)));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                json_str(k),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"le\": {}, \"count\": {}}}", b.le, b.count));
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`] (any
    /// whitespace; unknown keys rejected — the format is ours).
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let value = json::parse(text)?;
        let top = value.as_object("top level")?;
        let mut snap = Snapshot::default();
        for (key, v) in top {
            match key.as_str() {
                "counters" => {
                    for (name, n) in v.as_object("counters")? {
                        snap.counters.insert(name.clone(), n.as_u64(name)?);
                    }
                }
                "gauges" => {
                    for (name, n) in v.as_object("gauges")? {
                        snap.gauges.insert(name.clone(), n.as_i64(name)?);
                    }
                }
                "histograms" => {
                    for (name, h) in v.as_object("histograms")? {
                        let mut hs = HistogramSnapshot::default();
                        for (field, fv) in h.as_object(name)? {
                            match field.as_str() {
                                "count" => hs.count = fv.as_u64(field)?,
                                "sum" => hs.sum = fv.as_u64(field)?,
                                "min" => hs.min = fv.as_u64(field)?,
                                "max" => hs.max = fv.as_u64(field)?,
                                "buckets" => {
                                    for b in fv.as_array(field)? {
                                        let fields = b.as_object("bucket")?;
                                        let mut bucket = HistogramBucket { le: 0, count: 0 };
                                        for (bk, bv) in fields {
                                            match bk.as_str() {
                                                "le" => bucket.le = bv.as_u64(bk)?,
                                                "count" => bucket.count = bv.as_u64(bk)?,
                                                other => {
                                                    return Err(format!(
                                                        "unknown bucket key '{other}'"
                                                    ))
                                                }
                                            }
                                        }
                                        hs.buckets.push(bucket);
                                    }
                                }
                                other => {
                                    return Err(format!("unknown histogram key '{other}'"));
                                }
                            }
                        }
                        snap.histograms.insert(name.clone(), hs);
                    }
                }
                other => return Err(format!("unknown top-level key '{other}'")),
            }
        }
        Ok(snap)
    }

    /// Renders the human `--stats` summary: counters and gauges in name
    /// order, then one line per histogram with count/mean/min/max.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("obs: no metrics recorded\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<44} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<44} count {}  mean {}  min {}  max {}\n",
                    h.count,
                    fmt_ns(h.mean()),
                    fmt_ns(h.min),
                    fmt_ns(h.max),
                ));
            }
        }
        out
    }
}

/// Formats a (nanosecond) value for the human summary. All histograms in
/// this workspace record nanoseconds; raw-valued histograms would simply
/// read as "ns" and still be unambiguous next to the JSON report.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Escapes a string into a JSON string literal.
fn json_str(s: &str) -> String {
    json::escape(s)
}
