//! Point-in-time registry snapshots: the machine-readable JSON report
//! behind `--trace-json`, the human summary behind `--stats`, and a
//! minimal JSON reader so integration tests can check emitted reports
//! without an external JSON crate.

use std::collections::BTreeMap;

/// One non-empty histogram bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket (0, then `2^i - 1`).
    pub le: u64,
    /// Observations that landed in it.
    pub count: u64,
}

/// A frozen histogram: totals plus the non-empty buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// The non-empty buckets, ascending by bound.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A frozen copy of a whole [`crate::Registry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// A counter's value, 0 when it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's level, 0 when it was never registered.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, when it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as a deterministic JSON document (names
    /// sorted; hand-rolled — the workspace is dependency-free by
    /// design).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_str(k)));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_str(k)));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                json_str(k),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"le\": {}, \"count\": {}}}", b.le, b.count));
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`] (any
    /// whitespace; unknown keys rejected — the format is ours).
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let value = json::parse(text)?;
        let top = value.as_object("top level")?;
        let mut snap = Snapshot::default();
        for (key, v) in top {
            match key.as_str() {
                "counters" => {
                    for (name, n) in v.as_object("counters")? {
                        snap.counters.insert(name.clone(), n.as_u64(name)?);
                    }
                }
                "gauges" => {
                    for (name, n) in v.as_object("gauges")? {
                        snap.gauges.insert(name.clone(), n.as_i64(name)?);
                    }
                }
                "histograms" => {
                    for (name, h) in v.as_object("histograms")? {
                        let mut hs = HistogramSnapshot::default();
                        for (field, fv) in h.as_object(name)? {
                            match field.as_str() {
                                "count" => hs.count = fv.as_u64(field)?,
                                "sum" => hs.sum = fv.as_u64(field)?,
                                "min" => hs.min = fv.as_u64(field)?,
                                "max" => hs.max = fv.as_u64(field)?,
                                "buckets" => {
                                    for b in fv.as_array(field)? {
                                        let fields = b.as_object("bucket")?;
                                        let mut bucket = HistogramBucket { le: 0, count: 0 };
                                        for (bk, bv) in fields {
                                            match bk.as_str() {
                                                "le" => bucket.le = bv.as_u64(bk)?,
                                                "count" => bucket.count = bv.as_u64(bk)?,
                                                other => {
                                                    return Err(format!(
                                                        "unknown bucket key '{other}'"
                                                    ))
                                                }
                                            }
                                        }
                                        hs.buckets.push(bucket);
                                    }
                                }
                                other => {
                                    return Err(format!("unknown histogram key '{other}'"));
                                }
                            }
                        }
                        snap.histograms.insert(name.clone(), hs);
                    }
                }
                other => return Err(format!("unknown top-level key '{other}'")),
            }
        }
        Ok(snap)
    }

    /// Renders the human `--stats` summary: counters and gauges in name
    /// order, then one line per histogram with count/mean/min/max.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("obs: no metrics recorded\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<44} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<44} count {}  mean {}  min {}  max {}\n",
                    h.count,
                    fmt_ns(h.mean()),
                    fmt_ns(h.min),
                    fmt_ns(h.max),
                ));
            }
        }
        out
    }
}

/// Formats a (nanosecond) value for the human summary. All histograms in
/// this workspace record nanoseconds; raw-valued histograms would simply
/// read as "ns" and still be unambiguous next to the JSON report.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Escapes a string into a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal recursive-descent JSON reader — just enough to read back
/// the documents this crate writes (objects, arrays, strings, integers,
/// booleans, null).
mod json {
    /// A parsed JSON value. Object member order is preserved. `Bool`
    /// and `Null` payloads are parsed for completeness but no snapshot
    /// field reads them.
    #[allow(dead_code)]
    pub(crate) enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        Str(String),
        Int(i128),
        Bool(bool),
        Null,
    }

    impl Value {
        pub(crate) fn as_object(&self, what: &str) -> Result<&Vec<(String, Value)>, String> {
            match self {
                Value::Object(m) => Ok(m),
                _ => Err(format!("{what}: expected an object")),
            }
        }

        pub(crate) fn as_array(&self, what: &str) -> Result<&Vec<Value>, String> {
            match self {
                Value::Array(a) => Ok(a),
                _ => Err(format!("{what}: expected an array")),
            }
        }

        pub(crate) fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Int(n) => {
                    u64::try_from(*n).map_err(|_| format!("{what}: {n} out of u64 range"))
                }
                _ => Err(format!("{what}: expected an integer")),
            }
        }

        pub(crate) fn as_i64(&self, what: &str) -> Result<i64, String> {
            match self {
                Value::Int(n) => {
                    i64::try_from(*n).map_err(|_| format!("{what}: {n} out of i64 range"))
                }
                _ => Err(format!("{what}: expected an integer")),
            }
        }
    }

    pub(crate) fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => keyword(b, pos, "true", Value::Bool(true)),
            Some(b'f') => keyword(b, pos, "false", Value::Bool(false)),
            Some(b'n') => keyword(b, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            _ => Err(format!("unexpected input at byte {pos}")),
        }
    }

    fn keyword(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut members = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            expect(b, pos, b':')?;
            members.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u{hex} escape"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe: take the
                    // longest prefix str::from_utf8 accepts).
                    let rest = &b[*pos..];
                    let len = (1..=4.min(rest.len()))
                        .find(|&n| std::str::from_utf8(&rest[..n]).is_ok())
                        .ok_or("invalid utf-8 in string".to_string())?;
                    out.push_str(std::str::from_utf8(&rest[..len]).expect("checked"));
                    *pos += len;
                }
            }
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).expect("digits are utf-8");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| format!("bad number '{text}'"))
    }
}
