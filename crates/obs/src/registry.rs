//! The registry and its lock-free instrument handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::snapshot::{HistogramBucket, HistogramSnapshot, Snapshot};

/// Number of histogram buckets. Bucket 0 holds the value 0; bucket `i`
/// (for `i >= 1`) holds values in `[2^(i-1), 2^i)`, except the last,
/// which is open-ended. 64 buckets cover the full `u64` range, so a
/// nanosecond histogram spans sub-nanosecond to ~584 years.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The shared storage behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index for `v`: 0 for 0, else `floor(log2(v)) + 1`,
    /// capped at the last bucket.
    pub(crate) fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| HistogramBucket {
                    le: bucket_upper_bound(i),
                    count: c,
                })
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The inclusive upper bound of bucket `i` (`0` for bucket 0, `2^i - 1`
/// otherwise; the last bucket saturates to `u64::MAX`).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonic event counter. Cloning shares the underlying atomic; the
/// default value is a no-op handle that records nothing.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores every increment (what disabled registries
    /// hand out).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (relaxed).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A signed level that can rise and fall (live cache entries, live
/// nodes). Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A handle that ignores every update.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Raises the level by `n` (relaxed).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Lowers the level by `n` (relaxed).
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Sets the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// The current level (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map(|g| g.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A fixed-bucket log-scale histogram handle. Cloning shares the
/// underlying storage.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that ignores every observation.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one observation (relaxed; no locks, no allocation).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Number of observations recorded so far (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map(|h| h.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Whether this handle actually records (false for no-op handles).
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

/// An RAII timing guard: records its wall-clock lifetime, in
/// nanoseconds, into a histogram when dropped. Obtained from
/// [`Registry::span`] or the [`crate::span!`] macro.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Option<Instant>,
}

impl Span {
    /// A span over the given histogram. No clock is read when the
    /// histogram is a no-op handle.
    pub fn new(hist: Histogram) -> Span {
        let start = hist.is_live().then(Instant::now);
        Span { hist, start }
    }

    /// A span that records nothing.
    pub fn noop() -> Span {
        Span {
            hist: Histogram::noop(),
            start: None,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Instrument *registration* (the `counter`/`gauge`/`histogram` lookups)
/// takes a read-write lock and is meant for construction time; the
/// returned handles are lock-free and are what hot paths hold. A
/// disabled registry ([`Registry::disabled`]) short-circuits before any
/// lock and hands out no-op handles.
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCore>>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry: handles record for real.
    pub fn new() -> Registry {
        Registry {
            enabled: true,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// A disabled registry: every handle is a no-op and nothing is ever
    /// stored. This is the process-wide default.
    pub fn disabled() -> Registry {
        Registry {
            enabled: false,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The counter named `name`, created at 0 on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        if let Some(c) = self.counters.read().expect("obs lock").get(name) {
            return Counter(Some(c.clone()));
        }
        let mut w = self.counters.write().expect("obs lock");
        Counter(Some(w.entry(name.to_string()).or_default().clone()))
    }

    /// The gauge named `name`, created at 0 on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::noop();
        }
        if let Some(g) = self.gauges.read().expect("obs lock").get(name) {
            return Gauge(Some(g.clone()));
        }
        let mut w = self.gauges.write().expect("obs lock");
        Gauge(Some(w.entry(name.to_string()).or_default().clone()))
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        if let Some(h) = self.histograms.read().expect("obs lock").get(name) {
            return Histogram(Some(h.clone()));
        }
        let mut w = self.histograms.write().expect("obs lock");
        Histogram(Some(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramCore::new()))
                .clone(),
        ))
    }

    /// Opens a timing span recording into the `span.<name>.ns`
    /// histogram on drop. Disabled registries return a no-op guard
    /// without reading the clock.
    pub fn span(&self, name: &str) -> Span {
        if !self.enabled {
            return Span::noop();
        }
        Span::new(self.histogram(&format!("span.{name}.ns")))
    }

    /// A point-in-time copy of every instrument, for rendering or
    /// serialization. Relaxed reads: values recorded by threads that
    /// have not yet been joined may be mid-update, which is fine for a
    /// diagnostic report (the CLIs snapshot after all work completes).
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("obs lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("obs lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("obs lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}
