//! A minimal recursive-descent JSON reader — just enough to read back the
//! documents this workspace writes (objects, arrays, strings, integers,
//! booleans, null). Shared by [`Snapshot::from_json`](crate::Snapshot) and
//! the lint cache loader; the workspace is dependency-free by design, so
//! this stands in for an external JSON crate. No floats: every numeric
//! field we persist is an integer.

/// A parsed JSON value. Object member order is preserved.
pub enum Value {
    /// `{...}` — members in source order.
    Object(Vec<(String, Value)>),
    /// `[...]`.
    Array(Vec<Value>),
    /// A string literal.
    Str(String),
    /// An integer (`i128` covers every `u64` and `i64` we persist).
    Int(i128),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// The members of an object, or an error naming `what` was expected.
    pub fn as_object(&self, what: &str) -> Result<&Vec<(String, Value)>, String> {
        match self {
            Value::Object(m) => Ok(m),
            _ => Err(format!("{what}: expected an object")),
        }
    }

    /// The items of an array.
    pub fn as_array(&self, what: &str) -> Result<&Vec<Value>, String> {
        match self {
            Value::Array(a) => Ok(a),
            _ => Err(format!("{what}: expected an array")),
        }
    }

    /// A string value.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }

    /// A boolean value.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("{what}: expected a boolean")),
        }
    }

    /// An unsigned 64-bit integer.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Value::Int(n) => u64::try_from(*n).map_err(|_| format!("{what}: {n} out of u64 range")),
            _ => Err(format!("{what}: expected an integer")),
        }
    }

    /// A signed 64-bit integer.
    pub fn as_i64(&self, what: &str) -> Result<i64, String> {
        match self {
            Value::Int(n) => i64::try_from(*n).map_err(|_| format!("{what}: {n} out of i64 range")),
            _ => Err(format!("{what}: expected an integer")),
        }
    }
}

/// Parses a complete JSON document (trailing data is an error).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

/// Escapes a string into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Value::Str(string(b, pos)?)),
        Some(b't') => keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => keyword(b, pos, "false", Value::Bool(false)),
        Some(b'n') => keyword(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn keyword(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        expect(b, pos, b':')?;
        members.push((key, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| format!("bad \\u{hex} escape"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe: take the
                // longest prefix str::from_utf8 accepts).
                let rest = &b[*pos..];
                let len = (1..=4.min(rest.len()))
                    .find(|&n| std::str::from_utf8(&rest[..n]).is_ok())
                    .ok_or("invalid utf-8 in string".to_string())?;
                out.push_str(std::str::from_utf8(&rest[..len]).expect("checked"));
                *pos += len;
            }
        }
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are utf-8");
    text.parse::<i128>()
        .map(Value::Int)
        .map_err(|_| format!("bad number '{text}'"))
}
