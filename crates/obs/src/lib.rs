//! `clarify-obs` — hermetic, zero-dependency observability for the
//! clarify workspace.
//!
//! The synthesis loop (classify → retrieve → synthesize → verify →
//! disambiguate) is a multi-stage pipeline whose tail latency and failure
//! modes are invisible without per-stage instrumentation. This crate
//! provides the one shared vocabulary every layer records into:
//!
//! - [`Counter`]: a monotonic `AtomicU64`, incremented with relaxed
//!   ordering (events: ite calls, cache hits, questions asked, punts).
//! - [`Gauge`]: a signed level (`AtomicI64`) that can rise and fall
//!   (live BDD nodes, live `ite`-cache entries).
//! - [`Histogram`]: a fixed array of power-of-two buckets plus
//!   count/sum/min/max, all relaxed atomics — no locks, no allocation on
//!   the record path (span durations, per-round latencies).
//! - [`Span`]: an RAII guard from [`Registry::span`] or the [`span!`]
//!   macro that records its wall-clock lifetime into a histogram named
//!   `span.<name>.ns` on drop.
//!
//! # Global or injected
//!
//! Instruments live in a [`Registry`]. Code can take a registry
//! explicitly (the BDD manager's `with_registry` constructor, used by
//! tests that need exact isolated totals) or use the process-wide one via
//! [`global`]. The global registry starts **disabled**: every handle it
//! hands out is a no-op (an `Option` check, no atomics touched, no
//! `Instant::now()` calls), so uninstrumented runs pay almost nothing.
//! The CLIs install an enabled registry when `--trace-json` or `--stats`
//! is passed; [`install`] swaps it in process-wide.
//!
//! # The metrics-never-affect-output invariant
//!
//! Nothing in this crate is ever *read* by the algorithms it observes:
//! handles are write-only until a [`Registry::snapshot`] at exit. Serial
//! and parallel runs of the engine therefore stay byte-identical with
//! tracing enabled — metric *values* may differ run to run (timings,
//! interleavings), but engine output cannot. `tests/par_determinism.rs`
//! pins this with a live registry installed.
//!
//! # Thread safety
//!
//! All instruments are relaxed atomics behind `Arc`s, so handles can be
//! cloned into `clarify-par` worker threads freely. Relaxed ordering is
//! sufficient because no metric value ever gates a memory access in the
//! observed code: each counter is an independent statistic, and the final
//! snapshot happens-after all recording via the pool's thread joins.

#![warn(missing_docs)]

pub mod json;
mod registry;
mod snapshot;

pub use registry::{Counter, Gauge, Histogram, Registry, Span, HISTOGRAM_BUCKETS};
pub use snapshot::{HistogramBucket, HistogramSnapshot, Snapshot};

use std::sync::{Arc, OnceLock, RwLock};

/// The process-wide registry cell; starts disabled.
fn global_cell() -> &'static RwLock<Arc<Registry>> {
    static GLOBAL: OnceLock<RwLock<Arc<Registry>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Arc::new(Registry::disabled())))
}

/// The current process-wide registry (disabled until [`install`] is
/// called). Handles are captured from whatever registry is current at
/// capture time; instruments created before an `install` keep recording
/// into the old (usually disabled) registry.
pub fn global() -> Arc<Registry> {
    global_cell().read().expect("obs global lock").clone()
}

/// Installs `registry` as the process-wide registry and returns a handle
/// to it. Pass [`Registry::disabled`] to turn global recording back off.
pub fn install(registry: Registry) -> Arc<Registry> {
    let arc = Arc::new(registry);
    *global_cell().write().expect("obs global lock") = arc.clone();
    arc
}

/// Opens a [`Span`] on the global registry: `let _guard =
/// clarify_obs::span!("pivot_scan");` records the guard's lifetime into
/// the `span.pivot_scan.ns` histogram when it drops. No-op (and no
/// clock read) while the global registry is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
}

#[cfg(test)]
mod tests;
