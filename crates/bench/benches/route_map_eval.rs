//! Concrete route-map evaluation throughput (the reference semantics the
//! symbolic layer is checked against).

use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_netconfig::Config;
use clarify_nettypes::BgpRoute;

const ISP_OUT: &str = "\
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
";

fn routes() -> Vec<BgpRoute> {
    (0u32..64)
        .map(|i| {
            BgpRoute::with_defaults(clarify_nettypes::Prefix::from_u32(
                i << 24 | 0x0001_0000,
                16,
            ))
            .path(&[i % 7, 32 + (i % 2)])
            .lp(if i % 3 == 0 { 300 } else { 100 })
        })
        .collect()
}

fn bench_eval(c: &mut Criterion) {
    let cfg = Config::parse(ISP_OUT).expect("parses");
    let rs = routes();
    c.bench_function("netconfig/eval_route_map_64_routes", |b| {
        b.iter(|| {
            for r in &rs {
                black_box(cfg.eval_route_map("ISP_OUT", r).expect("eval"));
            }
        });
    });
}

fn bench_parse_print(c: &mut Criterion) {
    c.bench_function("netconfig/parse", |b| {
        b.iter(|| black_box(Config::parse(ISP_OUT).expect("parses")));
    });
    let cfg = Config::parse(ISP_OUT).expect("parses");
    c.bench_function("netconfig/print", |b| {
        b.iter(|| black_box(cfg.to_string()));
    });
}

fn bench_acl_eval(c: &mut Criterion) {
    let mut text = String::from("ip access-list extended BIG\n");
    for i in 0..64 {
        text.push_str(&format!(
            " {} tcp 10.{}.0.0/16 any eq {}\n",
            if i % 2 == 0 { "permit" } else { "deny" },
            i,
            1000 + i
        ));
    }
    let cfg = Config::parse(&text).expect("parses");
    let pkt = clarify_nettypes::Packet::tcp(
        std::net::Ipv4Addr::new(10, 63, 1, 1),
        5,
        std::net::Ipv4Addr::new(1, 1, 1, 1),
        1063,
    );
    let mut g = c.benchmark_group("netconfig/eval_acl");
    g.bench_with_input(BenchmarkId::from_parameter(64), &cfg, |b, cfg| {
        b.iter(|| black_box(cfg.eval_acl("BIG", &pkt).expect("eval")));
    });
    g.finish();
}

criterion_group!(benches, bench_eval, bench_parse_print, bench_acl_eval);
criterion_main!(benches);
