//! E10: daemon throughput and turn latency under a synthetic client
//! storm (ISSUE tentpole bench).
//!
//! A real daemon is bound on an ephemeral port; `CLIENTS` threads each
//! drive `SESSIONS_PER_CLIENT` full E1 conversations over TCP (open →
//! ask → 2 × answer → close — the §2 worked example, always choosing
//! OPTION 1). Every request/response roundtrip is timed individually.
//!
//! Reported (via `clarify_testkit::bench::emit_record`, so the records
//! land in `CLARIFY_BENCH_JSON` alongside the Criterion-facade benches):
//!
//! - `serve/e1_storm/turn_p50`, `turn_p99` — per-turn roundtrip latency
//!   percentiles across every client (includes the daemon's ≤1ms poll
//!   sleep, the honest socket-to-socket number);
//! - `serve/e1_storm/session` — mean wall-clock per complete session,
//!   whose reciprocal is sessions/sec (also printed);
//! - `serve/e1_storm/bdd_gc_runs`, `bdd_gc_freed_nodes`,
//!   `bdd_live_nodes` — kernel collection telemetry snapshotted after the
//!   storm (the daemon runs in-process, so its managers report to the
//!   global registry). `live_nodes` of 0 after every session closes is
//!   the no-leak statement; `gc_runs` of 0 says sessions stayed below
//!   the collection floor and never paid a GC pause.
//!
//! `CLARIFY_BENCH_QUICK=1` shrinks the storm for the CI smoke pass.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use clarify_obs::json;
use clarify_serve::{Server, ServerConfig};
use clarify_testkit::bench::emit_record;

const ISP_OUT: &str = "\
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
";

const PROMPT: &str = "Write a route-map stanza that permits routes containing the prefix \
100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. \
Their MED value should be set to 55.";

fn quick() -> bool {
    std::env::var("CLARIFY_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    /// One timed roundtrip. Returns (response, ns).
    fn turn(&mut self, line: &str) -> (String, u64) {
        let start = Instant::now();
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read");
        let ns = start.elapsed().as_nanos() as u64;
        assert!(resp.contains("\"ok\":true"), "turn failed: {resp}");
        (resp, ns)
    }
}

/// Runs one full E1 session; appends per-turn latencies to `turns`.
fn run_session(addr: std::net::SocketAddr, turns: &mut Vec<u64>) {
    let mut c = Client::connect(addr);
    let open = format!("{{\"op\":\"open\",\"config\":{}}}", json::escape(ISP_OUT));
    let (resp, ns) = c.turn(&open);
    turns.push(ns);
    let session: u64 = resp
        .split("\"session\":")
        .nth(1)
        .and_then(|s| s.trim_end_matches(['}', '\n']).parse().ok())
        .expect("session id");

    let ask = format!(
        "{{\"op\":\"ask\",\"session\":{session},\"target\":\"ISP_OUT\",\"intent\":{}}}",
        json::escape(PROMPT)
    );
    let (mut resp, ns) = c.turn(&ask);
    turns.push(ns);
    let answer = format!("{{\"op\":\"answer\",\"session\":{session},\"choice\":1}}");
    let mut rounds = 0;
    while !resp.contains("\"done\":true") {
        let (r, ns) = c.turn(&answer);
        turns.push(ns);
        resp = r;
        rounds += 1;
        assert!(rounds < 10, "E1 did not converge: {resp}");
    }
    assert!(resp.contains("\"position\":0"), "E1 drifted: {resp}");
    let (_, ns) = c.turn(&format!("{{\"op\":\"close\",\"session\":{session}}}"));
    turns.push(ns);
}

fn main() {
    let (clients, sessions_per_client) = if quick() { (2, 2) } else { (4, 16) };

    let server = Server::bind(ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || server.run().expect("run"));

    // Warm-up session: JIT-free language, but the first session pays
    // lazy one-time costs (prompt DB) that would skew the distribution.
    run_session(addr, &mut Vec::new());

    let storm_start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut turns = Vec::new();
                for _ in 0..sessions_per_client {
                    run_session(addr, &mut turns);
                }
                turns
            })
        })
        .collect();
    let mut turns: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let storm_ns = storm_start.elapsed().as_nanos() as f64;

    // Shut the daemon down cleanly before reporting.
    let mut c = Client::connect(addr);
    c.stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("write");
    let mut resp = String::new();
    c.reader.read_line(&mut resp).expect("read");
    daemon.join().expect("daemon exits");

    turns.sort_unstable();
    let total_sessions = (clients * sessions_per_client) as f64;
    let pct = |p: f64| turns[((turns.len() - 1) as f64 * p) as usize] as f64;
    let (min, max) = (turns[0] as f64, turns[turns.len() - 1] as f64);
    let session_ns = storm_ns / total_sessions;

    emit_record(
        "serve/e1_storm/turn_p50",
        pct(0.50),
        min,
        max,
        turns.len(),
        1,
    );
    emit_record(
        "serve/e1_storm/turn_p99",
        pct(0.99),
        min,
        max,
        turns.len(),
        1,
    );
    emit_record(
        "serve/e1_storm/session",
        session_ns,
        session_ns,
        session_ns,
        1,
        clients * sessions_per_client,
    );

    // The daemon ran in-process, so the kernel's collection telemetry is
    // on the global registry: how often warm sessions collected, how much
    // they reclaimed, and the live-node gauge left after the whole storm
    // (the memory-flatness number — dead garbage does not count).
    let snap = clarify_obs::global().snapshot();
    let gc_runs = snap.counter("bdd.gc.runs") as f64;
    let gc_freed = snap.counter("bdd.gc.freed_nodes") as f64;
    let live_nodes = snap.gauge("bdd.unique_nodes") as f64;
    emit_record(
        "serve/e1_storm/bdd_gc_runs",
        gc_runs,
        gc_runs,
        gc_runs,
        1,
        1,
    );
    emit_record(
        "serve/e1_storm/bdd_gc_freed_nodes",
        gc_freed,
        gc_freed,
        gc_freed,
        1,
        1,
    );
    emit_record(
        "serve/e1_storm/bdd_live_nodes",
        live_nodes,
        live_nodes,
        live_nodes,
        1,
        1,
    );
    println!(
        "bench serve/e1_storm: {clients} clients x {sessions_per_client} sessions, \
         {} turns, {:.1} sessions/sec",
        turns.len(),
        total_sessions / (storm_ns / 1e9),
    );
}
