//! Cost of the full symbolic lint pass (`clarify-lint`) over generated
//! route-map and ACL configurations — the price of running it inside the
//! synthesis loop.

use clarify_rng::StdRng;
use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_lint::lint_config;
use clarify_netconfig::Config;
use clarify_workload::{cross_acl, nested_route_map_config};

fn bench_route_map_lint(c: &mut Criterion) {
    let mut g = c.benchmark_group("lint/route_map");
    for n in [4usize, 12, 24] {
        let cfg = nested_route_map_config("RM", n, n / 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| black_box(lint_config(cfg, None).expect("lint")));
        });
    }
    g.finish();
}

fn bench_acl_lint(c: &mut Criterion) {
    let mut g = c.benchmark_group("lint/acl");
    for (p, d) in [(6usize, 4usize), (12, 9)] {
        let mut cfg = Config::new();
        let acl = cross_acl(&mut StdRng::seed_from_u64(1), "A", p, d);
        cfg.acls.insert("A".to_string(), acl);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}rules", p + d)),
            &cfg,
            |b, cfg| {
                b.iter(|| black_box(lint_config(cfg, None).expect("lint")));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_route_map_lint, bench_acl_lint);
criterion_main!(benches);
