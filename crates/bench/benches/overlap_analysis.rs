//! The §3 overlap census machinery: exact interval arithmetic versus the
//! symbolic (BDD) cross-check on ACLs, and the route-map analysis.

use clarify_rng::StdRng;
use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_analysis::{
    acl_overlaps, acl_overlaps_symbolic, route_map_overlaps, PacketSpace, RouteSpace,
};
use clarify_workload::{cross_acl, nested_route_map_config};

fn bench_acl_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap/acl_interval");
    for (p, d) in [(6usize, 4usize), (12, 9), (20, 15)] {
        let acl = cross_acl(&mut StdRng::seed_from_u64(1), "A", p, d);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}rules", p + d)),
            &acl,
            |b, acl| {
                b.iter(|| black_box(acl_overlaps(acl)));
            },
        );
    }
    g.finish();
}

fn bench_acl_symbolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap/acl_symbolic");
    for (p, d) in [(6usize, 4usize), (12, 9)] {
        let acl = cross_acl(&mut StdRng::seed_from_u64(1), "A", p, d);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}rules", p + d)),
            &acl,
            |b, acl| {
                b.iter(|| {
                    let mut space = PacketSpace::new();
                    black_box(acl_overlaps_symbolic(&mut space, acl))
                });
            },
        );
    }
    g.finish();
}

fn bench_route_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap/route_map");
    for n in [4usize, 12, 24] {
        let cfg = nested_route_map_config("RM", n, n / 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            let rm = cfg.route_map("RM").expect("map").clone();
            b.iter(|| {
                let mut space = RouteSpace::new(&[cfg]).expect("space");
                black_box(route_map_overlaps(&mut space, cfg, &rm).expect("overlaps"))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_acl_interval,
    bench_acl_symbolic,
    bench_route_map
);
criterion_main!(benches);
