//! The Batfish-substitute analyses on the paper's configurations, plus the
//! A1 ablation: differential comparison with and without set-clause
//! differencing (permit/deny only).

use clarify_testkit::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clarify_analysis::{compare_route_policies, RouteSpace};
use clarify_netconfig::{insert_route_map_stanza, Action, Config};

const ISP_OUT: &str = "\
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
";

const SNIPPET: &str = "\
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
";

fn bench_space_build(c: &mut Criterion) {
    let base = Config::parse(ISP_OUT).expect("parses");
    let snip = Config::parse(SNIPPET).expect("parses");
    c.bench_function("analysis/route_space_build", |b| {
        b.iter(|| black_box(RouteSpace::new(&[&base, &snip]).expect("space")));
    });
}

fn bench_permit_set(c: &mut Criterion) {
    let base = Config::parse(ISP_OUT).expect("parses");
    c.bench_function("analysis/permit_set", |b| {
        b.iter(|| {
            let mut space = RouteSpace::new(&[&base]).expect("space");
            black_box(space.permit_set(&base, "ISP_OUT").expect("permit set"))
        });
    });
}

fn bench_search(c: &mut Criterion) {
    let base = Config::parse(ISP_OUT).expect("parses");
    c.bench_function("analysis/search_route_policies", |b| {
        b.iter(|| {
            let mut space = RouteSpace::new(&[&base]).expect("space");
            black_box(
                space
                    .search_route_policies(&base, "ISP_OUT", Action::Permit, None)
                    .expect("search"),
            )
        });
    });
}

fn bench_compare(c: &mut Criterion) {
    let base = Config::parse(ISP_OUT).expect("parses");
    let snip = Config::parse(SNIPPET).expect("parses");
    let (top, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", 0).expect("a");
    let (bot, _) = insert_route_map_stanza(&base, "ISP_OUT", &snip, "SET_METRIC", 3).expect("b");
    c.bench_function("analysis/compare_route_policies", |b| {
        b.iter(|| {
            let mut space = RouteSpace::new(&[&top, &bot]).expect("space");
            black_box(
                compare_route_policies(&mut space, &top, "ISP_OUT", &bot, "ISP_OUT", 4)
                    .expect("compare"),
            )
        });
    });

    // A1 ablation: the same comparison when set clauses are stripped, so
    // only permit/deny differences remain (what a coarser comparator that
    // ignores attribute rewrites would see).
    let strip = |cfg: &Config| {
        let mut out = cfg.clone();
        for rm in out.route_maps.values_mut() {
            for s in &mut rm.stanzas {
                s.sets.clear();
            }
        }
        out
    };
    let top_s = strip(&top);
    let bot_s = strip(&bot);
    c.bench_function("analysis/compare_without_set_differencing", |b| {
        b.iter(|| {
            let mut space = RouteSpace::new(&[&top_s, &bot_s]).expect("space");
            black_box(
                compare_route_policies(&mut space, &top_s, "ISP_OUT", &bot_s, "ISP_OUT", 4)
                    .expect("compare"),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_space_build,
    bench_permit_set,
    bench_search,
    bench_compare
);
criterion_main!(benches);
