//! Incremental vs full re-lint after a one-stanza edit (ISSUE satellite
//! d): the whole point of the diff-driven engine is that the cost of a
//! re-lint tracks the size of the *edit*, not the size of the config.
//!
//! Three paths per population:
//!
//! - `full`        — cold `lint_config` of the edited config (the oracle
//!   and the baseline everything is measured against);
//! - `incremental` — one-shot `lint_config_incremental` against the
//!   previous run's cache (what `lint --incremental` does: pays one route
//!   space build for the dirty map, splices the rest);
//! - `session`     — `IncrementalLinter::relint` alternating the edit and
//!   its revert, steady state (retained spaces; both versions' fire-sets
//!   are cached after the first lap, so this is the interactive-loop
//!   price).

use clarify_rng::StdRng;
use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_lint::{lint_config, lint_config_incremental, IncrementalLinter, LintCache};
use clarify_netconfig::{Action, Config, RouteMapStanza};
use clarify_workload::{clean_acl, cross_acl, nested_route_map_config};

/// Appends one match-all stanza to the named route-map — the canonical
/// one-object edit.
fn edited(base: &Config, map: &str) -> Config {
    let mut cfg = base.clone();
    let rm = cfg.route_maps.get_mut(map).expect("map exists");
    let seq = rm.stanzas.iter().map(|s| s.seq).max().unwrap_or(0) + 10;
    rm.stanzas
        .push(RouteMapStanza::match_all(seq, Action::Deny));
    cfg
}

/// A small config: one overlapping route-map and its prefix lists
/// (4 symbolic objects), the shape of the §2 worked example.
fn small_config() -> Config {
    nested_route_map_config("RM_0", 4, 2)
}

/// A campus-flavoured slice: 4 route-maps and 12 ACLs drawn from the §3
/// family generators (~28 symbolic objects with the ancillary lists) —
/// big enough that a full re-lint dwarfs the single dirty object.
fn campus_config() -> Config {
    let mut rng = StdRng::seed_from_u64(7);
    let mut cfg = nested_route_map_config("RM_0", 4, 2);
    for i in 1..4 {
        let extra = nested_route_map_config(&format!("RM_{i}"), 3, 1);
        cfg.route_maps.extend(extra.route_maps);
        cfg.prefix_lists.extend(extra.prefix_lists);
    }
    for i in 0..8 {
        let acl = clean_acl(&mut rng, &format!("ACL_CLEAN_{i}"), 6);
        cfg.acls.insert(acl.name.clone(), acl);
    }
    for i in 0..4 {
        let acl = cross_acl(&mut rng, &format!("ACL_CROSS_{i}"), 5, 2);
        cfg.acls.insert(acl.name.clone(), acl);
    }
    cfg
}

fn bench_population(c: &mut Criterion, label: &str, base: Config) {
    let next = edited(&base, "RM_0");
    // What `--save-cache` leaves behind, round-tripped through JSON as
    // the CLI would read it back.
    let cache_json = {
        let report = lint_config(&base, None).expect("base lint");
        LintCache::from_report(&base, &report).to_json()
    };
    let cache = LintCache::from_json(&cache_json).expect("cache parses");

    let mut g = c.benchmark_group(format!("incr/{label}"));
    g.bench_with_input(BenchmarkId::from_parameter("full"), &(), |b, ()| {
        b.iter(|| black_box(lint_config(&next, None).expect("lint")));
    });
    g.bench_with_input(BenchmarkId::from_parameter("incremental"), &(), |b, ()| {
        b.iter(|| {
            black_box(lint_config_incremental(&next, None, &cache).expect("incremental lint"))
        });
    });
    g.bench_with_input(BenchmarkId::from_parameter("session"), &(), |b, ()| {
        let (mut session, _) = IncrementalLinter::new(base.clone(), None).expect("open session");
        // Warm both versions' fire-sets so iterations measure the steady
        // state of an edit/revert loop, not first-touch builds.
        session.relint(next.clone(), None).expect("warm edit");
        session.relint(base.clone(), None).expect("warm revert");
        let mut flip = false;
        b.iter(|| {
            let cfg = if flip { base.clone() } else { next.clone() };
            flip = !flip;
            black_box(session.relint(cfg, None).expect("relint"))
        });
    });
    g.finish();
}

fn bench_small(c: &mut Criterion) {
    bench_population(c, "small", small_config());
}

fn bench_campus(c: &mut Criterion) {
    bench_population(c, "campus", campus_config());
}

criterion_group!(benches, bench_small, bench_campus);
criterion_main!(benches);
