//! Microbenchmarks for the BDD substrate: the cost floor under every
//! symbolic analysis.

use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_bdd::Manager;

fn bench_conjunction_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd/and_chain");
    for n in [16u32, 64, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut m = Manager::new(n);
                let lits: Vec<_> = (0..n).map(|v| m.var(v)).collect();
                black_box(m.and_all(lits))
            });
        });
    }
    g.finish();
}

fn bench_range_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd/range_const");
    for bits in [16usize, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut m = Manager::new(bits as u32);
                let vars: Vec<u32> = (0..bits as u32).collect();
                black_box(m.range_const(&vars, 100, 1u64 << (bits - 1)))
            });
        });
    }
    g.finish();
}

fn bench_exists(c: &mut Criterion) {
    c.bench_function("bdd/exists_16_of_32", |b| {
        let mut m = Manager::new(32);
        let vars: Vec<u32> = (0..32).collect();
        let f = m.range_const(&vars, 12345, 4_000_000_000);
        let quantified: Vec<u32> = (0..16).collect();
        b.iter(|| {
            let r = m.exists(f, &quantified);
            black_box(r)
        });
    });
}

fn bench_sat_count(c: &mut Criterion) {
    c.bench_function("bdd/sat_count_32", |b| {
        let mut m = Manager::new(32);
        let vars: Vec<u32> = (0..32).collect();
        let f = m.range_const(&vars, 1000, 3_000_000_000);
        b.iter(|| black_box(m.sat_count(f)));
    });
}

fn bench_witness(c: &mut Criterion) {
    c.bench_function("bdd/any_sat_32", |b| {
        let mut m = Manager::new(32);
        let vars: Vec<u32> = (0..32).collect();
        let f = m.range_const(&vars, 123_456_789, 3_000_000_000);
        b.iter(|| black_box(m.any_sat(f)));
    });
}

criterion_group!(
    benches,
    bench_conjunction_chain,
    bench_range_encoding,
    bench_exists,
    bench_sat_count,
    bench_witness
);
criterion_main!(benches);
