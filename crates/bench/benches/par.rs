//! Scaling of the `clarify-par` worker pool on a real symbolic workload —
//! the ACL overlap sweep that E3/E4 run per generated ACL — plus the raw
//! pool overhead on a trivial body.
//!
//! The thread count is passed explicitly (`par_map_init_with_threads`) so
//! the 1-thread row is the inline serial path and the other rows measure
//! the same workload through the pool. On a single-core host the sweep
//! rows will be ~flat (there is no parallel speedup to be had); the
//! interesting number there is how little the pool costs.

use clarify_rng::StdRng;
use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_analysis::acl_overlaps;
use clarify_netconfig::Acl;
use clarify_par::par_map_init_with_threads;
use clarify_workload::cross_acl;

fn bench_acl_sweep(c: &mut Criterion) {
    // A small population of moderately overlapping ACLs: big enough that
    // per-item work dwarfs chunk bookkeeping, small enough to iterate.
    let acls: Vec<Acl> = (0..16u64)
        .map(|i| cross_acl(&mut StdRng::seed_from_u64(100 + i), &format!("A{i}"), 6, 4))
        .collect();
    let mut g = c.benchmark_group("par/acl_sweep_16");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(par_map_init_with_threads(
                        threads,
                        &acls,
                        || (),
                        |_, _, acl| acl_overlaps(acl),
                    ))
                });
            },
        );
    }
    g.finish();
}

fn bench_pool_overhead(c: &mut Criterion) {
    // Near-zero-cost body: the measurement is pool setup + chunk claiming
    // + index-ordered collection for 1024 items.
    let items: Vec<u64> = (0..1024).collect();
    let mut g = c.benchmark_group("par/overhead_1024_items");
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(par_map_init_with_threads(
                        threads,
                        &items,
                        || (),
                        |_, _, &x| x.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    ))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_acl_sweep, bench_pool_overhead);
criterion_main!(benches);
