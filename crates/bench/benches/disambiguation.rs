//! End-to-end disambiguation cost (E6's runtime companion): wall-clock of
//! a full insert with binary search vs linear scan vs top/bottom-only as
//! the overlap count grows.

use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_core::{Disambiguator, IntentOracle, PlacementStrategy};
use clarify_netconfig::insert_route_map_stanza;
use clarify_workload::disambiguation_family;

fn bench_strategy(c: &mut Criterion, name: &str, strategy: PlacementStrategy, sizes: &[usize]) {
    let mut g = c.benchmark_group(format!("disambiguation/{name}"));
    g.sample_size(10);
    for &n in sizes {
        let (base, snip) = disambiguation_family(n);
        // Worst case for search: the intent sits at the bottom slot.
        let intended = insert_route_map_stanza(&base, "RM", &snip, "NEW", n)
            .expect("insert")
            .0;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut oracle = IntentOracle::new(&intended, "RM");
                black_box(
                    Disambiguator::new(strategy)
                        .insert(&base, "RM", &snip, "NEW", &mut oracle)
                        .expect("insert"),
                )
            });
        });
    }
    g.finish();
}

fn bench_binary(c: &mut Criterion) {
    bench_strategy(
        c,
        "binary_search",
        PlacementStrategy::BinarySearch,
        &[4, 8, 16],
    );
}

fn bench_linear(c: &mut Criterion) {
    bench_strategy(c, "linear_scan", PlacementStrategy::LinearScan, &[4, 8, 16]);
}

fn bench_top_bottom(c: &mut Criterion) {
    bench_strategy(
        c,
        "top_bottom",
        PlacementStrategy::TopBottomOnly,
        &[4, 8, 16],
    );
}

criterion_group!(benches, bench_binary, bench_linear, bench_top_bottom);

mod acl_side {
    use super::*;
    use clarify_core::{insert_acl_with_oracle, AclIntentOracle};
    use clarify_netconfig::{insert_acl_entry, Config};

    /// An ACL with n overlapping entries and a new entry overlapping all.
    fn family(n: usize) -> (Config, clarify_netconfig::AclEntry) {
        let mut text = String::from("ip access-list extended A\n");
        for i in 0..n {
            text.push_str(&format!(
                " {} tcp any any eq {}\n",
                if i % 2 == 0 { "permit" } else { "deny" },
                1000 + i
            ));
        }
        let cfg = Config::parse(&text).expect("parses");
        let entry = Config::parse("ip access-list extended X\n deny tcp 10.0.0.0/8 any\n")
            .expect("parses")
            .acls["X"]
            .entries[0]
            .clone();
        (cfg, entry)
    }

    pub fn bench_acl_disambiguation(c: &mut Criterion) {
        let mut g = c.benchmark_group("disambiguation/acl_binary_search");
        g.sample_size(10);
        for n in [4usize, 8, 16] {
            let (base, entry) = family(n);
            let intended_cfg = insert_acl_entry(&base, "A", entry.clone(), n).expect("insert");
            let intended = intended_cfg.acl("A").expect("acl").clone();
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
                b.iter(|| {
                    let mut oracle = AclIntentOracle {
                        intended: &intended,
                    };
                    black_box(
                        insert_acl_with_oracle(
                            &base,
                            "A",
                            &entry,
                            PlacementStrategy::BinarySearch,
                            &mut oracle,
                        )
                        .expect("insert"),
                    )
                });
            });
        }
        g.finish();
    }
}

criterion_group!(acl_benches, acl_side::bench_acl_disambiguation);
criterion_main!(benches, acl_benches);
