//! Microbenchmarks for the BDD kernel's data structures: unique-table
//! churn, computed-cache hit rate, and the E1 overlap workload they sit
//! under. The committed `BENCH_bdd.json` trajectory pins these medians
//! across kernel changes (the open-addressing rewrite was justified by a
//! before/after pair of these very numbers).

use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_analysis::{route_map_overlaps, RouteSpace};
use clarify_bdd::Manager;
use clarify_netconfig::Config;

/// Unique-table churn: a fresh manager per iteration, flooded with
/// distinct nodes. Every `mk` is a miss-then-insert, so the run time is
/// dominated by unique-table lookups, inserts, and rehashes — the
/// workload the open-addressed table exists for.
fn bench_unique_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_kernel/unique_churn");
    for n in [64u64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let vars: Vec<u32> = (0..32).collect();
            b.iter(|| {
                let mut m = Manager::new(32);
                let mut acc = clarify_bdd::Ref::FALSE;
                for k in 0..n {
                    // Knuth-scattered constants build disjoint deep paths:
                    // nearly every node is new to the table.
                    let v = k.wrapping_mul(2654435761) & 0xFFFF_FFFF;
                    let f = m.eq_const(&vars, v);
                    acc = m.or(acc, f);
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

/// Computed-cache hit rate: one long-lived manager re-asked the same
/// inter-range conjunctions/disjunctions over and over. After the first
/// pass everything is memoized, so run time measures probe cost (and,
/// across kernel generations, how much normalization widens hits).
fn bench_computed_hit_rate(c: &mut Criterion) {
    c.bench_function("bdd_kernel/computed_hit_rate", |b| {
        let mut m = Manager::new(32);
        let vars: Vec<u32> = (0..32).collect();
        let pool: Vec<_> = (0..8u64)
            .map(|i| m.range_const(&vars, i * 1000, i * 1000 + 50_000))
            .collect();
        b.iter(|| {
            let mut acc = clarify_bdd::Ref::TRUE;
            for &f in &pool {
                for &g in &pool {
                    let x = m.and(f, g);
                    let y = m.or(f, g);
                    let d = m.diff(x, y);
                    acc = m.xor(acc, d);
                }
            }
            black_box(acc)
        });
    });
}

/// The E1 overlap workload: build the §2 ISP_OUT route space and run the
/// pairwise overlap census, exactly what the disambiguator does before
/// its first question. Space construction is included — capacity hints
/// and table layout both land here.
fn bench_e1_overlap(c: &mut Criterion) {
    c.bench_function("bdd_kernel/e1_overlap", |b| {
        let cfg = Config::parse(clarify_bench::worked_example::ISP_OUT).expect("E1 config parses");
        let map = cfg.route_map("ISP_OUT").expect("map exists").clone();
        b.iter(|| {
            let mut space = RouteSpace::new(&[&cfg]).expect("space");
            black_box(route_map_overlaps(&mut space, &cfg, &map).expect("overlaps"))
        });
    });
}

/// Negation-heavy churn: alternating `not`/`xor` over wide interval
/// constraints. Without complement edges every negation materialises a
/// mirrored copy of its operand's DAG; with them it is a bit flip, so
/// both the node count and the time collapse. The peak live-node count is
/// printed once so the trajectory can pin the structural claim, not just
/// the timing.
fn bench_negation_heavy(c: &mut Criterion) {
    let vars: Vec<u32> = (0..32).collect();
    let run = |m: &mut Manager| {
        let mut acc = clarify_bdd::Ref::TRUE;
        for i in 0..24u64 {
            let r = m.range_const(&vars, i * 500, i * 500 + 40_000);
            let nr = m.not(r);
            let x = m.xor(acc, nr);
            acc = m.not(x);
        }
        acc
    };
    {
        // Node-count evidence (no GC runs here, so live == peak == total
        // allocated): the complement-edge kernel shares every negation.
        let mut m = Manager::new(32);
        run(&mut m);
        eprintln!(
            "bdd_kernel/negation_heavy: peak live nodes = {}",
            m.live_node_count()
        );
    }
    c.bench_function("bdd_kernel/negation_heavy", |b| {
        b.iter(|| {
            let mut m = Manager::new(32);
            black_box(run(&mut m))
        });
    });
}

/// Order-sensitivity: the textbook worst case, `AND_i (x_i <-> y_i)` with
/// every `x` above every `y` (exponential in n), queried by repeated
/// rounds of cofactor model counts — the `and` products memoize but every
/// count is a fresh O(nodes) sweep, the shape of a lint pass re-asking
/// emptiness/witness questions of one fire set. The `static` variant pays
/// the bad order on every sweep; `sifted` calls [`Manager::reorder`]
/// first — per iteration, so the measured win is net of the sifting pass
/// itself.
fn bench_reorder_sensitive(c: &mut Criterion) {
    let n = 11u32;
    let build = |m: &mut Manager| {
        let mut f = clarify_bdd::Ref::TRUE;
        for i in 0..n {
            let a = m.var(i);
            let b = m.var(n + i);
            let e = m.iff(a, b);
            f = m.and(f, e);
        }
        f
    };
    {
        let mut m = Manager::new(2 * n);
        let f = build(&mut m);
        let root = m.protect(f);
        let stats = m.reorder();
        eprintln!(
            "bdd_kernel/reorder_sensitive: nodes {} -> {} ({} swaps)",
            stats.before_nodes, stats.after_nodes, stats.swaps
        );
        m.unprotect(root);
    }
    let mut g = c.benchmark_group("bdd_kernel/reorder_sensitive");
    for sift in [false, true] {
        let id = if sift { "sifted" } else { "static" };
        g.bench_with_input(BenchmarkId::from_parameter(id), &sift, |b, &sift| {
            b.iter(|| {
                let mut m = Manager::new(2 * n);
                let f = build(&mut m);
                let root = m.protect(f);
                if sift {
                    m.reorder();
                }
                let f = root.as_ref();
                let mut acc = 0u128;
                for _round in 0..16 {
                    for i in 0..n {
                        let lit = m.var(i);
                        let cof = m.and(f, lit);
                        acc ^= m.sat_count_exact(cof);
                    }
                }
                m.unprotect(root);
                black_box(acc)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_unique_churn,
    bench_computed_hit_rate,
    bench_e1_overlap,
    bench_negation_heavy,
    bench_reorder_sensitive
);
criterion_main!(benches);
