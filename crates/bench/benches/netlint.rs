//! Cost of the cross-device lint pass (`NetworkLinter`): the 7-node E1
//! worked-example topology from `testdata/`, and a workload-generated
//! ring fabric whose per-router policies come from the §3-calibrated
//! nested-overlap family.

use std::path::Path;

use clarify_lint::NetworkLinter;
use clarify_netsim::{LoadedTopology, TopologySpec};
use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use clarify_workload::nested_route_map_config;
use std::hint::black_box;

fn load_e1() -> LoadedTopology {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../testdata");
    let text = std::fs::read_to_string(base.join("e1_topology.txt")).expect("topology file");
    TopologySpec::parse(&text)
        .expect("topology parses")
        .instantiate(&mut |p| std::fs::read_to_string(base.join(p)).map_err(|e| e.to_string()))
        .expect("topology instantiates")
}

/// A ring of `n` routers with alternating ASNs (so cross-AS
/// normalization is exercised), each importing through a generated
/// nested-overlap map and exporting through a permissive one.
fn ring_fabric(n: usize) -> LoadedTopology {
    let mut topo = String::new();
    for i in 0..n {
        let left = (i + n - 1) % n;
        let right = (i + 1) % n;
        topo.push_str(&format!(
            "router R{i} asn {} config r{i}.cfg\n  originate 10.{}.0.0/16\n\
             \x20 neighbor R{left} import IN export OUT\n\
             \x20 neighbor R{right} import IN export OUT\n",
            65000 + (i % 2),
            (i % 200) + 1,
        ));
    }
    let spec = TopologySpec::parse(&topo).expect("fabric parses");
    spec.instantiate(&mut |p: &str| {
        let i: usize = p
            .trim_start_matches('r')
            .trim_end_matches(".cfg")
            .parse()
            .unwrap();
        let mut text = nested_route_map_config("IN", 6, 3).to_string();
        text.push_str(&format!(
            "ip prefix-list OUT_ALL seq 5 permit 10.0.0.0/8 le 32\n\
             route-map OUT permit 10\n match ip address prefix-list OUT_ALL\n\
             set community 65000:{i} additive\n"
        ));
        Ok(text)
    })
    .expect("fabric instantiates")
}

fn bench_e1(c: &mut Criterion) {
    let loaded = load_e1();
    c.bench_function("netlint/e1_topology/7routers", |b| {
        b.iter(|| black_box(NetworkLinter::new(&loaded).lint().expect("lint")));
    });
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlint/ring_fabric");
    g.sample_size(10);
    for n in [4usize, 8] {
        let loaded = ring_fabric(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &loaded, |b, loaded| {
            b.iter(|| black_box(NetworkLinter::new(loaded).lint().expect("lint")));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e1, bench_ring);
criterion_main!(benches);
