//! Regex / automata benchmarks: compilation, matching, set operations,
//! and atomic-predicate construction (A1 ablation support).

use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_automata::{AtomSpace, Regex};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("automata/compile");
    for pattern in ["_32$", "_300:3_", "^(65[0-9][0-9][0-9])(_[0-9]+)*$"] {
        g.bench_with_input(BenchmarkId::from_parameter(pattern), &pattern, |b, p| {
            b.iter(|| black_box(Regex::parse(p).expect("valid").to_dfa()));
        });
    }
    g.finish();
}

fn bench_match(c: &mut Criterion) {
    let dfa = Regex::parse("_32$").expect("valid").to_dfa();
    let subject = "65000 64999 7018 174 32";
    c.bench_function("automata/match_as_path", |b| {
        b.iter(|| black_box(dfa.matches(subject)));
    });
}

fn bench_intersection(c: &mut Criterion) {
    let a = Regex::parse("_65000:[0-9]+_").expect("valid").to_dfa();
    let b2 = Regex::parse("_[0-9]+:1_").expect("valid").to_dfa();
    c.bench_function("automata/intersect", |b| {
        b.iter(|| black_box(a.intersect(&b2)));
    });
}

fn bench_atom_space(c: &mut Criterion) {
    let universe = Regex::parse("^[0-9][0-9]?[0-9]?[0-9]?[0-9]?:[0-9][0-9]?[0-9]?[0-9]?[0-9]?$")
        .expect("valid")
        .to_dfa();
    let mut g = c.benchmark_group("automata/atom_space");
    for n in [2usize, 4, 8] {
        let patterns: Vec<Regex> = (0..n)
            .map(|i| Regex::parse(&format!("_650{i:02}:[0-9]+_")).expect("valid"))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &patterns, |b, pats| {
            b.iter(|| black_box(AtomSpace::build(&universe, pats).expect("atoms")));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_match,
    bench_intersection,
    bench_atom_space
);
criterion_main!(benches);
