//! BGP simulator convergence cost on line and ring topologies with
//! per-neighbor policies.

use clarify_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clarify_netconfig::Config;
use clarify_netsim::{Network, NetworkBuilder};
use clarify_nettypes::Prefix;

fn line(n: usize) -> Network {
    let cfg = Config::parse("route-map PASS permit 10\n").expect("parses");
    let mut b = NetworkBuilder::new();
    for i in 0..n {
        let p: Prefix = format!("10.{i}.0.0/16").parse().expect("prefix");
        b.router(&format!("R{i}"), 65000 + i as u32)
            .config(cfg.clone())
            .originate(p);
    }
    for i in 1..n {
        let a = format!("R{}", i - 1);
        let bn = format!("R{i}");
        b.session_pair(&a, &bn, Some("PASS"), None, Some("PASS"), None)
            .expect("declared");
    }
    b.build().expect("builds")
}

fn ring(n: usize) -> Network {
    let mut b = NetworkBuilder::new();
    for i in 0..n {
        let p: Prefix = format!("10.{i}.0.0/16").parse().expect("prefix");
        b.router(&format!("R{i}"), 65000 + i as u32).originate(p);
    }
    for i in 0..n {
        b.link(&format!("R{i}"), &format!("R{}", (i + 1) % n))
            .expect("declared");
    }
    b.build().expect("builds")
}

fn bench_line(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/line");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(line(n).converge().expect("converges")));
        });
    }
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/ring");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(ring(n).converge().expect("converges")));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_line, bench_ring);
criterion_main!(benches);
