//! Experiment harnesses shared by the `e*` binaries, the Criterion
//! benches, and the repository's integration tests.

#![warn(missing_docs)]

pub mod census;
pub mod figure3;
pub mod worked_example;

pub use worked_example::worked_example_report;
