//! Experiment harnesses shared by the `e*` binaries, the Criterion
//! benches, and the repository's integration tests.

#![warn(missing_docs)]

pub mod figure3;
