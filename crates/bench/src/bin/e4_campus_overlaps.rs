//! E4 — the §3.2 campus-network overlap census.
//!
//! Usage: `e4_campus_overlaps [seed] [--threads N]` (seed defaults to 42;
//! threads default to `CLARIFY_THREADS` / `available_parallelism`).

#![warn(missing_docs)]

use clarify_bench::census::{acl_sweep, route_map_sweep, sweep_args};
use clarify_workload::{campus, AclCensus, RouteMapCensus};

fn main() {
    let (seed, threads) = sweep_args();
    println!("=== E4: campus network overlap census (seed {seed}) ===\n");
    let w = campus(seed);

    let sweep_start = std::time::Instant::now();
    let reports = acl_sweep(&w.acls);
    let c = AclCensus::of(&reports);
    println!("--- ACLs ---");
    println!(
        "examined:                               {:>6}   (paper: 11,088)",
        c.total
    );
    println!(
        "with conflicting overlaps:              {:>5.1}%   (paper: 37.7%)",
        100.0 * c.conflict_fraction()
    );
    println!(
        "of those, with more than 20 conflicts:  {:>5.1}%   (paper: 27%)",
        100.0 * c.gt20_of_conflicting()
    );
    println!(
        "with non-trivial overlaps (no subsets): {:>5.1}%   (paper: ~18.6%)",
        100.0 * c.nontrivial_fraction()
    );
    println!(
        "of those, with more than 20:            {:>5.1}%   (paper: 16.3%)",
        100.0 * c.gt20_of_nontrivial()
    );

    let mut rms = RouteMapCensus::default();
    let mut overlapping_details = Vec::new();
    let reports = route_map_sweep(&w.route_maps).expect("overlap analysis");
    for ((_, name), r) in w.route_maps.iter().zip(&reports) {
        if r.count() > 0 {
            overlapping_details.push((
                name.clone(),
                r.count(),
                r.pairs.iter().filter(|p| p.conflicting).count(),
            ));
        }
        rms.add(r);
    }
    println!("\n--- route-maps ---");
    println!("analyzed:                 {:>4}   (paper: 169)", rms.total);
    println!(
        "with overlapping stanzas: {:>4}   (paper: 2)",
        rms.with_overlap
    );
    for (name, pairs, conflicting) in overlapping_details {
        println!(
            "  {name}: {pairs} overlapping stanza pairs, {conflicting} conflicting   \
             (paper: one route-map with 3 pairs, 2 conflicting)"
        );
    }
    eprintln!(
        "\nsweep wall-clock: {:.1} ms ({threads} threads)",
        sweep_start.elapsed().as_secs_f64() * 1e3
    );
}
