//! E4 — the §3.2 campus-network overlap census.

#![warn(missing_docs)]

use clarify_analysis::{acl_overlaps, route_map_overlaps, RouteSpace};
use clarify_workload::{campus, AclCensus, RouteMapCensus};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    println!("=== E4: campus network overlap census (seed {seed}) ===\n");
    let w = campus(seed);

    let reports: Vec<_> = w.acls.iter().map(acl_overlaps).collect();
    let c = AclCensus::of(&reports);
    println!("--- ACLs ---");
    println!(
        "examined:                               {:>6}   (paper: 11,088)",
        c.total
    );
    println!(
        "with conflicting overlaps:              {:>5.1}%   (paper: 37.7%)",
        100.0 * c.conflict_fraction()
    );
    println!(
        "of those, with more than 20 conflicts:  {:>5.1}%   (paper: 27%)",
        100.0 * c.gt20_of_conflicting()
    );
    println!(
        "with non-trivial overlaps (no subsets): {:>5.1}%   (paper: ~18.6%)",
        100.0 * c.nontrivial_fraction()
    );
    println!(
        "of those, with more than 20:            {:>5.1}%   (paper: 16.3%)",
        100.0 * c.gt20_of_nontrivial()
    );

    let mut rms = RouteMapCensus::default();
    let mut overlapping_details = Vec::new();
    for (cfg, name) in &w.route_maps {
        let rm = cfg.route_map(name).expect("generated map exists").clone();
        let mut space = RouteSpace::new(&[cfg]).expect("space");
        let r = route_map_overlaps(&mut space, cfg, &rm).expect("overlap analysis");
        if r.count() > 0 {
            overlapping_details.push((
                name.clone(),
                r.count(),
                r.pairs.iter().filter(|p| p.conflicting).count(),
            ));
        }
        rms.add(&r);
    }
    println!("\n--- route-maps ---");
    println!("analyzed:                 {:>4}   (paper: 169)", rms.total);
    println!(
        "with overlapping stanzas: {:>4}   (paper: 2)",
        rms.with_overlap
    );
    for (name, pairs, conflicting) in overlapping_details {
        println!(
            "  {name}: {pairs} overlapping stanza pairs, {conflicting} conflicting   \
             (paper: one route-map with 3 pairs, 2 conflicting)"
        );
    }
}
