//! E6 — disambiguation query scaling (the §4 logarithmic-questions claim).
//! For route-maps with n overlapping stanzas, measures the number of user
//! questions asked by binary search, linear scan, and the prototype's
//! top/bottom-only mode, for the worst-case (bottom-slot) intent and
//! averaged over all slots.

#![warn(missing_docs)]

use clarify_core::{Disambiguator, IntentOracle, PlacementStrategy};
use clarify_netconfig::insert_route_map_stanza;
use clarify_workload::disambiguation_family;

fn questions(strategy: PlacementStrategy, n: usize, slot: usize) -> usize {
    let (base, snip) = disambiguation_family(n);
    let intended = insert_route_map_stanza(&base, "RM", &snip, "NEW", slot)
        .expect("insert")
        .0;
    let mut oracle = IntentOracle::new(&intended, "RM");
    Disambiguator::new(strategy)
        .insert(&base, "RM", &snip, "NEW", &mut oracle)
        .expect("disambiguation")
        .questions
}

fn main() {
    println!("=== E6: disambiguation questions vs overlapping stanzas ===\n");
    println!("n = number of existing stanzas the new stanza overlaps");
    println!("worst = intent at the bottom slot; avg = mean over all n+1 slots\n");
    println!(
        "{:>4}  {:>12}  {:>12}  {:>12}  {:>14}",
        "n", "binary worst", "binary avg", "linear worst", "ceil(log2 n+1)"
    );
    for n in [2usize, 4, 8, 16, 32, 64] {
        let bin_worst = questions(PlacementStrategy::BinarySearch, n, n);
        let lin_worst = questions(PlacementStrategy::LinearScan, n, n);
        let total: usize = (0..=n)
            .map(|slot| questions(PlacementStrategy::BinarySearch, n, slot))
            .sum();
        let avg = total as f64 / (n + 1) as f64;
        let bound = ((n + 1) as f64).log2().ceil() as usize;
        println!("{n:>4}  {bin_worst:>12}  {avg:>12.2}  {lin_worst:>12}  {bound:>14}");
        assert!(bin_worst <= bound, "binary search exceeded its bound");
        assert_eq!(lin_worst, n, "linear scan asks one question per overlap");
    }
    println!(
        "\nThe prototype's top/bottom-only mode always asks at most 1 question but can only \
         realize the two extreme placements (cf. §7 'the disambiguator presently only handles \
         two insertion locations')."
    );
}
