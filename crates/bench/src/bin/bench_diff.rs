//! Bench comparator: diffs fresh `CLARIFY_BENCH_JSON` records against a
//! committed trajectory baseline (e.g. `BENCH_bdd.json`).
//!
//! Usage:
//!   `bench_diff [--fail-over <pct>] <baseline.json> <fresh.json> [name-prefix]`
//!   `bench_diff [--fail-over <pct>] --all <fresh.json> <baseline.json>...`
//!
//! In `--all` mode every baseline is compared in turn, each under the
//! name prefix derived from its top-level `"bench"` field, and a summary
//! table follows the per-record lines.
//!
//! Both inputs are scanned for `"name"` / `"median_ns"` pairs with a
//! tolerant hand-rolled tokenizer, so the pretty-printed trajectory file
//! and the one-record-per-line bench output parse identically (keeping
//! the workspace dependency-free). When a name repeats — a trajectory
//! holds one record set per point — the *last* occurrence wins, i.e. the
//! newest committed medians. Regressions beyond the threshold print
//! GitHub `::warning::` annotations; by default the exit status is always
//! 0, because shared CI runners make medians too noisy to gate merges on.
//!
//! `--fail-over <pct>` arms a *hard* gate on top of the warnings: any
//! record whose fresh median exceeds baseline by more than `<pct>` percent
//! prints a `::error::` annotation and the process exits 1. The gate is
//! meant for catastrophic structural regressions (a lost fast path shows
//! up as 3-10x, runner noise as 1.2-1.5x), so CI arms it with a generous
//! percentage and only for the kernel baseline it trusts most.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Fresh-vs-baseline median ratio above which a warning is emitted.
const WARN_RATIO: f64 = 1.5;

/// Extracts `(name, median_ns)` pairs: every `"median_ns"` value is
/// attributed to the nearest preceding `"name"` value, which matches both
/// the trajectory layout and the JSON-lines bench records.
fn scan_records(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut current_name: Option<String> = None;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let (key, after_key) = match read_string(bytes, i) {
            Some(x) => x,
            None => break,
        };
        i = after_key;
        match key.as_str() {
            "name" => {
                if let Some((value, next)) = read_string_value(bytes, i) {
                    current_name = Some(value);
                    i = next;
                }
            }
            "median_ns" => {
                if let (Some(name), Some((value, next))) =
                    (current_name.take(), read_number_value(bytes, i))
                {
                    out.insert(name, value);
                    i = next;
                }
            }
            _ => {}
        }
    }
    out
}

/// Reads the quoted string starting at `start` (which must index a `"`).
fn read_string(bytes: &[u8], start: usize) -> Option<(String, usize)> {
    let mut j = start + 1;
    let begin = j;
    while j < bytes.len() && bytes[j] != b'"' {
        // Bench names and keys never contain escapes; bail if one shows up.
        if bytes[j] == b'\\' {
            return None;
        }
        j += 1;
    }
    if j >= bytes.len() {
        return None;
    }
    Some((
        String::from_utf8_lossy(&bytes[begin..j]).into_owned(),
        j + 1,
    ))
}

/// After a key, skips `: \t\n` and reads a quoted string value.
fn read_string_value(bytes: &[u8], mut i: usize) -> Option<(String, usize)> {
    while i < bytes.len() && ((bytes[i] as char).is_whitespace() || bytes[i] == b':') {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'"' {
        read_string(bytes, i)
    } else {
        None
    }
}

/// After a key, skips `: \t\n` and reads a float literal.
fn read_number_value(bytes: &[u8], mut i: usize) -> Option<(f64, usize)> {
    while i < bytes.len() && ((bytes[i] as char).is_whitespace() || bytes[i] == b':') {
        i += 1;
    }
    let begin = i;
    while i < bytes.len() && matches!(bytes[i], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E') {
        i += 1;
    }
    std::str::from_utf8(&bytes[begin..i])
        .ok()?
        .parse()
        .ok()
        .map(|v| (v, i))
}

fn human(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Extracts a baseline's top-level `"bench"` field, which names the
/// bench target whose records it holds (record names start `<bench>/`).
fn bench_field(text: &str) -> Option<String> {
    let idx = text.find("\"bench\"")?;
    read_string_value(text.as_bytes(), idx + "\"bench\"".len()).map(|(v, _)| v)
}

fn read(path: &str) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            println!("bench_diff: cannot read {path}: {e} (skipping, warn-only)");
            None
        }
    }
}

/// Per-baseline comparison tallies for the `--all` summary table.
#[derive(Default)]
struct Tally {
    compared: usize,
    ok: usize,
    improved: usize,
    regressed: usize,
    missing: usize,
    /// Records past the `--fail-over` gate (0 when the gate is unarmed).
    failed: usize,
}

/// Compares every `prefix`-named baseline record against `fresh`,
/// printing one line per record and a `::warning::` annotation per
/// regression (a `::error::` when the `fail_over` ratio gate trips).
/// Returns the tallies.
fn compare(
    baseline: &BTreeMap<String, f64>,
    baseline_path: &str,
    fresh: &BTreeMap<String, f64>,
    fresh_path: &str,
    prefix: &str,
    fail_over: Option<f64>,
) -> Tally {
    let mut tally = Tally::default();
    for (name, &base_ns) in baseline.iter().filter(|(n, _)| n.starts_with(prefix)) {
        let Some(&fresh_ns) = fresh.get(name) else {
            println!("::warning::bench_diff: {name} present in {baseline_path} but missing from {fresh_path}");
            tally.missing += 1;
            continue;
        };
        tally.compared += 1;
        let ratio = fresh_ns / base_ns;
        let over_gate = fail_over.is_some_and(|g| ratio > g);
        let verdict = if over_gate {
            tally.failed += 1;
            "FAILED"
        } else if ratio > WARN_RATIO {
            tally.regressed += 1;
            "REGRESSED"
        } else if ratio < 1.0 / WARN_RATIO {
            tally.improved += 1;
            "improved"
        } else {
            tally.ok += 1;
            "ok"
        };
        println!(
            "bench_diff: {name:45} baseline {:>10}  fresh {:>10}  x{ratio:.2}  {verdict}",
            human(base_ns),
            human(fresh_ns),
        );
        if over_gate {
            println!(
                "::error::bench_diff: {name} median {} vs committed {} ({ratio:.2}x, hard gate {:.2}x) — \
                 beyond runner noise; a structural regression must be fixed or the baseline consciously re-recorded",
                human(fresh_ns),
                human(base_ns),
                fail_over.unwrap_or(f64::INFINITY),
            );
        } else if ratio > WARN_RATIO {
            println!(
                "::warning::bench_diff: {name} median {} vs committed {} ({ratio:.2}x, threshold {WARN_RATIO}x) — \
                 noise or a real regression; re-run locally with `cargo bench -p clarify-bench`",
                human(fresh_ns),
                human(base_ns),
            );
        }
    }
    if tally.compared == 0 && tally.missing == 0 {
        println!("::warning::bench_diff: no overlapping '{prefix}*' records between {baseline_path} and {fresh_path}");
    }
    tally
}

/// `--all` mode: one fresh record set against every committed baseline,
/// with a summary table. Exit status stays 0 unless the `fail_over` gate
/// is armed and a record trips it.
fn run_all(fresh_path: &str, baseline_paths: &[String], fail_over: Option<f64>) -> ExitCode {
    let Some(fresh_text) = read(fresh_path) else {
        return ExitCode::SUCCESS;
    };
    let fresh = scan_records(&fresh_text);
    let mut rows = Vec::new();
    for path in baseline_paths {
        let Some(text) = read(path) else {
            continue;
        };
        let Some(bench) = bench_field(&text) else {
            println!("::warning::bench_diff: {path} has no top-level \"bench\" field; skipping");
            continue;
        };
        let baseline = scan_records(&text);
        let prefix = format!("{bench}/");
        let tally = compare(&baseline, path, &fresh, fresh_path, &prefix, fail_over);
        rows.push((path.clone(), tally));
    }
    println!(
        "\nbench_diff summary ({fresh_path} vs {} baselines):",
        rows.len()
    );
    println!(
        "{:<22} {:>8} {:>6} {:>9} {:>10} {:>8} {:>7}",
        "baseline", "records", "ok", "improved", "regressed", "missing", "failed"
    );
    for (path, t) in &rows {
        println!(
            "{:<22} {:>8} {:>6} {:>9} {:>10} {:>8} {:>7}",
            path, t.compared, t.ok, t.improved, t.regressed, t.missing, t.failed
        );
    }
    if rows.iter().any(|(_, t)| t.failed > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Pulls `--fail-over <pct>` out of the argument list (any position),
/// returning the remaining args and the gate as a fresh/baseline *ratio*
/// (`--fail-over 200` = fail beyond 3.0x).
fn parse_fail_over(args: Vec<String>) -> (Vec<String>, Option<f64>) {
    let mut rest = Vec::with_capacity(args.len());
    let mut gate = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--fail-over" {
            match it.next().and_then(|p| p.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => gate = Some(1.0 + pct / 100.0),
                _ => {
                    eprintln!("bench_diff: --fail-over needs a positive percentage");
                    rest.push(a); // let the usage error surface downstream
                }
            }
        } else {
            rest.push(a);
        }
    }
    (rest, gate)
}

fn main() -> ExitCode {
    let (args, fail_over) = parse_fail_over(std::env::args().skip(1).collect());
    if args.first().map(String::as_str) == Some("--all") {
        let Some(fresh_path) = args.get(1) else {
            eprintln!(
                "usage: bench_diff [--fail-over <pct>] --all <fresh.json> <baseline.json>..."
            );
            return ExitCode::SUCCESS;
        };
        return run_all(fresh_path, &args[2..], fail_over);
    }
    let (baseline_path, fresh_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(f)) => (b.clone(), f.clone()),
        _ => {
            eprintln!(
                "usage: bench_diff [--fail-over <pct>] <baseline.json> <fresh.json> [name-prefix]"
            );
            eprintln!(
                "       bench_diff [--fail-over <pct>] --all <fresh.json> <baseline.json>..."
            );
            // Still warn-only: a misinvocation should not fail the job.
            return ExitCode::SUCCESS;
        }
    };
    let prefix = args.get(2).cloned().unwrap_or_else(|| "bdd_kernel/".into());
    let (Some(baseline_text), Some(fresh_text)) = (read(&baseline_path), read(&fresh_path)) else {
        return ExitCode::SUCCESS;
    };
    let baseline = scan_records(&baseline_text);
    let fresh = scan_records(&fresh_text);
    let tally = compare(
        &baseline,
        &baseline_path,
        &fresh,
        &fresh_path,
        &prefix,
        fail_over,
    );
    if tally.failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
