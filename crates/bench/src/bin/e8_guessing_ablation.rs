//! E8 — ablation for the paper's §7 question: could the LLM itself play
//! the disambiguator? A disambiguator that *guesses* instead of asking
//! (always-top, always-bottom, or a seeded coin flip — stand-ins for a
//! model answering behavioural questions without ground truth) is measured
//! against the interactive symbolic disambiguator on the slot-accuracy
//! metric: for a new stanza overlapping n existing stanzas, each of the
//! n+1 insertion slots is a distinct possible intent; a correct
//! disambiguator must realize all of them.

#![warn(missing_docs)]

use clarify_core::{
    verify_against_intent, Choice, Disambiguator, FnOracle, IntentOracle, PlacementStrategy,
};
use clarify_netconfig::insert_route_map_stanza;
use clarify_workload::disambiguation_family;

fn accuracy(n: usize, mut answer: impl FnMut() -> Choice) -> (usize, usize) {
    let (base, snip) = disambiguation_family(n);
    let mut correct = 0;
    for slot in 0..=n {
        let intended = insert_route_map_stanza(&base, "RM", &snip, "NEW", slot)
            .expect("insert")
            .0;
        let mut oracle = FnOracle(|_: &clarify_core::DisambiguationQuestion| answer());
        let result = Disambiguator::new(PlacementStrategy::BinarySearch)
            .insert(&base, "RM", &snip, "NEW", &mut oracle)
            .expect("insert runs");
        if verify_against_intent(&result.config, "RM", &intended, "RM").is_ok() {
            correct += 1;
        }
    }
    (correct, n + 1)
}

fn interactive_accuracy(n: usize) -> (usize, usize) {
    let (base, snip) = disambiguation_family(n);
    let mut correct = 0;
    for slot in 0..=n {
        let intended = insert_route_map_stanza(&base, "RM", &snip, "NEW", slot)
            .expect("insert")
            .0;
        let mut oracle = IntentOracle::new(&intended, "RM");
        let result = Disambiguator::new(PlacementStrategy::BinarySearch)
            .insert(&base, "RM", &snip, "NEW", &mut oracle)
            .expect("insert runs");
        if verify_against_intent(&result.config, "RM", &intended, "RM").is_ok() {
            correct += 1;
        }
    }
    (correct, n + 1)
}

fn main() {
    println!("=== E8: guessing vs asking (the §7 'LLM as disambiguator' question) ===\n");
    println!("slot accuracy = intents (out of n+1 insertion slots) realized correctly\n");
    println!(
        "{:>4}  {:>12}  {:>14}  {:>14}  {:>12}",
        "n", "interactive", "always-top", "always-bottom", "coin flip"
    );
    for n in [2usize, 4, 8, 16] {
        let (ic, total) = interactive_accuracy(n);
        let (tc, _) = accuracy(n, || Choice::First);
        let (bc, _) = accuracy(n, || Choice::Second);
        // Deterministic xorshift coin.
        let mut state = 0x9E3779B97F4A7C15u64 ^ (n as u64);
        let (rc, _) = accuracy(n, move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state & 1 == 0 {
                Choice::First
            } else {
                Choice::Second
            }
        });
        println!(
            "{n:>4}  {:>7}/{total:<4}  {:>9}/{total:<4}  {:>9}/{total:<4}  {:>7}/{total:<4}",
            ic, tc, bc, rc
        );
        assert_eq!(ic, total, "the interactive disambiguator is always right");
        assert_eq!(tc, 1, "always-top realizes only the top slot");
        assert_eq!(bc, 1, "always-bottom realizes only the bottom slot");
    }
    println!(
        "\nWithout asking, any fixed or random answering policy realizes exactly one slot's \
         intent; user interaction (or ground truth) is information-theoretically required — \
         the paper's motivation for a symbolic disambiguator in the loop rather than letting \
         the LLM guess."
    );
}
