//! E3 — the §3.1 cloud-WAN overlap census. Regenerates the numbers the
//! paper reports for the cloud provider's WAN configurations.
//!
//! Usage: `e3_cloud_overlaps [seed] [--threads N]` (seed defaults to 42;
//! threads default to `CLARIFY_THREADS` / `available_parallelism`).

#![warn(missing_docs)]

use clarify_bench::census::{acl_sweep, route_map_sweep, sweep_args};
use clarify_workload::{cloud, AclCensus, RouteMapCensus};

fn main() {
    let (seed, threads) = sweep_args();
    println!("=== E3: cloud WAN overlap census (seed {seed}) ===\n");
    let w = cloud(seed);

    let sweep_start = std::time::Instant::now();
    let reports = acl_sweep(&w.acls);
    let acl = AclCensus::of(&reports);
    println!("--- ACLs ---");
    println!(
        "examined (non-identical):        {:>5}   (paper: 237)",
        acl.total
    );
    println!(
        "with at least one overlap:       {:>5}   (paper: 69)",
        acl.with_overlap
    );
    println!(
        "with more than 20 overlaps:      {:>5}   (paper: 48)",
        acl.overlap_gt20
    );
    println!(
        "largest pair count in one ACL:   {:>5}   (paper: \"over 100 pairs\")",
        acl.max_pairs
    );

    let mut rms = RouteMapCensus::default();
    for r in route_map_sweep(&w.route_maps).expect("overlap analysis") {
        rms.add(&r);
    }
    println!("\n--- route-maps ---");
    println!(
        "examined policies:               {:>5}   (paper: 800)",
        rms.total
    );
    println!(
        "with overlapping stanzas:        {:>5}   (paper: 140)",
        rms.with_overlap
    );
    println!(
        "with more than 20 overlaps:      {:>5}   (paper: 3)",
        rms.overlap_gt20
    );
    eprintln!(
        "\nsweep wall-clock: {:.1} ms ({threads} threads)",
        sweep_start.elapsed().as_secs_f64() * 1e3
    );
}
