//! E3 — the §3.1 cloud-WAN overlap census. Regenerates the numbers the
//! paper reports for the cloud provider's WAN configurations.

#![warn(missing_docs)]

use clarify_analysis::{acl_overlaps, route_map_overlaps, RouteSpace};
use clarify_workload::{cloud, AclCensus, RouteMapCensus};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    println!("=== E3: cloud WAN overlap census (seed {seed}) ===\n");
    let w = cloud(seed);

    let reports: Vec<_> = w.acls.iter().map(acl_overlaps).collect();
    let acl = AclCensus::of(&reports);
    println!("--- ACLs ---");
    println!(
        "examined (non-identical):        {:>5}   (paper: 237)",
        acl.total
    );
    println!(
        "with at least one overlap:       {:>5}   (paper: 69)",
        acl.with_overlap
    );
    println!(
        "with more than 20 overlaps:      {:>5}   (paper: 48)",
        acl.overlap_gt20
    );
    println!(
        "largest pair count in one ACL:   {:>5}   (paper: \"over 100 pairs\")",
        acl.max_pairs
    );

    let mut rms = RouteMapCensus::default();
    for (cfg, name) in &w.route_maps {
        let rm = cfg.route_map(name).expect("generated map exists").clone();
        let mut space = RouteSpace::new(&[cfg]).expect("space");
        let r = route_map_overlaps(&mut space, cfg, &rm).expect("overlap analysis");
        rms.add(&r);
    }
    println!("\n--- route-maps ---");
    println!(
        "examined policies:               {:>5}   (paper: 800)",
        rms.total
    );
    println!(
        "with overlapping stanzas:        {:>5}   (paper: 140)",
        rms.with_overlap
    );
    println!(
        "with more than 20 overlaps:      {:>5}   (paper: 3)",
        rms.overlap_gt20
    );
}
