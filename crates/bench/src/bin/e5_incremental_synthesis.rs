//! E5 — the §5 evaluation: incremental synthesis of every route-map on
//! the Figure 3 topology, the Figure 4 statistics table, and the five
//! global policy checks on the converged network.

#![warn(missing_docs)]

use clarify_bench::figure3;

fn main() {
    println!("=== E5: incremental synthesis on the Figure 3 topology ===\n");
    let run = figure3::run().unwrap_or_else(|e| panic!("evaluation failed: {e}"));

    println!("--- Figure 4: per-router statistics ---");
    println!("Router  #Route-maps  #LLM calls  #Disambiguation   (total pipeline calls)");
    let paper = [("M", 4, 9, 5), ("R1", 5, 12, 6), ("R2", 5, 12, 6)];
    for ((name, s), (pname, pm, pc, pd)) in run.stats.iter().zip(paper) {
        assert_eq!(*name, pname);
        println!(
            "{name:<7} {:>11}  {:>10}  {:>15}   ({})",
            s.route_maps, s.synthesis_calls, s.disambiguations, s.total_llm_calls
        );
        println!("  paper {:>11}  {:>10}  {:>15}", pm, pc, pd);
    }

    println!("\n--- global policies on the converged network ---");
    let mut all = true;
    for (desc, ok) in &run.policies {
        println!("[{}] {desc}", if *ok { "PASS" } else { "FAIL" });
        all &= ok;
    }
    println!(
        "\nresult: {}",
        if all {
            "all five global policies hold"
        } else {
            "POLICY VIOLATION — see above"
        }
    );

    // A peek at one RIB for the curious.
    println!("\n--- M's RIB ---");
    if let Some(rib) = run.network.rib("M") {
        for (p, e) in rib {
            println!(
                "{p:<18} via {:<5} lp {:<4} path {}",
                e.learned_from.as_deref().unwrap_or("local"),
                e.route.local_pref,
                e.route.as_path
            );
        }
    }
    if !all {
        std::process::exit(1);
    }
}
