//! E9 — network-level safe updates on the Figure 3 topology: every
//! Clarify update is simulated against the five §5 global policies
//! (expressed as declarative invariants) before being committed; an
//! update that would leak routes is rolled back with the violated
//! policies named. This is the §3 motivation ("a small error in intent
//! can ... cause major network downtime") closed end to end.

#![warn(missing_docs)]

use clarify_bench::figure3;
use clarify_core::{
    Disambiguator, IntentOracle, Invariant, NetworkSession, NetworkUpdateOutcome, PlacementStrategy,
};
use clarify_llm::{RouteMapIntent, SemanticBackend};
use clarify_netconfig::insert_route_map_stanza;
use clarify_nettypes::Prefix;

fn pfx(s: &str) -> Prefix {
    s.parse().expect("static prefix")
}

fn invariants() -> Vec<Invariant> {
    let mut inv = vec![
        // P1: reused prefixes mutually invisible.
        Invariant::LocallyOriginated {
            router: "MGMT".into(),
            prefix: pfx("192.168.0.0/16"),
        },
        Invariant::LocallyOriginated {
            router: "DC1".into(),
            prefix: pfx("192.168.0.0/16"),
        },
        Invariant::Unreachable {
            router: "DC2".into(),
            prefix: pfx("192.168.0.0/16"),
        },
        // P2 + P3: the service prefix is visible at M, via R1.
        Invariant::Reachable {
            router: "M".into(),
            prefix: pfx("10.1.0.0/16"),
        },
        Invariant::PrefersVia {
            router: "M".into(),
            prefix: pfx("10.1.0.0/16"),
            neighbor: "R1".into(),
        },
        // P5: no transit between the ISPs; our public block stays visible.
        Invariant::Unreachable {
            router: "ISP2".into(),
            prefix: pfx("8.8.0.0/16"),
        },
        Invariant::Unreachable {
            router: "ISP1".into(),
            prefix: pfx("9.9.0.0/16"),
        },
        Invariant::Reachable {
            router: "ISP1".into(),
            prefix: pfx("203.0.113.0/24"),
        },
        // Private space never reaches the ISPs.
        Invariant::Unreachable {
            router: "ISP1".into(),
            prefix: pfx("10.1.0.0/16"),
        },
        Invariant::Unreachable {
            router: "ISP1".into(),
            prefix: pfx("10.200.0.0/16"),
        },
    ];
    // P4: the injected bogon stops at the borders.
    for r in ["R1", "R2", "M", "DC1", "DC2", "MGMT"] {
        inv.push(Invariant::Unreachable {
            router: r.into(),
            prefix: pfx("192.168.99.0/24"),
        });
    }
    inv
}

fn main() {
    println!("=== E9: what-if simulation + invariant-gated commits ===\n");
    println!("building the Figure 3 network (synthesizing all route-maps)...");
    let run = figure3::run().expect("evaluation runs");
    let invs = invariants();
    println!(
        "installing {} invariants (the five global policies)\n",
        invs.len()
    );
    let mut ns = NetworkSession::new(
        run.network,
        SemanticBackend::new(),
        3,
        Disambiguator::new(PlacementStrategy::BinarySearch),
        invs,
    )
    .expect("initial network satisfies all invariants");

    // Update 1: block a hijacking AS on R1's import — safe, commits.
    let prompt1 = "Write a route-map stanza that denies routes originating from AS 666.";
    println!("update 1 on R1/ISP_IN: {prompt1}");
    let base = ns.network().router("R1").expect("router").config.clone();
    let intent = RouteMapIntent::parse(prompt1).expect("intent parses");
    let (snippet, name) = intent.to_snippet().expect("snippet");
    let intended = insert_route_map_stanza(&base, "ISP_IN", &snippet, &name, 0)
        .expect("insert")
        .0;
    let mut oracle = IntentOracle::new(&intended, "ISP_IN");
    match ns
        .add_stanza_on("R1", "ISP_IN", prompt1, &mut oracle)
        .expect("update runs")
    {
        NetworkUpdateOutcome::Committed {
            questions,
            llm_calls,
        } => println!(
            "  COMMITTED ({questions} question(s), {llm_calls} LLM calls); all invariants hold\n"
        ),
        other => panic!("expected commit, got {other:?}"),
    }

    // Update 2: a well-meaning but leaky export change — "make our
    // datacenter space reachable" — placed above the private-space deny.
    let prompt2 = "Write a route-map stanza that permits routes containing the prefix \
                   10.0.0.0/8 with mask length less than or equal to 24.";
    println!("update 2 on R1/ISP_OUT: {prompt2}");
    let base = ns.network().router("R1").expect("router").config.clone();
    let intent = RouteMapIntent::parse(prompt2).expect("intent parses");
    let (snippet, name) = intent.to_snippet().expect("snippet");
    let intended = insert_route_map_stanza(&base, "ISP_OUT", &snippet, &name, 0)
        .expect("insert")
        .0;
    let mut oracle = IntentOracle::new(&intended, "ISP_OUT");
    match ns
        .add_stanza_on("R1", "ISP_OUT", prompt2, &mut oracle)
        .expect("update runs")
    {
        NetworkUpdateOutcome::RolledBack { violated, .. } => {
            println!("  ROLLED BACK — the update would have violated:");
            for v in &violated {
                println!("    - {v}");
            }
        }
        other => panic!("expected rollback, got {other:?}"),
    }

    // The network still satisfies everything.
    println!(
        "\nfinal check: ISP1 sees 10.1.0.0/16? {}",
        ns.network().can_reach("ISP1", &pfx("10.1.0.0/16"))
    );
    assert!(!ns.network().can_reach("ISP1", &pfx("10.1.0.0/16")));
    println!("the committed update survived; the leaky one never reached the network.");
}
