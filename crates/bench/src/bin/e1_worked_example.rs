//! E1/E2 — the §2 worked example, end to end: the ISP_OUT route-map, the
//! LLM prompt, the synthesized snippet, the JSON spec, the four candidate
//! placements of Figure 2, and the §2.2 differential example with
//! OPTION 1 / OPTION 2.

#![warn(missing_docs)]

fn main() {
    print!("{}", clarify_bench::worked_example_report());
}
