//! E7 — the Figure 1 verification loop under an erring LLM: synthesis
//! retries and punt rates as a function of the backend error rate.

#![warn(missing_docs)]

use clarify_llm::{FaultyBackend, Pipeline, PipelineOutcome, SemanticBackend};

const PROMPT: &str = "Write a route-map stanza that permits routes containing the prefix \
100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. \
Their MED value should be set to 55.";

fn main() {
    let trials = 200u64;
    let max_attempts = 3;
    println!("=== E7: the verify-retry-punt loop under fault injection ===\n");
    println!("{trials} trials per error rate, retry threshold {max_attempts}\n");
    println!(
        "{:>6}  {:>9}  {:>12}  {:>9}  {:>15}  {:>18}",
        "rate", "successes", "avg attempts", "punts", "faults injected", "punts w/ feedback"
    );
    for rate10 in 0..=10u32 {
        let rate = f64::from(rate10) / 10.0;
        let mut successes = 0u32;
        let mut punts = 0u32;
        let mut attempts_total = 0usize;
        let mut injected = 0usize;
        for seed in 0..trials {
            let backend = FaultyBackend::new(SemanticBackend::new(), rate, seed);
            let mut pipeline = Pipeline::new(backend, max_attempts);
            match pipeline.synthesize(PROMPT).expect("pipeline runs") {
                PipelineOutcome::RouteMap { attempts, .. } => {
                    successes += 1;
                    attempts_total += attempts;
                }
                PipelineOutcome::Punt { .. } => punts += 1,
                PipelineOutcome::Acl { .. } => unreachable!("route-map prompt"),
            }
            injected += pipeline.backend().injected();
        }
        // Feedback ablation: the same trials with a backend that repairs
        // its output once the verifier's feedback arrives.
        let mut heeding_punts = 0u32;
        for seed in 0..trials {
            let backend = FaultyBackend::new(SemanticBackend::new(), rate, seed).heeding_feedback();
            let mut pipeline = Pipeline::new(backend, max_attempts);
            if !pipeline
                .synthesize(PROMPT)
                .expect("pipeline runs")
                .is_success()
            {
                heeding_punts += 1;
            }
        }
        let avg = if successes > 0 {
            attempts_total as f64 / f64::from(successes)
        } else {
            f64::NAN
        };
        println!(
            "{rate:>6.1}  {successes:>9}  {avg:>12.2}  {punts:>9}  {injected:>15}  {heeding_punts:>18}"
        );
    }
    println!(
        "\nAt rate 0.0 the simulated LLM behaves like the paper's GPT-4 on its workload: every \
         stanza verifies on the first pass. Higher rates exercise the feedback/retry loop and \
         the punt-to-user edge (step 5 of Figure 1). The last column is the feedback ablation: \
         an LLM that repairs its output once the verifier's feedback arrives never punts \
         (below rate 1.0 it may not even need the feedback)."
    );
}
