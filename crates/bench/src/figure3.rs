//! The §5 evaluation scenario: the Figure 3 topology, the Lightyear-style
//! decomposition of its five global policies into per-router local
//! policies, the incremental synthesis of every route-map through the full
//! Clarify loop, and the global policy checks on the converged network.
//!
//! Topology (Figure 3, reconstructed from the text):
//!
//! ```text
//!   ISP1 ─ R1 ─┬─ DC1 (10.1.0.0/16 service, 10.3.0.0/16, reused 192.168.0.0/16)
//!              ├─ DC2 (10.2.0.0/16)
//!   ISP2 ─ R2 ─┘
//!      R1 ─ M ─ R2
//!          │
//!        MGMT (10.200.0.0/16, reused 192.168.0.0/16)
//! ```
//!
//! Global policies (§5):
//! 1. the reused prefix `192.168.0.0/16` in the datacenter and in
//!    management are mutually invisible;
//! 2. the service prefix `10.1.0.0/16` is visible at M;
//! 3. M prefers the path through R1 to reach `10.1.0.0/16`;
//! 4. no bogon prefixes are advertised;
//! 5. ISP1 and ISP2 are mutually unreachable through our network.

use clarify_core::{
    verify_against_intent, AddStanzaOutcome, ClarifyError, ClarifySession, Disambiguator,
    IntentOracle, PlacementStrategy,
};
use clarify_llm::SemanticBackend;
use clarify_netconfig::Config;
use clarify_netsim::{Network, NetworkBuilder};
use clarify_nettypes::Prefix;

/// One route-map to synthesize: its name, the intent prompts in build
/// order, and the intended final policy (what the simulated user wants).
pub struct MapPlan {
    /// Route-map name.
    pub name: &'static str,
    /// English intents, one per stanza, in the order the operator issues
    /// them.
    pub prompts: Vec<String>,
    /// The intended final route-map, as IOS text (the intent oracle's
    /// ground truth).
    pub intended: Config,
}

/// The synthesis plan for one router.
pub struct RouterPlan {
    /// Router name.
    pub name: &'static str,
    /// Route-maps in build order.
    pub maps: Vec<MapPlan>,
}

/// Per-router measurements, one Figure 4 row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterStats {
    /// Unique route-maps synthesized (the paper's `#Route-maps`).
    pub route_maps: usize,
    /// Synthesis (generation) calls — one per stanza, matching the
    /// paper's `#LLM calls` accounting.
    pub synthesis_calls: usize,
    /// All LLM calls our pipeline makes (classify + spec extraction +
    /// synthesis = 3 per stanza on a clean run).
    pub total_llm_calls: usize,
    /// Questions the user answered (the paper's `#Disambiguation`).
    pub disambiguations: usize,
}

/// Result of running the full evaluation.
pub struct Figure3Run {
    /// `(router, stats)` rows in Figure 4 order.
    pub stats: Vec<(&'static str, RouterStats)>,
    /// `(policy description, holds?)` for the five global policies.
    pub policies: Vec<(String, bool)>,
    /// The converged network, for further inspection.
    pub network: Network,
}

fn prompt_permit_prefix(prefix: &str, le: u8) -> String {
    format!(
        "Write a route-map stanza that permits routes containing the prefix {prefix} with mask \
         length less than or equal to {le}."
    )
}

fn prompt_deny_or_longer(prefix: &str) -> String {
    format!("Write a route-map stanza that denies routes containing the prefix {prefix} or longer.")
}

/// The synthesis plan for router M (4 route-maps, 9 stanzas).
pub fn plan_m() -> RouterPlan {
    RouterPlan {
        name: "M",
        maps: vec![
            MapPlan {
                name: "FROM_R1",
                prompts: vec![
                    prompt_permit_prefix("10.0.0.0/8", 24),
                    prompt_deny_or_longer("10.1.128.0/17"),
                    format!(
                        "Write a route-map stanza that permits routes containing the prefix \
                         10.1.0.0/16 with mask length less than or equal to 24. Their local \
                         preference should be set to 300."
                    ),
                ],
                intended: Config::parse(
                    "ip prefix-list HIDE seq 5 permit 10.1.128.0/17 le 32\n\
                     ip prefix-list SVC seq 5 permit 10.1.0.0/16 le 24\n\
                     ip prefix-list ALL seq 5 permit 10.0.0.0/8 le 24\n\
                     route-map FROM_R1 deny 10\n match ip address prefix-list HIDE\n\
                     route-map FROM_R1 permit 20\n match ip address prefix-list SVC\n set local-preference 300\n\
                     route-map FROM_R1 permit 30\n match ip address prefix-list ALL\n",
                )
                .expect("intended FROM_R1 parses"),
            },
            MapPlan {
                name: "FROM_R2",
                prompts: vec![
                    prompt_permit_prefix("10.0.0.0/8", 24),
                    prompt_deny_or_longer("10.250.0.0/16"),
                ],
                intended: Config::parse(
                    "ip prefix-list BLOCK seq 5 permit 10.250.0.0/16 le 32\n\
                     ip prefix-list ALL seq 5 permit 10.0.0.0/8 le 24\n\
                     route-map FROM_R2 deny 10\n match ip address prefix-list BLOCK\n\
                     route-map FROM_R2 permit 20\n match ip address prefix-list ALL\n",
                )
                .expect("intended FROM_R2 parses"),
            },
            MapPlan {
                name: "TO_DC",
                prompts: vec![
                    prompt_permit_prefix("10.0.0.0/8", 24),
                    prompt_deny_or_longer("192.168.0.0/16"),
                    prompt_deny_or_longer("10.200.128.0/17"),
                ],
                intended: Config::parse(
                    "ip prefix-list MHIDE seq 5 permit 10.200.128.0/17 le 32\n\
                     ip prefix-list REUSED seq 5 permit 192.168.0.0/16 le 32\n\
                     ip prefix-list ALL seq 5 permit 10.0.0.0/8 le 24\n\
                     route-map TO_DC deny 10\n match ip address prefix-list MHIDE\n\
                     route-map TO_DC permit 20\n match ip address prefix-list ALL\n\
                     route-map TO_DC deny 30\n match ip address prefix-list REUSED\n",
                )
                .expect("intended TO_DC parses"),
            },
            MapPlan {
                name: "FROM_MGMT",
                prompts: vec!["Write a route-map stanza that permits all routes.".to_string()],
                intended: Config::parse("route-map FROM_MGMT permit 10\n")
                    .expect("intended FROM_MGMT parses"),
            },
        ],
    }
}

/// The synthesis plan for a border router (R1 or R2): 5 route-maps, 12
/// stanzas. `hidden_block` and `tag_community` vary between the two.
pub fn plan_border(
    name: &'static str,
    hidden_block: &str,
    dc_community: &str,
    mgmt_community: &str,
) -> RouterPlan {
    RouterPlan {
        name,
        maps: vec![
            MapPlan {
                name: "ISP_IN",
                prompts: vec![
                    "Write a route-map stanza that permits all routes.".to_string(),
                    prompt_deny_or_longer("10.0.0.0/8"),
                    prompt_deny_or_longer("192.168.0.0/16"),
                    prompt_deny_or_longer("127.0.0.0/8"),
                ],
                intended: Config::parse(
                    "ip prefix-list B1 seq 5 permit 10.0.0.0/8 le 32\n\
                     ip prefix-list B2 seq 5 permit 192.168.0.0/16 le 32\n\
                     ip prefix-list B3 seq 5 permit 127.0.0.0/8 le 32\n\
                     route-map ISP_IN deny 10\n match ip address prefix-list B1\n\
                     route-map ISP_IN deny 20\n match ip address prefix-list B2\n\
                     route-map ISP_IN deny 30\n match ip address prefix-list B3\n\
                     route-map ISP_IN permit 40\n",
                )
                .expect("intended ISP_IN parses"),
            },
            MapPlan {
                name: "ISP_OUT",
                prompts: vec![
                    prompt_permit_prefix("203.0.0.0/8", 24),
                    prompt_deny_or_longer("10.0.0.0/8"),
                ],
                intended: Config::parse(
                    "ip prefix-list PUB seq 5 permit 203.0.0.0/8 le 24\n\
                     ip prefix-list PRIV seq 5 permit 10.0.0.0/8 le 32\n\
                     route-map ISP_OUT deny 10\n match ip address prefix-list PRIV\n\
                     route-map ISP_OUT permit 20\n match ip address prefix-list PUB\n",
                )
                .expect("intended ISP_OUT parses"),
            },
            MapPlan {
                name: "FROM_M",
                prompts: vec![
                    prompt_permit_prefix("10.0.0.0/8", 24),
                    format!(
                        "Write a route-map stanza that permits routes containing the prefix \
                         10.200.0.0/16 with mask length less than or equal to 24. The community \
                         {mgmt_community} should be added."
                    ),
                ],
                intended: Config::parse(&format!(
                    "ip prefix-list MGMT seq 5 permit 10.200.0.0/16 le 24\n\
                     ip prefix-list ALL seq 5 permit 10.0.0.0/8 le 24\n\
                     route-map FROM_M permit 10\n match ip address prefix-list MGMT\n set community {mgmt_community} additive\n\
                     route-map FROM_M permit 20\n match ip address prefix-list ALL\n",
                ))
                .expect("intended FROM_M parses"),
            },
            MapPlan {
                name: "FROM_DC",
                prompts: vec![
                    prompt_permit_prefix("10.0.0.0/8", 24),
                    prompt_deny_or_longer(hidden_block),
                    format!(
                        "Write a route-map stanza that permits routes containing the prefix \
                         10.1.0.0/16 with mask length less than or equal to 24. The community \
                         {dc_community} should be added."
                    ),
                ],
                intended: Config::parse(&format!(
                    "ip prefix-list HIDE seq 5 permit {hidden_block} le 32\n\
                     ip prefix-list SVC seq 5 permit 10.1.0.0/16 le 24\n\
                     ip prefix-list ALL seq 5 permit 10.0.0.0/8 le 24\n\
                     route-map FROM_DC deny 10\n match ip address prefix-list HIDE\n\
                     route-map FROM_DC permit 20\n match ip address prefix-list SVC\n set community {dc_community} additive\n\
                     route-map FROM_DC permit 30\n match ip address prefix-list ALL\n",
                ))
                .expect("intended FROM_DC parses"),
            },
            MapPlan {
                name: "TO_M",
                prompts: vec![prompt_permit_prefix("10.0.0.0/8", 24)],
                intended: Config::parse(
                    "ip prefix-list ALL seq 5 permit 10.0.0.0/8 le 24\n\
                     route-map TO_M permit 10\n match ip address prefix-list ALL\n",
                )
                .expect("intended TO_M parses"),
            },
        ],
    }
}

/// Synthesizes every route-map of one router through the Clarify loop and
/// verifies each against its intended policy. Returns the final device
/// configuration and the Figure 4 row.
pub fn synthesize_router(plan: &RouterPlan) -> Result<(Config, RouterStats), ClarifyError> {
    let mut session = ClarifySession::new(
        SemanticBackend::new(),
        3,
        Disambiguator::new(PlacementStrategy::BinarySearch),
    );
    let mut config = Config::new();
    let mut synthesis_calls = 0usize;
    for map in &plan.maps {
        for prompt in &map.prompts {
            let mut oracle = IntentOracle::new(&map.intended, map.name);
            match session.add_stanza(&config, map.name, prompt, &mut oracle)? {
                AddStanzaOutcome::Inserted { config: next, .. } => {
                    config = next;
                    synthesis_calls += 1;
                }
                AddStanzaOutcome::Punted { reason, .. } => {
                    return Err(ClarifyError::Llm(clarify_llm::LlmError::UnsupportedQuery(
                        format!("unexpected punt: {reason}"),
                    )));
                }
            }
        }
        // The incremental build must converge on exactly the intended map.
        verify_against_intent(&config, map.name, &map.intended, map.name)?;
    }
    let stats = RouterStats {
        route_maps: plan.maps.len(),
        synthesis_calls,
        total_llm_calls: session.stats().llm_calls,
        disambiguations: session.stats().disambiguations,
    };
    Ok((config, stats))
}

fn pfx(s: &str) -> Prefix {
    s.parse().expect("static prefix")
}

/// Builds the Figure 3 network with the given per-router configurations
/// and converges it.
pub fn build_network(
    m: Config,
    r1: Config,
    r2: Config,
) -> Result<Network, clarify_netsim::SimError> {
    let mut b = NetworkBuilder::new();
    b.router("ISP1", 100)
        .originate(pfx("8.8.0.0/16"))
        .originate(pfx("192.168.99.0/24")); // a bogon leak from outside
    b.router("ISP2", 200).originate(pfx("9.9.0.0/16"));
    b.router("R1", 65001)
        .config(r1)
        .originate(pfx("203.0.113.0/24"));
    b.router("R2", 65002)
        .config(r2)
        .originate(pfx("203.0.114.0/24"));
    b.router("M", 65000).config(m);
    b.router("DC1", 65101)
        .originate(pfx("10.1.0.0/16"))
        .originate(pfx("10.3.0.0/16"))
        .originate(pfx("192.168.0.0/16"));
    b.router("DC2", 65102).originate(pfx("10.2.0.0/16"));
    b.router("MGMT", 65200)
        .originate(pfx("10.200.0.0/16"))
        .originate(pfx("192.168.0.0/16"));

    b.session_pair("R1", "ISP1", Some("ISP_IN"), Some("ISP_OUT"), None, None)?;
    b.session_pair("R2", "ISP2", Some("ISP_IN"), Some("ISP_OUT"), None, None)?;
    b.session_pair(
        "M",
        "R1",
        Some("FROM_R1"),
        Some("TO_DC"),
        Some("FROM_M"),
        Some("TO_M"),
    )?;
    b.session_pair(
        "M",
        "R2",
        Some("FROM_R2"),
        Some("TO_DC"),
        Some("FROM_M"),
        Some("TO_M"),
    )?;
    b.session_pair("M", "MGMT", Some("FROM_MGMT"), None, None, None)?;
    b.session_pair("R1", "DC1", Some("FROM_DC"), None, None, None)?;
    b.session_pair("R1", "DC2", Some("FROM_DC"), None, None, None)?;
    b.session_pair("R2", "DC1", Some("FROM_DC"), None, None, None)?;
    b.session_pair("R2", "DC2", Some("FROM_DC"), None, None, None)?;
    b.build()?.converge()
}

/// Evaluates the five §5 global policies on a converged network.
pub fn check_policies(net: &Network) -> Vec<(String, bool)> {
    let reused = pfx("192.168.0.0/16");
    let service = pfx("10.1.0.0/16");
    let bogon = pfx("192.168.99.0/24");
    let isp1_pfx = pfx("8.8.0.0/16");
    let isp2_pfx = pfx("9.9.0.0/16");

    let p1 = {
        // DC's copy never reaches the management side and vice versa:
        // MGMT and DC1 each only know their own origination; DC2 (which
        // originates neither) hears no copy at all; M's copy comes from
        // MGMT alone.
        let mgmt_local = net
            .best_route("MGMT", &reused)
            .map(|e| e.learned_from.is_none());
        let dc1_local = net
            .best_route("DC1", &reused)
            .map(|e| e.learned_from.is_none());
        let m_from_mgmt = net.next_hop_router("M", &reused) == Some("MGMT");
        mgmt_local == Some(true)
            && dc1_local == Some(true)
            && !net.can_reach("DC2", &reused)
            && m_from_mgmt
    };
    let p2 = net.can_reach("M", &service);
    let p3 = net.next_hop_router("M", &service) == Some("R1");
    let p4 = {
        // The outside bogon stops at the borders; nothing inside sees it.
        ["R1", "R2", "M", "DC1", "DC2", "MGMT"]
            .iter()
            .all(|r| !net.can_reach(r, &bogon))
    };
    let p5 = {
        !net.can_reach("ISP2", &isp1_pfx)
            && !net.can_reach("ISP1", &isp2_pfx)
            // ...while legitimate reachability still works:
            && net.can_reach("ISP1", &pfx("203.0.113.0/24"))
            && net.can_reach("ISP2", &pfx("203.0.114.0/24"))
    };

    vec![
        (
            "P1 reused prefixes mutually invisible (DC vs management)".to_string(),
            p1,
        ),
        ("P2 service prefix 10.1.0.0/16 visible at M".to_string(), p2),
        (
            "P3 M prefers the path through R1 for 10.1.0.0/16".to_string(),
            p3,
        ),
        ("P4 no bogon prefixes advertised".to_string(), p4),
        (
            "P5 ISP1 and ISP2 mutually unreachable via our network".to_string(),
            p5,
        ),
    ]
}

/// Runs the whole §5 evaluation: synthesize all three routers'
/// route-maps, build the network, converge, and check the policies.
pub fn run() -> Result<Figure3Run, Box<dyn std::error::Error>> {
    let (m_cfg, m_stats) = synthesize_router(&plan_m())?;
    let (r1_cfg, r1_stats) =
        synthesize_router(&plan_border("R1", "10.3.128.0/17", "65001:10", "65000:20"))?;
    let (r2_cfg, r2_stats) =
        synthesize_router(&plan_border("R2", "10.4.128.0/17", "65002:10", "65000:21"))?;
    let network = build_network(m_cfg, r1_cfg, r2_cfg)?;
    let policies = check_policies(&network);
    Ok(Figure3Run {
        stats: vec![("M", m_stats), ("R1", r1_stats), ("R2", r2_stats)],
        policies,
        network,
    })
}
