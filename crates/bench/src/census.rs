//! The E3/E4 population sweep: per-config overlap analysis over a
//! generated workload, fanned out with `clarify-par`.
//!
//! Every config in the population gets its own `RouteSpace` (the bins
//! already did this serially — the spaces are per-config because each
//! config declares different community/as-path atoms), so the sweep is
//! embarrassingly parallel and the fan-out changes no output byte:
//! results come back in population order.

use clarify_analysis::{acl_overlaps, route_map_overlaps, OverlapReport};
use clarify_analysis::{AnalysisError, RouteSpace};
use clarify_netconfig::{Acl, Config};

/// Overlap reports for every ACL in the population, in input order.
pub fn acl_sweep(acls: &[Acl]) -> Vec<OverlapReport> {
    clarify_par::par_map(acls, acl_overlaps)
}

/// Overlap reports for every route-map in the population, in input
/// order. Each item builds its own space, exactly as the serial loop
/// did, so parallel and serial sweeps are byte-identical.
pub fn route_map_sweep(
    route_maps: &[(Config, String)],
) -> Result<Vec<OverlapReport>, AnalysisError> {
    let reports = clarify_par::par_map(route_maps, |(cfg, name)| {
        let rm = cfg.route_map(name).expect("generated map exists").clone();
        let mut space = RouteSpace::new(&[cfg])?;
        route_map_overlaps(&mut space, cfg, &rm)
    });
    reports.into_iter().collect()
}

/// Parses `[seed] [--threads N]` from an experiment binary's argv,
/// applies the thread override, and returns `(seed, threads)`.
///
/// The seed defaults to 42 (the paper-table seed); the thread count
/// defaults to the ambient `CLARIFY_THREADS` / `available_parallelism`
/// resolution.
pub fn sweep_args() -> (u64, usize) {
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().as_deref().and_then(clarify_par::parse_threads) {
                clarify_par::set_threads(n);
            }
        } else if let Ok(s) = a.parse() {
            seed = s;
        }
    }
    (seed, clarify_par::current_threads())
}
