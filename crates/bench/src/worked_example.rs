//! The §2 worked example (E1/E2) rendered to a string, shared by the
//! `e1_worked_example` binary and the golden-output regression test.

use std::fmt::Write;

use clarify_analysis::{compare_route_policies, RouteSpace};
use clarify_core::{Disambiguator, IntentOracle, PlacementStrategy};
use clarify_llm::{Backend, Pipeline, PipelineOutcome, SemanticBackend};
use clarify_netconfig::{insert_route_map_stanza, Config};

/// The ISP_OUT policy of §2 (paper Figure 1).
pub const ISP_OUT: &str = "\
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
";

/// The user prompt of the worked example.
pub const PROMPT: &str = "Write a route-map stanza that permits routes containing the prefix \
100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. \
Their MED value should be set to 55.";

macro_rules! wln {
    ($out:expr) => { writeln!($out).unwrap() };
    ($out:expr, $($arg:tt)*) => { writeln!($out, $($arg)*).unwrap() };
}

/// Runs E1/E2 end to end and returns the full printed report.
///
/// The pipeline is deterministic (the semantic backend has no randomness),
/// so the report is byte-identical across runs — the golden test pins it.
pub fn worked_example_report() -> String {
    let mut out = String::new();

    wln!(out, "=== E1: the Section 2 worked example ===\n");
    wln!(out, "--- existing policy (ISP_OUT) ---\n{ISP_OUT}");
    wln!(out, "--- user prompt ---\n{PROMPT}\n");

    let base = Config::parse(ISP_OUT).expect("paper config parses");

    // Steps 1-5 of Figure 1: classify, retrieve, synthesize, extract the
    // spec, verify.
    let mut pipeline = Pipeline::new(SemanticBackend::new(), 3);
    let outcome = pipeline.synthesize(PROMPT).expect("pipeline runs");
    let PipelineOutcome::RouteMap {
        snippet,
        map_name,
        spec,
        llm_calls,
        attempts,
    } = outcome
    else {
        panic!("expected a route-map outcome");
    };
    wln!(
        out,
        "--- synthesized snippet (verified, {llm_calls} LLM calls, {attempts} attempt) ---"
    );
    wln!(out, "{snippet}");
    wln!(out, "--- machine-readable spec (JSON, as in the paper) ---");
    wln!(out, "{}\n", spec.to_json());

    // Figure 2: the four insertion points.
    wln!(out, "=== E2: the four candidate placements of Figure 2 ===");
    let mut placements = Vec::new();
    for (label, pos) in [
        ("(a) top", 0usize),
        ("(b) bottom", 3),
        ("(c) after stanza 10", 1),
        ("(d) after stanza 20", 2),
    ] {
        let (cfg, report) =
            insert_route_map_stanza(&base, "ISP_OUT", &snippet, &map_name, pos).expect("insert");
        wln!(
            out,
            "\n--- Figure 2{label}: renames {:?} ---",
            report.renames
        );
        wln!(out, "{}", cfg.route_map("ISP_OUT").expect("map"));
        placements.push(cfg);
    }

    // Placement equivalence classes: (c) and (d) are behaviourally equal
    // (the snippet is disjoint from the D1 deny), (a) and (b) are not.
    let mut space = RouteSpace::new(&[&placements[2], &placements[3]]).expect("space");
    let eq_cd = compare_route_policies(
        &mut space,
        &placements[2],
        "ISP_OUT",
        &placements[3],
        "ISP_OUT",
        1,
    )
    .expect("compare")
    .is_empty();
    wln!(
        out,
        "\nplacements (c) and (d) behaviourally equivalent: {eq_cd}"
    );

    // The §2.2 differential example between (a) and (b).
    let mut space = RouteSpace::new(&[&placements[0], &placements[1]]).expect("space");
    let diffs = compare_route_policies(
        &mut space,
        &placements[0],
        "ISP_OUT",
        &placements[1],
        "ISP_OUT",
        4,
    )
    .expect("compare");
    wln!(out, "\n=== differential examples between (a) and (b) ===");
    for d in &diffs {
        wln!(out, "\ninput route:\n{}", d.route);
        wln!(out, "\nOPTION 1 (insert at top):");
        match &d.a {
            clarify_netconfig::RouteMapVerdict::Permit { route, .. } => {
                wln!(out, "ACTION: permit\n{route}")
            }
            _ => wln!(out, "ACTION: deny"),
        }
        wln!(out, "\nOPTION 2 (insert at bottom):");
        match &d.b {
            clarify_netconfig::RouteMapVerdict::Permit { route, .. } => {
                wln!(out, "ACTION: permit\n{route}")
            }
            _ => wln!(out, "ACTION: deny"),
        }
    }

    // Run the full disambiguation with a user who wants Figure 2(a).
    wln!(
        out,
        "\n=== full disambiguation (user wants OPTION 1 semantics) ==="
    );
    let intended = placements[0].clone();
    let mut oracle = IntentOracle::new(&intended, "ISP_OUT");
    let result = Disambiguator::new(PlacementStrategy::BinarySearch)
        .insert(&base, "ISP_OUT", &snippet, &map_name, &mut oracle)
        .expect("disambiguation");
    wln!(
        out,
        "overlapping stanzas: {}, questions asked: {}, final position: {}",
        result.overlap_candidates,
        result.questions,
        result.position
    );
    for (i, (q, c)) in result.transcript.iter().enumerate() {
        wln!(out, "\n--- question {} (answered {:?}) ---\n{q}", i + 1, c);
    }
    wln!(
        out,
        "\n--- final route-map ---\n{}",
        result.config.route_map("ISP_OUT").expect("map")
    );
    wln!(out, "backend: {}", pipeline.backend().name());
    out
}
