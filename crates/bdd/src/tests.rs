use crate::{Manager, Ref};

fn three() -> (Manager, Ref, Ref, Ref) {
    let mut m = Manager::new(3);
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    (m, a, b, c)
}

#[test]
fn constants_are_distinct_terminals() {
    assert_ne!(Ref::TRUE, Ref::FALSE);
    assert!(Ref::TRUE.is_const());
    assert!(Ref::FALSE.is_const());
}

#[test]
fn var_is_not_const() {
    let mut m = Manager::new(1);
    let a = m.var(0);
    assert!(!a.is_const());
}

#[test]
fn hash_consing_makes_equal_structures_identical() {
    let (mut m, a, b, _) = three();
    let f1 = m.and(a, b);
    let f2 = m.and(b, a);
    assert_eq!(f1, f2, "AND is commutative and BDDs are canonical");
}

#[test]
fn not_not_is_identity() {
    let (mut m, a, b, _) = three();
    let f = m.xor(a, b);
    let nf = m.not(f);
    let nnf = m.not(nf);
    assert_eq!(f, nnf);
}

#[test]
fn de_morgan() {
    let (mut m, a, b, _) = three();
    let and = m.and(a, b);
    let lhs = m.not(and);
    let na = m.not(a);
    let nb = m.not(b);
    let rhs = m.or(na, nb);
    assert_eq!(lhs, rhs);
}

#[test]
fn and_identities() {
    let (mut m, a, _, _) = three();
    assert_eq!(m.and(a, Ref::TRUE), a);
    assert_eq!(m.and(a, Ref::FALSE), Ref::FALSE);
    assert_eq!(m.and(a, a), a);
    let na = m.not(a);
    assert_eq!(m.and(a, na), Ref::FALSE);
}

#[test]
fn or_identities() {
    let (mut m, a, _, _) = three();
    assert_eq!(m.or(a, Ref::FALSE), a);
    assert_eq!(m.or(a, Ref::TRUE), Ref::TRUE);
    assert_eq!(m.or(a, a), a);
    let na = m.not(a);
    assert_eq!(m.or(a, na), Ref::TRUE);
}

#[test]
fn xor_truth_table() {
    let (mut m, a, b, _) = three();
    let f = m.xor(a, b);
    for (av, bv, want) in [
        (false, false, false),
        (false, true, true),
        (true, false, true),
        (true, true, false),
    ] {
        let got = m.eval(f, &|v| match v {
            0 => av,
            1 => bv,
            _ => false,
        });
        assert_eq!(got, want, "xor({av},{bv})");
    }
}

#[test]
fn iff_is_negated_xor() {
    let (mut m, a, b, _) = three();
    let x = m.xor(a, b);
    let lhs = m.not(x);
    let rhs = m.iff(a, b);
    assert_eq!(lhs, rhs);
}

#[test]
fn implies_truth() {
    let (mut m, a, b, _) = three();
    let f = m.and(a, b);
    assert!(m.implies_true(f, a));
    assert!(m.implies_true(f, b));
    assert!(!m.implies_true(a, f));
    assert!(m.implies_true(Ref::FALSE, a));
    assert!(m.implies_true(a, Ref::TRUE));
}

#[test]
fn diff_removes_models() {
    let (mut m, a, b, _) = three();
    let d = m.diff(a, b);
    // d = a & !b: one assignment of (a,b) out of four, times 2 for c.
    assert_eq!(m.sat_count(d), 2.0);
    assert!(!m.intersects(d, b));
}

#[test]
fn ite_agrees_with_definition() {
    let (mut m, a, b, c) = three();
    let lhs = m.ite(a, b, c);
    let ab = m.and(a, b);
    let na = m.not(a);
    let nac = m.and(na, c);
    let rhs = m.or(ab, nac);
    assert_eq!(lhs, rhs);
}

#[test]
fn sat_count_small_functions() {
    let (mut m, a, b, c) = three();
    assert_eq!(m.sat_count(Ref::TRUE), 8.0);
    assert_eq!(m.sat_count(Ref::FALSE), 0.0);
    assert_eq!(m.sat_count(a), 4.0);
    let ab = m.and(a, b);
    assert_eq!(m.sat_count(ab), 2.0);
    let abc = m.and(ab, c);
    assert_eq!(m.sat_count(abc), 1.0);
    let aob = m.or(a, b);
    assert_eq!(m.sat_count(aob), 6.0);
}

#[test]
fn any_sat_on_false_is_none() {
    let m = Manager::new(2);
    assert!(m.any_sat(Ref::FALSE).is_none());
}

#[test]
fn any_sat_produces_model() {
    let (mut m, a, b, c) = three();
    let na = m.not(a);
    let f1 = m.and(na, b);
    let f = m.and(f1, c);
    let cube = m.any_sat(f).expect("satisfiable");
    assert_eq!(cube.get(0), Some(false));
    assert_eq!(cube.get(1), Some(true));
    assert_eq!(cube.get(2), Some(true));
    assert!(m.eval(f, &|v| cube.value_or_false(v)));
}

#[test]
fn any_sat_high_prefers_high_branch() {
    let (mut m, a, b, _) = three();
    let f = m.or(a, b);
    let lo = m.any_sat(f).unwrap();
    let hi = m.any_sat_high(f).unwrap();
    // Low-preferring walk picks a=0,b=1; high-preferring picks a=1.
    assert_eq!(lo.get(0), Some(false));
    assert_eq!(hi.get(0), Some(true));
    assert!(m.eval(f, &|v| lo.value_or_false(v)));
    assert!(m.eval(f, &|v| hi.value_or_false(v)));
}

#[test]
fn exists_removes_variable_from_support() {
    let (mut m, a, b, c) = three();
    let ab = m.and(a, b);
    let f = m.or(ab, c);
    let e = m.exists(f, &[1]);
    assert_eq!(m.support(e), vec![0, 2]);
    // exists b. (a&b | c) == a | c
    let aoc = m.or(a, c);
    assert_eq!(e, aoc);
}

#[test]
fn forall_dual_of_exists() {
    let (mut m, a, b, _) = three();
    let f = m.or(a, b);
    // forall b. (a|b) == a
    let g = m.forall(f, &[1]);
    assert_eq!(g, a);
    // exists b. (a&b) == a
    let h0 = m.and(a, b);
    let h = m.exists(h0, &[1]);
    assert_eq!(h, a);
}

#[test]
fn exists_multiple_vars() {
    let (mut m, a, b, c) = three();
    let f0 = m.and(a, b);
    let f = m.and(f0, c);
    let e = m.exists(f, &[0, 2]);
    assert_eq!(e, b);
    let all = m.exists(f, &[0, 1, 2]);
    assert_eq!(all, Ref::TRUE);
}

#[test]
fn restrict_fixes_variable() {
    let (mut m, a, b, _) = three();
    let f = m.xor(a, b);
    let nb = m.not(b);
    assert_eq!(m.restrict(f, 0, true), nb);
    assert_eq!(m.restrict(f, 0, false), b);
}

#[test]
fn support_and_size() {
    let (mut m, a, _, c) = three();
    let f = m.and(a, c);
    assert_eq!(m.support(f), vec![0, 2]);
    assert_eq!(m.size(f), 2);
    assert_eq!(m.size(Ref::TRUE), 0);
}

#[test]
fn eq_const_encodes_exact_value() {
    let mut m = Manager::new(4);
    let vars = [0, 1, 2, 3];
    let f = m.eq_const(&vars, 0b1010);
    assert_eq!(m.sat_count(f), 1.0);
    let cube = m.any_sat(f).unwrap();
    assert_eq!(cube.decode(&vars), 0b1010);
}

#[test]
fn le_const_counts() {
    let mut m = Manager::new(4);
    let vars = [0, 1, 2, 3];
    for bound in 0..16u64 {
        let f = m.le_const(&vars, bound);
        assert_eq!(m.sat_count(f), (bound + 1) as f64, "<= {bound}");
    }
}

#[test]
fn ge_const_counts() {
    let mut m = Manager::new(4);
    let vars = [0, 1, 2, 3];
    for bound in 0..16u64 {
        let f = m.ge_const(&vars, bound);
        assert_eq!(m.sat_count(f), (16 - bound) as f64, ">= {bound}");
    }
}

#[test]
fn range_const_counts_and_empty() {
    let mut m = Manager::new(4);
    let vars = [0, 1, 2, 3];
    let f = m.range_const(&vars, 3, 9);
    assert_eq!(m.sat_count(f), 7.0);
    assert_eq!(m.range_const(&vars, 9, 3), Ref::FALSE);
    let one = m.range_const(&vars, 5, 5);
    let five = m.eq_const(&vars, 5);
    assert_eq!(one, five);
}

#[test]
fn eval_walks_correct_branch() {
    let mut m = Manager::new(8);
    let vars: Vec<u32> = (0..8).collect();
    let f = m.eq_const(&vars, 0xA5);
    assert!(m.eval(f, &|v| (0xA5u64 >> (7 - v)) & 1 == 1));
    assert!(!m.eval(f, &|_| true));
}

#[test]
fn stats_track_nodes() {
    let mut m = Manager::new(3);
    assert_eq!(m.stats().nodes, 0);
    let a = m.var(0);
    let b = m.var(1);
    m.and(a, b);
    assert!(m.stats().nodes >= 3);
    assert!(m.stats().cache_misses > 0);
    // Every interned node cost at least one unique-table slot inspection.
    assert!(m.stats().unique_probes >= m.stats().nodes as u64);
}

#[test]
fn ite_normalization_shares_cache_across_argument_orders() {
    let mut m = Manager::new(8);
    let a = m.var(0);
    let b = m.var(1);
    // Disjunction form: ite(f, 1, h) == ite(h, 1, f). The second call
    // must land on the first call's computed-cache entry.
    let f1 = m.ite(a, Ref::TRUE, b);
    let hits = m.stats().cache_hits;
    let f2 = m.ite(b, Ref::TRUE, a);
    assert_eq!(f1, f2);
    assert!(m.stats().cache_hits > hits, "commuted or shares the entry");
    // Conjunction form: ite(f, g, 0) == ite(g, f, 0).
    let c = m.var(2);
    let d = m.var(3);
    let g1 = m.ite(c, d, Ref::FALSE);
    let hits = m.stats().cache_hits;
    let g2 = m.ite(d, c, Ref::FALSE);
    assert_eq!(g1, g2);
    assert!(m.stats().cache_hits > hits, "commuted and shares the entry");
    // Standard-triple terminal rewrites collapse to the plain operations.
    let or_ab = m.or(a, b);
    let and_ab = m.and(a, b);
    assert_eq!(m.ite(a, a, b), or_ab, "ite(f, f, h) == f | h");
    assert_eq!(m.ite(a, b, a), and_ab, "ite(f, g, f) == f & g");
    // The dedicated entry points agree with the generic kernel.
    let n_b = m.ite(b, Ref::FALSE, Ref::TRUE);
    assert_eq!(m.not(b), n_b);
    let x = m.ite(a, n_b, b);
    assert_eq!(m.xor(a, b), x);
    let nx = m.not(x);
    assert_eq!(m.iff(a, b), nx);
    let d_ab = m.ite(a, n_b, Ref::FALSE);
    assert_eq!(m.diff(a, b), d_ab);
}

#[test]
fn lossy_cache_eviction_is_semantically_invisible() {
    // A minimal computed cache under a workload with far more distinct
    // operation triples than slots: collisions must evict (lossy by
    // design) and every result must still match a generously sized cache
    // bit for bit, because evicted entries are recomputed and
    // hash-consing lands the recomputation on the same node.
    let mut tiny = Manager::with_capacity(16, 1);
    let mut big = Manager::new(16);
    let build = |m: &mut Manager| -> Vec<Ref> {
        let vars: Vec<u32> = (0..16).collect();
        (0..48u64)
            .map(|i| m.range_const(&vars, i * 512, i * 512 + 7000))
            .collect()
    };
    let fs_tiny = build(&mut tiny);
    let fs_big = build(&mut big);
    let mut acc_tiny = Ref::FALSE;
    let mut acc_big = Ref::FALSE;
    for i in 0..fs_tiny.len() {
        let j = (i * 7 + 3) % fs_tiny.len();
        let xt = tiny.xor(fs_tiny[i], fs_tiny[j]);
        let xb = big.xor(fs_big[i], fs_big[j]);
        let dt = tiny.diff(xt, acc_tiny);
        let db = big.diff(xb, acc_big);
        assert_eq!(tiny.sat_count_exact(dt), big.sat_count_exact(db));
        acc_tiny = tiny.or(acc_tiny, dt);
        acc_big = big.or(acc_big, db);
    }
    assert!(
        tiny.stats().computed_evictions > 0,
        "the workload must overflow the minimal cache"
    );
    assert_eq!(tiny.sat_count_exact(acc_tiny), big.sat_count_exact(acc_big));
    // Canonicity survives the eviction path: rebuilding in the same
    // manager returns the very same Refs.
    let again = build(&mut tiny);
    assert_eq!(fs_tiny, again);
}

#[test]
fn eviction_counter_reaches_registry() {
    let reg = clarify_obs::Registry::new();
    let mut m = Manager::with_capacity_and_registry(16, 1, &reg);
    let vars: Vec<u32> = (0..16).collect();
    for i in 0..32u64 {
        m.range_const(&vars, i * 512, i * 512 + 9000);
    }
    let stats = m.stats();
    assert!(stats.computed_evictions > 0);
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("bdd.computed_evictions"),
        stats.computed_evictions
    );
    assert_eq!(snap.counter("bdd.unique_probes"), stats.unique_probes);
    assert!(stats.unique_probes >= stats.nodes as u64);
}

#[test]
fn clear_op_caches_preserves_unique_table() {
    let mut m = Manager::new(8);
    let lits: Vec<_> = (0..8).map(|v| m.var(v)).collect();
    let mut f = Ref::TRUE;
    for chunk in lits.chunks(2) {
        let pair = m.or(chunk[0], chunk[1]);
        f = m.and(f, pair);
    }
    let before = m.stats();
    assert!(before.ite_cache_entries > 0, "ite work must populate cache");

    m.clear_op_caches();
    let after = m.stats();
    assert_eq!(after.ite_cache_entries, 0);
    // Unique table untouched: no node vanished, refs stay valid.
    assert_eq!(after.nodes, before.nodes);
    // Counters are cumulative, not reset.
    assert_eq!(after.cache_hits, before.cache_hits);
    assert_eq!(after.cache_misses, before.cache_misses);

    // Rebuilding the same function yields the same canonical Ref —
    // hash-consing still works and the old Ref is still meaningful.
    let mut g = Ref::TRUE;
    for chunk in lits.chunks(2) {
        let pair = m.or(chunk[0], chunk[1]);
        g = m.and(g, pair);
    }
    assert_eq!(f, g);
    assert!(m.eval(f, &|_| true));
}

#[test]
fn and_all_or_all() {
    let mut m = Manager::new(4);
    let lits: Vec<_> = (0..4).map(|v| m.var(v)).collect();
    let all = m.and_all(lits.iter().copied());
    assert_eq!(m.sat_count(all), 1.0);
    let any = m.or_all(lits.iter().copied());
    assert_eq!(m.sat_count(any), 15.0);
    assert_eq!(m.and_all(std::iter::empty()), Ref::TRUE);
    assert_eq!(m.or_all(std::iter::empty()), Ref::FALSE);
}

#[test]
#[should_panic(expected = "out of range")]
fn var_out_of_range_panics() {
    let mut m = Manager::new(2);
    m.var(2);
}

mod properties {
    use super::*;
    use clarify_testkit::{prop_assert, prop_assert_eq, property, Rng, Source};

    /// A tiny expression language for generating random Boolean functions.
    #[derive(Clone, Debug)]
    enum Expr {
        Var(u32),
        Not(Box<Expr>),
        And(Box<Expr>, Box<Expr>),
        Or(Box<Expr>, Box<Expr>),
        Xor(Box<Expr>, Box<Expr>),
    }

    const NVARS: u32 = 6;

    /// Choice 0 is a leaf variable, so the all-zeros shrink target is
    /// the single expression `Var(0)`.
    fn arb_expr(g: &mut Source) -> Expr {
        fn node(g: &mut Source, depth: usize) -> Expr {
            let k = if depth == 0 {
                0
            } else {
                g.gen_range(0usize..5)
            };
            match k {
                0 => Expr::Var(g.gen_range(0..NVARS)),
                1 => Expr::Not(Box::new(node(g, depth - 1))),
                2 => Expr::And(Box::new(node(g, depth - 1)), Box::new(node(g, depth - 1))),
                3 => Expr::Or(Box::new(node(g, depth - 1)), Box::new(node(g, depth - 1))),
                _ => Expr::Xor(Box::new(node(g, depth - 1)), Box::new(node(g, depth - 1))),
            }
        }
        node(g, 5)
    }

    fn build(m: &mut Manager, e: &Expr) -> Ref {
        match e {
            Expr::Var(v) => m.var(*v),
            Expr::Not(a) => {
                let a = build(m, a);
                m.not(a)
            }
            Expr::And(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.and(a, b)
            }
            Expr::Or(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.or(a, b)
            }
            Expr::Xor(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.xor(a, b)
            }
        }
    }

    fn eval_expr(e: &Expr, bits: u32) -> bool {
        match e {
            Expr::Var(v) => (bits >> v) & 1 == 1,
            Expr::Not(a) => !eval_expr(a, bits),
            Expr::And(a, b) => eval_expr(a, bits) && eval_expr(b, bits),
            Expr::Or(a, b) => eval_expr(a, bits) || eval_expr(b, bits),
            Expr::Xor(a, b) => eval_expr(a, bits) ^ eval_expr(b, bits),
        }
    }

    property! {
        /// The BDD agrees with direct expression evaluation on every input.
        fn bdd_matches_truth_table(e in arb_expr) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            for bits in 0..(1u32 << NVARS) {
                let want = eval_expr(&e, bits);
                let got = m.eval(f, &|v| (bits >> v) & 1 == 1);
                prop_assert_eq!(got, want, "input {:06b}", bits);
            }
        }

        /// sat_count equals the brute-force model count.
        fn sat_count_matches_brute_force(e in arb_expr) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            let brute = (0..(1u32 << NVARS)).filter(|&bits| eval_expr(&e, bits)).count();
            prop_assert_eq!(m.sat_count(f), brute as f64);
        }

        /// Canonicity: two syntactically different but equivalent builds
        /// produce the same Ref.
        fn double_negation_canonical(e in arb_expr) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            let nf = m.not(f);
            let nnf = m.not(nf);
            prop_assert_eq!(f, nnf);
        }

        /// any_sat always returns a genuine model.
        fn any_sat_is_model(e in arb_expr) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            match m.any_sat(f) {
                None => prop_assert_eq!(f, Ref::FALSE),
                Some(cube) => {
                    prop_assert!(m.eval(f, &|v| cube.value_or_false(v)));
                }
            }
        }

        /// exists is monotone: f implies exists v. f
        fn exists_weakens(e in arb_expr, v in |g: &mut Source| g.gen_range(0..NVARS)) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            let ex = m.exists(f, &[v]);
            prop_assert!(m.implies_true(f, ex));
            // and the quantified variable leaves the support
            prop_assert!(!m.support(ex).contains(&v));
        }

        /// Shannon expansion: f == ite(v, f|v=1, f|v=0).
        fn shannon_expansion(e in arb_expr, v in |g: &mut Source| g.gen_range(0..NVARS)) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            let hi = m.restrict(f, v, true);
            let lo = m.restrict(f, v, false);
            let vv = m.var(v);
            let rebuilt = m.ite(vv, hi, lo);
            prop_assert_eq!(f, rebuilt);
        }
    }
}

mod kernel_differential {
    //! Differential testing of the kernel against a brute-force
    //! truth-table oracle, over enough variables (16) that the tiny-cache
    //! manager's direct-mapped computed cache is forced through its
    //! eviction path. Failures name a seed replayable with
    //! `CLARIFY_PROP_SEED` (see `clarify-testkit`).

    use super::*;
    use clarify_testkit::{prop_assert_eq, property, Rng, Source};

    const NVARS: u32 = 16;
    /// 2^16 inputs packed 64 per word.
    const BLOCKS: usize = 1 << (NVARS - 6);

    /// Expression language covering every public kernel operation,
    /// including the ops with dedicated apply entries (xor/iff/diff) and
    /// the ternary `ite` the normalization rules rewrite.
    #[derive(Clone, Debug)]
    enum Expr {
        Var(u32),
        Not(Box<Expr>),
        And(Box<Expr>, Box<Expr>),
        Or(Box<Expr>, Box<Expr>),
        Xor(Box<Expr>, Box<Expr>),
        Iff(Box<Expr>, Box<Expr>),
        Diff(Box<Expr>, Box<Expr>),
        Implies(Box<Expr>, Box<Expr>),
        Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    }

    /// Choice 0 is a leaf, so the all-zeros shrink target is `Var(0)`.
    fn arb_expr(g: &mut Source) -> Expr {
        fn node(g: &mut Source, depth: usize) -> Expr {
            let k = if depth == 0 {
                0
            } else {
                g.gen_range(0usize..9)
            };
            let sub = |g: &mut Source| Box::new(node(g, depth - 1));
            match k {
                0 => Expr::Var(g.gen_range(0..NVARS)),
                1 => Expr::Not(sub(g)),
                2 => Expr::And(sub(g), sub(g)),
                3 => Expr::Or(sub(g), sub(g)),
                4 => Expr::Xor(sub(g), sub(g)),
                5 => Expr::Iff(sub(g), sub(g)),
                6 => Expr::Diff(sub(g), sub(g)),
                7 => Expr::Implies(sub(g), sub(g)),
                _ => {
                    let f = sub(g);
                    Expr::Ite(f, sub(g), sub(g))
                }
            }
        }
        node(g, 4)
    }

    fn build(m: &mut Manager, e: &Expr) -> Ref {
        match e {
            Expr::Var(v) => m.var(*v),
            Expr::Not(a) => {
                let a = build(m, a);
                m.not(a)
            }
            Expr::And(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.and(a, b)
            }
            Expr::Or(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.or(a, b)
            }
            Expr::Xor(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.xor(a, b)
            }
            Expr::Iff(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.iff(a, b)
            }
            Expr::Diff(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.diff(a, b)
            }
            Expr::Implies(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.implies(a, b)
            }
            Expr::Ite(f, g, h) => {
                let (f, g, h) = (build(m, f), build(m, g), build(m, h));
                m.ite(f, g, h)
            }
        }
    }

    /// The full 2^16-entry truth table of variable `v`, bit-parallel.
    fn var_table(v: u32) -> Vec<u64> {
        let mut t = vec![0u64; BLOCKS];
        if v < 6 {
            // The pattern repeats inside every 64-input word.
            let mut word = 0u64;
            for j in 0..64u64 {
                if (j >> v) & 1 == 1 {
                    word |= 1 << j;
                }
            }
            t.fill(word);
        } else {
            // Whole words are constant; the block index carries the bit.
            for (b, w) in t.iter_mut().enumerate() {
                if (b >> (v - 6)) & 1 == 1 {
                    *w = !0;
                }
            }
        }
        t
    }

    /// Brute-force oracle: evaluates the expression on all 2^16 inputs
    /// at once with word-parallel Boolean algebra.
    fn oracle(e: &Expr) -> Vec<u64> {
        fn zip(a: Vec<u64>, b: Vec<u64>, f: impl Fn(u64, u64) -> u64) -> Vec<u64> {
            a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
        }
        match e {
            Expr::Var(v) => var_table(*v),
            Expr::Not(a) => oracle(a).into_iter().map(|w| !w).collect(),
            Expr::And(a, b) => zip(oracle(a), oracle(b), |x, y| x & y),
            Expr::Or(a, b) => zip(oracle(a), oracle(b), |x, y| x | y),
            Expr::Xor(a, b) => zip(oracle(a), oracle(b), |x, y| x ^ y),
            Expr::Iff(a, b) => zip(oracle(a), oracle(b), |x, y| !(x ^ y)),
            Expr::Diff(a, b) => zip(oracle(a), oracle(b), |x, y| x & !y),
            Expr::Implies(a, b) => zip(oracle(a), oracle(b), |x, y| !x | y),
            Expr::Ite(f, g, h) => {
                let f = oracle(f);
                let g = oracle(g);
                let h = oracle(h);
                f.iter()
                    .zip(g)
                    .zip(h)
                    .map(|((&fw, gw), hw)| (fw & gw) | (!fw & hw))
                    .collect()
            }
        }
    }

    fn popcount(t: &[u64]) -> u128 {
        t.iter().map(|w| u128::from(w.count_ones())).sum()
    }

    fn table_bit(t: &[u64], input: usize) -> bool {
        (t[input / 64] >> (input % 64)) & 1 == 1
    }

    property! {
        /// The kernel agrees with the oracle on model counts and sampled
        /// inputs — both with a minimal (eviction-heavy) computed cache
        /// and with the default one, and rebuilding after a cache clear
        /// lands on the same canonical Refs.
        fn kernel_matches_oracle_through_evictions(
            e in arb_expr,
            samples in |g: &mut Source| -> Vec<usize> {
                (0..64).map(|_| g.gen_range(0usize..1 << 16)).collect()
            },
        ) cases 64 {
            let want = oracle(&e);
            let models = popcount(&want);

            // Minimal cache: with_capacity(…, 1) clamps to the floor, so
            // nontrivial expressions run the eviction path constantly.
            let mut tiny = Manager::with_capacity(NVARS, 1);
            let f = build(&mut tiny, &e);
            prop_assert_eq!(tiny.sat_count_exact(f), models, "tiny-cache model count");
            for &i in &samples {
                let got = tiny.eval(f, &|v| (i >> v) & 1 == 1);
                prop_assert_eq!(got, table_bit(&want, i), "tiny-cache eval at {:016b}", i);
            }

            // Default cache: same semantics.
            let mut big = Manager::new(NVARS);
            let fb = build(&mut big, &e);
            prop_assert_eq!(big.sat_count_exact(fb), models, "default-cache model count");
            for &i in &samples {
                let got = big.eval(fb, &|v| (i >> v) & 1 == 1);
                prop_assert_eq!(got, table_bit(&want, i), "default-cache eval at {:016b}", i);
            }

            // Clearing the lossy cache and rebuilding must reproduce the
            // identical node (canonicity is cache-independent).
            tiny.clear_op_caches();
            let again = build(&mut tiny, &e);
            prop_assert_eq!(f, again, "rebuild after clear_op_caches");
        }
    }

    property! {
        /// The kernel still agrees with the oracle after a forced sifting
        /// pass and a collection mid-property: rooted functions keep their
        /// semantics, witnesses stay byte-identical across the reorder
        /// (order-invariant extraction), and rebuilding the expression
        /// after a sweep lands on the identical canonical Ref.
        fn kernel_matches_oracle_across_reorder_and_gc(
            e in arb_expr,
            samples in |g: &mut Source| -> Vec<usize> {
                (0..32).map(|_| g.gen_range(0usize..1 << 16)).collect()
            },
        ) cases 32 {
            let want = oracle(&e);
            let models = popcount(&want);

            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            let root = m.protect(f);
            let lo_before = m.any_sat(f);
            let hi_before = m.any_sat_high(f);

            // Reorder invalidates every unrooted ref; the root survives.
            m.reorder();
            let f = root.as_ref();
            prop_assert_eq!(m.sat_count_exact(f), models, "model count after reorder");
            prop_assert_eq!(m.any_sat(f), lo_before, "lex-min witness after reorder");
            prop_assert_eq!(m.any_sat_high(f), hi_before, "lex-max witness after reorder");
            for &i in &samples {
                let got = m.eval(f, &|v| (i >> v) & 1 == 1);
                prop_assert_eq!(got, table_bit(&want, i), "eval after reorder at {:016b}", i);
            }

            // A sweep with the root pinned, then a rebuild: canonicity
            // under the (possibly sifted) order means the rebuild must
            // return the very same tagged Ref.
            m.gc();
            prop_assert_eq!(m.sat_count_exact(root.as_ref()), models, "model count after gc");
            let again = build(&mut m, &e);
            prop_assert_eq!(again, root.as_ref(), "rebuild after reorder+gc");
            m.unprotect(root);
        }
    }
}

#[test]
fn exact_sat_count_matches_float() {
    let mut m = Manager::new(20);
    let vars: Vec<u32> = (0..20).collect();
    for (lo, hi) in [(0u64, 100), (12345, 678910), (0, (1 << 20) - 1)] {
        let f = m.range_const(&vars, lo, hi);
        assert_eq!(m.sat_count_exact(f) as f64, m.sat_count(f), "[{lo},{hi}]");
        assert_eq!(m.sat_count_exact(f), u128::from(hi - lo + 1));
    }
    assert_eq!(m.sat_count_exact(Ref::TRUE), 1 << 20);
    assert_eq!(m.sat_count_exact(Ref::FALSE), 0);
}

#[test]
fn exact_sat_count_with_gaps_in_support() {
    let mut m = Manager::new(8);
    // Depends only on variables 2 and 5: each model leaves 6 vars free.
    let a = m.var(2);
    let b = m.var(5);
    let f = m.and(a, b);
    assert_eq!(m.sat_count_exact(f), 1 << 6);
    let g = m.xor(a, b);
    assert_eq!(m.sat_count_exact(g), 2 << 6);
}
#[test]
#[should_panic(expected = "does not fit")]
fn le_const_rejects_oversized_bound() {
    let mut m = Manager::new(4);
    m.le_const(&[0, 1, 2, 3], 16);
}

#[test]
fn wide_var_slices_work() {
    // More than 64 variables in one field: high positions are leading
    // zeros, not shift overflow.
    let mut m = Manager::new(70);
    let vars: Vec<u32> = (0..70).collect();
    let f = m.eq_const(&vars, 5);
    assert_eq!(m.sat_count_exact(f), 1);
    let g = m.le_const(&vars, 5);
    assert_eq!(m.sat_count_exact(g), 6);
}

#[test]
fn obs_counters_survive_clear_op_caches_but_gauge_drops() {
    let reg = clarify_obs::Registry::new();
    let mut m = Manager::with_registry(8, &reg);
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    let ab = m.and(a, b);
    let _f = m.or(ab, c);
    let _g = m.xor(a, c);

    let before = reg.snapshot();
    assert!(before.counter("bdd.ite_calls") > 0);
    assert!(before.counter("bdd.ite_cache_misses") > 0);
    assert!(before.gauge("bdd.ite_cache_entries") > 0);
    assert_eq!(before.counter("bdd.op_cache_clears"), 0);

    m.clear_op_caches();

    let after = reg.snapshot();
    // Counters are monotonic history: clearing the memo tables must not
    // erase them.
    assert_eq!(
        after.counter("bdd.ite_calls"),
        before.counter("bdd.ite_calls")
    );
    assert_eq!(
        after.counter("bdd.ite_cache_misses"),
        before.counter("bdd.ite_cache_misses")
    );
    // The live-entry gauge tracks the actual table, which is now empty.
    assert_eq!(after.gauge("bdd.ite_cache_entries"), 0);
    assert_eq!(after.counter("bdd.op_cache_clears"), 1);

    // Rebuilding after the clear re-populates the cache and the gauge.
    let _h = m.and(b, c);
    assert!(reg.snapshot().gauge("bdd.ite_cache_entries") > 0);

    // Dropping the manager returns the node gauge to zero.
    assert!(reg.snapshot().gauge("bdd.unique_nodes") > 0);
    drop(m);
    assert_eq!(reg.snapshot().gauge("bdd.unique_nodes"), 0);
    assert_eq!(reg.snapshot().gauge("bdd.ite_cache_entries"), 0);
}

mod gc_and_reorder {
    //! Complement-edge sharing, the root/collect lifecycle, and sifting.

    use super::*;

    #[test]
    fn negation_allocates_nothing_and_shares_every_node() {
        let (mut m, a, b, c) = three();
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let nodes_before = m.live_node_count();
        let nf = m.not(f);
        assert_eq!(
            m.live_node_count(),
            nodes_before,
            "complement negation must not touch the arena"
        );
        assert_eq!(nf.index(), f.index(), "f and !f share their top node");
        assert_eq!(m.size(f), m.size(nf), "f and !f share the whole diagram");
        assert_ne!(f, nf);
    }

    #[test]
    fn complement_edges_appear_in_stats() {
        let (mut m, a, b, c) = three();
        // iff forces mixed-polarity else edges somewhere in the diagram.
        let ab = m.iff(a, b);
        let f = m.iff(ab, c);
        assert!(!f.is_const());
        assert!(
            m.stats().complement_edges > 0,
            "a chain of iffs must store at least one complemented else edge"
        );
    }

    #[test]
    fn gc_frees_unrooted_nodes_and_keeps_rooted_semantics() {
        let mut m = Manager::new(16);
        let vars: Vec<u32> = (0..16).collect();
        let keep = m.range_const(&vars, 100, 20_000);
        let root = m.protect(keep);
        // Garbage: never rooted, dropped by the next sweep.
        for i in 0..32u64 {
            let _ = m.range_const(&vars, i * 7, i * 7 + 1_000);
        }
        let before = m.live_node_count();
        let stats = m.gc();
        assert!(stats.freed > 0, "the unrooted ranges must be swept");
        assert_eq!(stats.live, m.live_node_count());
        assert!(m.live_node_count() < before);
        // The rooted function is untouched, down to its witnesses.
        let f = root.as_ref();
        assert_eq!(m.sat_count_exact(f), 20_000 - 100 + 1);
        assert_eq!(m.any_sat(f).expect("sat").decode(&vars), 100);
        assert_eq!(m.any_sat_high(f).expect("sat").decode(&vars), 20_000);
        m.unprotect(root);
    }

    #[test]
    fn swept_slots_are_reused_without_growing_the_arena() {
        let mut m = Manager::new(16);
        let vars: Vec<u32> = (0..16).collect();
        let f = m.eq_const(&vars, 12_345);
        let root = m.protect(f);
        // Plenty of garbage, so the sweep leaves a deep free list.
        for i in 0..64u64 {
            let _ = m.range_const(&vars, i * 13, i * 13 + 4_000);
        }
        let stats = m.gc();
        assert!(
            stats.freed > 100,
            "expected a deep free list, freed {}",
            stats.freed
        );
        let capacity = m.stats().capacity_nodes;
        // New allocations must draw from the free list, not grow the arena.
        for i in 0..16u64 {
            let g = m.eq_const(&vars, 20_000 + i);
            assert!(!g.is_const());
        }
        assert_eq!(
            m.stats().capacity_nodes,
            capacity,
            "allocation after gc must draw from the free list"
        );
        m.unprotect(root);
    }

    #[test]
    fn stats_distinguish_live_nodes_from_arena_capacity() {
        let mut m = Manager::new(16);
        let vars: Vec<u32> = (0..16).collect();
        let keep = m.eq_const(&vars, 99);
        let root = m.protect(keep);
        for i in 0..16u64 {
            let _ = m.range_const(&vars, i * 11, i * 11 + 2_000);
        }
        let before = m.stats();
        assert_eq!(before.nodes, before.capacity_nodes, "no dead slots yet");
        m.gc();
        let after = m.stats();
        assert_eq!(after.nodes, m.live_node_count());
        assert!(
            after.nodes < after.capacity_nodes,
            "post-gc stats must not report dead slots as resident nodes"
        );
        assert_eq!(
            after.capacity_nodes, before.capacity_nodes,
            "sweep never shrinks the arena"
        );
        assert_eq!(after.gc_runs, 1);
        assert!(after.gc_freed_nodes > 0);
        m.unprotect(root);
    }

    #[test]
    fn reprotect_repoints_a_root_in_place() {
        let mut m = Manager::new(8);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let mut root = m.protect(f);
        let g = m.or(a, b);
        m.reprotect(&mut root, g);
        assert_eq!(root.as_ref(), g);
        assert_eq!(m.root_count(), 1, "reprotect must not grow the slab");
        m.gc();
        // f was abandoned by the reprotect; g survives.
        assert_eq!(m.sat_count_exact(root.as_ref()), 3 << 6);
        m.unprotect(root);
        assert_eq!(m.root_count(), 0);
    }

    /// The sifting target from the bench suite: `AND_i (a_i <-> b_i)` with
    /// all the `a_i` ordered before all the `b_i` is exponential; the
    /// interleaved order is linear. One pass must recover at least 1.5x.
    #[test]
    fn reorder_recovers_from_a_bad_static_order() {
        let n = 9u32;
        let mut m = Manager::new(2 * n);
        let mut f = Ref::TRUE;
        for i in 0..n {
            let a = m.var(i);
            let b = m.var(n + i);
            let e = m.iff(a, b);
            f = m.and(f, e);
        }
        let root = m.protect(f);
        let lo_before = m.any_sat(f);
        let hi_before = m.any_sat_high(f);

        let stats = m.reorder();
        assert!(stats.swaps > 0);
        assert!(
            stats.after_nodes * 3 <= stats.before_nodes * 2,
            "sifting must shrink the bad order by >=1.5x, got {} -> {}",
            stats.before_nodes,
            stats.after_nodes
        );
        assert_eq!(m.live_node_count(), stats.after_nodes);
        assert_eq!(m.stats().reorder_runs, 1);

        // Semantics and witnesses are pinned across the reorder.
        let f = root.as_ref();
        assert_eq!(m.sat_count_exact(f), 1 << n);
        assert_eq!(m.any_sat(f), lo_before, "lex-min witness changed");
        assert_eq!(m.any_sat_high(f), hi_before, "lex-max witness changed");
        m.unprotect(root);
    }

    #[test]
    fn reorder_on_an_already_good_order_is_harmless() {
        let mut m = Manager::new(8);
        let vars: Vec<u32> = (0..8).collect();
        let f = m.le_const(&vars, 100);
        let root = m.protect(f);
        let before = m.live_node_count();
        let stats = m.reorder();
        assert!(stats.after_nodes <= before);
        assert_eq!(m.sat_count_exact(root.as_ref()), 101);
        m.unprotect(root);
    }

    /// The GC-stress soak: hundreds of build/drop rounds with automatic
    /// collection armed must hold the live-node high-water flat instead of
    /// accumulating every round's garbage (the daemon-session regression
    /// this kernel exists to fix).
    #[test]
    fn auto_gc_keeps_session_live_nodes_bounded() {
        const ROUNDS: u64 = 220;
        let mut m = Manager::new(32);
        let vars: Vec<u32> = (0..32).collect();
        let valid = m.range_const(&vars, 0, u64::from(u32::MAX) / 2);
        let root = m.protect(valid);
        m.set_auto_gc(true);

        let mut high_water = 0usize;
        let mut allocated_total = 0usize;
        for round in 0..ROUNDS {
            // One "session turn": a handful of per-turn predicates that
            // nothing roots, then the turn-boundary cache clear.
            let mut acc = root.as_ref();
            for i in 0..8u64 {
                let lo = (round * 131 + i * 977) % 60_000;
                let r = m.range_const(&vars, lo, lo + 35_000);
                acc = m.xor(acc, r);
            }
            assert!(!acc.is_const());
            high_water = high_water.max(m.live_node_count());
            let capacity_before = m.stats().capacity_nodes;
            m.clear_op_caches(); // the auto-gc hook lives here
            allocated_total += capacity_before;
        }

        let stats = m.stats();
        assert!(stats.gc_runs >= 5, "auto-gc never fired: {stats:?}");
        assert!(
            high_water < 32_768,
            "live-node high-water {high_water} is not bounded"
        );
        assert!(
            stats.capacity_nodes < 32_768,
            "arena capacity {} keeps growing despite the free list",
            stats.capacity_nodes
        );
        assert!(
            allocated_total > 10 * high_water,
            "workload too small to prove anything"
        );
        // The rooted validity predicate is intact after every sweep.
        assert_eq!(
            m.sat_count_exact(root.as_ref()),
            u128::from(u32::MAX / 2) + 1
        );
        m.unprotect(root);
    }

    #[test]
    fn auto_reorder_fires_at_the_trigger_and_shrinks() {
        // Interleaving-hostile iff pairs, sized past the reorder floor
        // (n = 11 keeps ~6k live nodes rooted, above the 4096 trigger).
        let n = 11u32;
        let mut m = Manager::new(2 * n);
        let mut f = Ref::TRUE;
        for i in 0..n {
            let a = m.var(i);
            let b = m.var(n + i);
            let e = m.iff(a, b);
            f = m.and(f, e);
        }
        let root = m.protect(f);
        m.set_auto_gc(true);
        m.set_auto_reorder(true);
        let before = m.live_node_count();
        assert!(
            before >= 1 << 12,
            "workload must sit above the reorder floor"
        );
        m.clear_op_caches();
        assert_eq!(m.stats().reorder_runs, 1, "auto-reorder should have fired");
        assert!(m.live_node_count() < before);
        assert_eq!(m.sat_count_exact(root.as_ref()), 1 << n);
        m.unprotect(root);
    }
}
