//! The fixed-size direct-mapped computed cache (CUDD-style).
//!
//! Unlike the unique table, the computed cache is *lossy*: each key hashes
//! to exactly one slot and a colliding insert simply evicts the previous
//! entry. That trades completeness for an O(1) probe and hard-bounded
//! memory — losing an entry only costs a recomputation, never correctness,
//! because every operation result is re-derivable and hash-consing makes
//! the recomputation land on the same `Ref`. The between-rounds growth
//! problem of the old unbounded memo `HashMap` disappears by construction,
//! and [`ComputedCache::reset`] is a `fill` instead of a reallocation.

use crate::unique::mix_triple;

/// Key sentinel for a vacant slot. Queries always carry a non-constant
/// node index in `f` (capped far below `u32::MAX` by the manager), so a
/// vacant slot can never alias a real key.
const VACANT_KEY: u32 = u32::MAX;

/// Bounds on the slot count (each slot is 16 bytes). The floor keeps tiny
/// capacity hints usable; the ceiling caps the cache at 16 MiB.
const MIN_ENTRIES: usize = 1 << 8;
const MAX_ENTRIES: usize = 1 << 20;

/// One cached `(f, g, h) -> r` result. Binary operations with dedicated
/// kernels (xor/xnor/diff) store an operation tag in `h` instead of a
/// node index.
#[derive(Clone, Copy)]
struct Entry {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

const VACANT: Entry = Entry {
    f: VACANT_KEY,
    g: VACANT_KEY,
    h: VACANT_KEY,
    r: VACANT_KEY,
};

/// What a [`ComputedCache::put`] did to its slot, so the manager can keep
/// the occupancy gauge and eviction counter honest.
pub(crate) enum PutOutcome {
    /// The slot was vacant; occupancy grew by one.
    Fresh,
    /// The slot held a different key; it was overwritten (occupancy flat).
    Evicted,
    /// The slot already held this very key (deep recursion recomputed a
    /// memoized triple); nothing changed.
    Refreshed,
}

/// Direct-mapped lossy memo table for operation results.
pub(crate) struct ComputedCache {
    /// Power-of-two slot array.
    entries: Vec<Entry>,
    /// Occupied slots right now (resets to zero on [`ComputedCache::reset`]).
    live: usize,
    /// Cumulative collision evictions (the `bdd.computed_evictions`
    /// counter). High values mean the cache is too small for the workload.
    evictions: u64,
}

impl ComputedCache {
    /// A cache sized to twice the node-count hint (operation triples
    /// outnumber result nodes), clamped to `[MIN_ENTRIES, MAX_ENTRIES]`
    /// slots.
    pub(crate) fn with_node_capacity(node_hint: usize) -> ComputedCache {
        let cap = node_hint
            .saturating_mul(2)
            .next_power_of_two()
            .clamp(MIN_ENTRIES, MAX_ENTRIES);
        ComputedCache {
            entries: vec![VACANT; cap],
            live: 0,
            evictions: 0,
        }
    }

    #[inline]
    fn index(&self, f: u32, g: u32, h: u32) -> usize {
        mix_triple(f, g, h) as usize & (self.entries.len() - 1)
    }

    /// O(1) probe: at most one slot is ever inspected.
    #[inline]
    pub(crate) fn get(&self, f: u32, g: u32, h: u32) -> Option<u32> {
        let e = self.entries[self.index(f, g, h)];
        (e.f == f && e.g == g && e.h == h).then_some(e.r)
    }

    /// Stores `(f, g, h) -> r`, evicting whatever occupied the slot.
    pub(crate) fn put(&mut self, f: u32, g: u32, h: u32, r: u32) -> PutOutcome {
        let i = self.index(f, g, h);
        let e = &mut self.entries[i];
        let outcome = if e.f == VACANT_KEY {
            self.live += 1;
            PutOutcome::Fresh
        } else if e.f == f && e.g == g && e.h == h {
            PutOutcome::Refreshed
        } else {
            self.evictions += 1;
            PutOutcome::Evicted
        };
        *e = Entry { f, g, h, r };
        outcome
    }

    /// Empties the cache in place (no reallocation) and returns how many
    /// entries were live, so the caller can lower its occupancy gauge.
    pub(crate) fn reset(&mut self) -> usize {
        let was = self.live;
        self.entries.fill(VACANT);
        self.live = 0;
        was
    }

    /// Occupied slots right now.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Cumulative collision evictions since creation (survives resets).
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }
}
