//! Mark-and-sweep garbage collection for the node arena.
//!
//! The arena never *moves* a live node: the sweep marks dead slots with a
//! `var` sentinel and pushes them onto a free list for reuse by `mk`, so
//! every [`Ref`] to a node reachable from a [`Root`] stays valid across
//! any number of collections (and across sifting passes, which rewrite
//! slots in place without changing the function a slot denotes). That is
//! the whole safety argument (DESIGN.md §13): roots pin reachability,
//! survivors keep their indices, and the unique table and computed cache
//! — the only structures that could name dead slots — are rebuilt and
//! reset respectively at the end of each sweep.

use crate::manager::{Manager, Node, DEAD_VAR, GC_FLOOR, REORDER_FLOOR};
use crate::Ref;

/// A handle that pins a function (and everything reachable from it)
/// across garbage collection and reordering.
///
/// Obtained from [`Manager::protect`]; released with
/// [`Manager::unprotect`]. `Root` is deliberately not `Copy`/`Clone`:
/// each one owns a slot in the manager's root slab. Dropping a `Root`
/// without unprotecting it leaks the slot — the pinned nodes simply stay
/// live, which is the safe failure mode for state that lives as long as
/// its manager (the analysis spaces never unprotect their validity
/// predicates).
#[derive(Debug)]
pub struct Root {
    slot: u32,
    r: Ref,
}

impl Root {
    /// The protected function. Valid for as long as the root is held,
    /// across any number of [`Manager::gc`] / [`Manager::reorder`] calls.
    pub fn as_ref(&self) -> Ref {
        self.r
    }
}

/// What one mark-and-sweep pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Nodes that survived the sweep.
    pub live: usize,
    /// Nodes reclaimed onto the free list.
    pub freed: usize,
}

impl Manager {
    /// Pins `r` as a garbage-collection root. Everything reachable from a
    /// root survives [`Manager::gc`] and [`Manager::reorder`].
    pub fn protect(&mut self, r: Ref) -> Root {
        let slot = match self.root_free.pop() {
            Some(s) => {
                self.roots[s as usize] = Some(r);
                s
            }
            None => {
                let s = u32::try_from(self.roots.len()).expect("root slab exceeded u32");
                self.roots.push(Some(r));
                s
            }
        };
        Root { slot, r }
    }

    /// Releases a root obtained from [`Manager::protect`]. The nodes it
    /// pinned become collectable (unless another root still reaches them).
    pub fn unprotect(&mut self, root: Root) {
        debug_assert_eq!(self.roots[root.slot as usize], Some(root.r), "foreign root");
        self.roots[root.slot as usize] = None;
        self.root_free.push(root.slot);
    }

    /// Re-points an existing root at a new function, keeping its slot.
    /// Equivalent to unprotect + protect but without slab churn — the
    /// fire-set caches use this when a cached entry is refreshed.
    pub fn reprotect(&mut self, root: &mut Root, r: Ref) {
        self.roots[root.slot as usize] = Some(r);
        root.r = r;
    }

    /// Number of live root slots (diagnostics).
    pub fn root_count(&self) -> usize {
        self.roots.iter().filter(|r| r.is_some()).count()
    }

    /// Arms or disarms automatic collection inside
    /// [`Manager::clear_op_caches`]. Off by default: a bare manager keeps
    /// the historical "refs never die" contract. The analysis spaces arm
    /// it right after protecting their long-lived state.
    pub fn set_auto_gc(&mut self, enabled: bool) {
        self.auto_gc = enabled;
    }

    /// Arms or disarms automatic sifting inside
    /// [`Manager::clear_op_caches`]. Off by default.
    pub fn set_auto_reorder(&mut self, enabled: bool) {
        self.auto_reorder = enabled;
    }

    /// The auto-collection hook, called from `clear_op_caches` — the one
    /// moment no operation is mid-recursion, so the only refs that must
    /// survive are the rooted ones. Triggers are high-water marks that
    /// re-arm upward after each pass, so a session that plateaus stops
    /// paying for collections it does not need.
    pub(crate) fn maybe_collect(&mut self) {
        if self.auto_gc && self.live_nodes >= self.gc_trigger {
            self.gc();
        }
        if self.auto_reorder && self.live_nodes >= self.reorder_trigger {
            self.reorder();
            self.reorder_trigger = (self.live_nodes * 4).max(REORDER_FLOOR);
        }
    }

    /// Runs a mark-and-sweep collection now.
    ///
    /// Everything unreachable from the [`Root`] set is reclaimed; the
    /// unique table is rebuilt from the survivors and the computed cache
    /// is reset (its entries may name swept slots). Refs to surviving
    /// nodes — including every rooted ref — remain valid and unchanged.
    pub fn gc(&mut self) -> GcStats {
        let marks = self.mark_from_roots();
        let mut freed = 0usize;
        for (idx, &marked) in marks.iter().enumerate().skip(1) {
            let dead_already = self.nodes[idx].var >= DEAD_VAR;
            if marked || dead_already {
                continue;
            }
            self.nodes[idx].var = DEAD_VAR;
            self.free.push(idx as u32);
            freed += 1;
        }
        self.live_nodes -= freed;
        self.unique.rebuild(&self.nodes, self.live_nodes);
        let cache_live = self.computed.reset();
        self.obs.ite_cache_entries.sub(cache_live as i64);
        self.obs.unique_nodes.sub(freed as i64);
        self.obs.gc_runs.incr();
        self.obs.gc_freed.add(freed as u64);
        self.gc_runs += 1;
        self.gc_freed += freed as u64;
        self.gc_trigger = (self.live_nodes * 2).max(GC_FLOOR);
        GcStats {
            live: self.live_nodes,
            freed,
        }
    }

    /// Marks every arena slot reachable from the root set. Index 0 (the
    /// terminal) is always marked.
    fn mark_from_roots(&self) -> Vec<bool> {
        let mut marks = vec![false; self.nodes.len()];
        marks[0] = true;
        let mut stack: Vec<u32> = self.roots.iter().flatten().map(|r| r.index()).collect();
        while let Some(idx) = stack.pop() {
            let i = idx as usize;
            if marks[i] {
                continue;
            }
            marks[i] = true;
            let n: Node = self.nodes[i];
            debug_assert!(n.var < DEAD_VAR, "root reached a dead node");
            if !n.lo.is_const() {
                stack.push(n.lo.index());
            }
            if !n.hi.is_const() {
                stack.push(n.hi.index());
            }
        }
        marks
    }
}
