//! Reduced ordered binary decision diagrams (ROBDDs) with hash-consing.
//!
//! This crate is the symbolic-reasoning substrate for the Clarify analyses.
//! It deliberately favours simplicity and robustness over micro-optimisation:
//! nodes live in a flat arena, every node is unique (hash-consed), and all
//! Boolean operations are implemented through a cached [`Manager::ite`]
//! (if-then-else) kernel, the classic Brace–Rudell–Bryant construction.
//!
//! # Example
//!
//! ```
//! use clarify_bdd::Manager;
//!
//! let mut m = Manager::new(4);
//! let a = m.var(0);
//! let b = m.var(1);
//! let f = m.and(a, b);
//! let g = m.or(a, b);
//! assert!(m.implies_true(f, g));
//! assert_eq!(m.sat_count(f), 4.0); // a & b over 4 variables: 2^2 models
//! ```
//!
//! # Variable order
//!
//! Variables are identified by `u32` indices; the variable order is the
//! numeric order. Choosing a good order is the caller's job (the analysis
//! crate interleaves related fields).

#![warn(missing_docs)]

mod cache;
mod cube;
mod manager;
mod unique;

pub use cube::Cube;
pub use manager::{Manager, Ref, Stats};

#[cfg(test)]
mod tests;
