//! Reduced ordered binary decision diagrams (ROBDDs) with hash-consing,
//! complement edges, dynamic variable reordering, and a garbage-collected
//! node arena.
//!
//! This crate is the symbolic-reasoning substrate for the Clarify analyses.
//! Nodes live in a flat arena, every node is unique (hash-consed), and the
//! operation kernel is the classic Brace–Rudell–Bryant construction with
//! the CUDD refinements layered on (DESIGN.md §8/§13):
//!
//! - **Complement edges**: a [`Ref`] carries a complement bit, so negation
//!   is O(1) and `f`/`!f` share all nodes (the then-edge of every stored
//!   node is kept regular for canonicity).
//! - **Sifting** ([`Manager::reorder`]): adjacent-level swaps search for a
//!   better variable order when the caller's static order is poor.
//! - **Mark-and-sweep GC** ([`Manager::gc`]): [`Root`] handles pin
//!   long-lived functions; everything else is reclaimed between rounds,
//!   so daemon sessions stop growing monotonically.
//!
//! # Example
//!
//! ```
//! use clarify_bdd::Manager;
//!
//! let mut m = Manager::new(4);
//! let a = m.var(0);
//! let b = m.var(1);
//! let f = m.and(a, b);
//! let g = m.or(a, b);
//! assert!(m.implies_true(f, g));
//! assert_eq!(m.sat_count(f), 4.0); // a & b over 4 variables: 2^2 models
//! ```
//!
//! # Variable order
//!
//! Variables are identified by `u32` indices; the *initial* variable order
//! is the numeric order. A good initial order is still the caller's job
//! (the analysis crate interleaves related fields), but
//! [`Manager::reorder`] can recover from a bad one. Witnesses from
//! [`Manager::any_sat`] are order-invariant, so reordering never changes
//! decoded output.

#![warn(missing_docs)]

mod cache;
mod cube;
mod gc;
mod manager;
mod reorder;
mod unique;

pub use cube::Cube;
pub use gc::{GcStats, Root};
pub use manager::{Manager, Ref, Stats};
pub use reorder::ReorderStats;

#[cfg(test)]
mod tests;
