//! The BDD node arena and the `ite`-based operation kernel.

use std::collections::HashMap;

use clarify_obs::{Counter, Gauge, Registry};

use crate::cache::{ComputedCache, PutOutcome};
use crate::cube::Cube;
use crate::unique::UniqueTable;

/// A handle to a BDD function owned by a [`Manager`].
///
/// `Ref`s are cheap to copy and compare; equal `Ref`s from the same manager
/// denote semantically equal Boolean functions (canonicity of ROBDDs).
/// A `Ref` must only be used with the manager that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The constant-false function.
    pub const FALSE: Ref = Ref(0);
    /// The constant-true function.
    pub const TRUE: Ref = Ref(1);

    /// Whether this handle is one of the two terminal nodes.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Ref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Ref::FALSE => write!(f, "Ref(F)"),
            Ref::TRUE => write!(f, "Ref(T)"),
            Ref(n) => write!(f, "Ref({n})"),
        }
    }
}

#[derive(Clone, Copy)]
pub(crate) struct Node {
    pub(crate) var: u32,
    pub(crate) lo: Ref,
    pub(crate) hi: Ref,
}

/// Operation tags for the binary kernels with their own computed-cache
/// namespace (xor/xnor/diff). Tags live in the cache key's third slot,
/// above every legal node index, so `(f, g, OP_XOR)` can never collide
/// with a genuine `ite` triple.
const OP_XOR: u32 = u32::MAX - 1;
const OP_XNOR: u32 = u32::MAX - 2;
const OP_DIFF: u32 = u32::MAX - 3;

/// Hard ceiling on arena indices: everything above is reserved for the
/// operation tags and the tables' vacancy sentinels.
const MAX_NODES: u32 = u32::MAX - 8;

/// Default capacity hint (in nodes) for managers built without one.
const DEFAULT_NODE_HINT: usize = 1 << 14;

/// Usage counters for diagnostics and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of live (hash-consed) internal nodes, terminals excluded.
    pub nodes: usize,
    /// Hits in the computed cache since creation.
    pub cache_hits: u64,
    /// Misses in the computed cache since creation.
    pub cache_misses: u64,
    /// Currently occupied slots of the bounded computed cache (drops to
    /// zero after [`Manager::clear_op_caches`]; `exists`/`restrict` memos
    /// are per-call and never persist, so they are not counted here).
    pub ite_cache_entries: usize,
    /// Cumulative unique-table slot inspections. A value close to the
    /// node count means the hash is spreading keys well.
    pub unique_probes: u64,
    /// Cumulative computed-cache collision evictions. The cache is
    /// direct-mapped and lossy; evictions cost recomputation, not
    /// correctness.
    pub computed_evictions: u64,
}

/// Metric handles captured once at manager construction, so the `ite`
/// kernel never performs a registry lookup. The handles are write-only
/// and aggregate across every manager wired to the same registry
/// (worker-local managers in a `clarify-par` pool all feed one total);
/// with the default disabled registry each update is a single branch.
struct ObsHandles {
    ite_calls: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_clears: Counter,
    /// Unique-table slot inspections across all managers on this registry.
    unique_probes: Counter,
    /// Computed-cache collision evictions across all managers.
    computed_evictions: Counter,
    /// Live hash-consed nodes across all managers on this registry.
    unique_nodes: Gauge,
    /// Live computed-cache entries across all managers on this registry.
    ite_cache_entries: Gauge,
}

impl ObsHandles {
    fn capture(registry: &Registry) -> ObsHandles {
        ObsHandles {
            ite_calls: registry.counter("bdd.ite_calls"),
            cache_hits: registry.counter("bdd.ite_cache_hits"),
            cache_misses: registry.counter("bdd.ite_cache_misses"),
            cache_clears: registry.counter("bdd.op_cache_clears"),
            unique_probes: registry.counter("bdd.unique_probes"),
            computed_evictions: registry.counter("bdd.computed_evictions"),
            unique_nodes: registry.gauge("bdd.unique_nodes"),
            ite_cache_entries: registry.gauge("bdd.ite_cache_entries"),
        }
    }
}

/// An arena of hash-consed BDD nodes plus the operation caches.
///
/// All functions created by one manager share structure. The manager never
/// frees nodes (no garbage collection): Clarify analyses are short-lived and
/// bounded, and a fresh manager per analysis keeps the design simple — the
/// same trade-off smoltcp makes by preferring robustness over cleverness.
///
/// The kernel data structures are hand-rolled for the hot path (see
/// DESIGN.md §8): the unique table is an open-addressing hash table of
/// bare `u32` arena indices, and the operation memo is a fixed-size
/// direct-mapped *lossy* computed cache in the CUDD tradition. Losing a
/// computed-cache entry never loses correctness — results are re-derived
/// and hash-consing lands them on the same [`Ref`].
pub struct Manager {
    nodes: Vec<Node>,
    unique: UniqueTable,
    computed: ComputedCache,
    num_vars: u32,
    cache_hits: u64,
    cache_misses: u64,
    obs: ObsHandles,
}

impl Manager {
    /// Creates a manager for functions over `num_vars` Boolean variables
    /// numbered `0..num_vars` (variable 0 is tested first).
    ///
    /// Metric handles are captured from the [`clarify_obs::global`]
    /// registry *current at this call*; use [`Manager::with_registry`]
    /// to inject one explicitly (isolated tests, per-request registries).
    pub fn new(num_vars: u32) -> Self {
        Self::with_capacity(num_vars, DEFAULT_NODE_HINT)
    }

    /// Like [`Manager::new`], but pre-sizes the unique table and computed
    /// cache for roughly `node_hint` live nodes, so workloads with a known
    /// footprint (the analysis spaces derive one from their atomic
    /// predicate counts) skip the early rehash ladder. The hint is only a
    /// hint: the arena and unique table still grow on demand, and the
    /// computed cache is clamped to a bounded size either way.
    pub fn with_capacity(num_vars: u32, node_hint: usize) -> Self {
        Self::with_capacity_and_registry(num_vars, node_hint, &clarify_obs::global())
    }

    /// Like [`Manager::new`], but records metrics into `registry`
    /// instead of the process-global one.
    pub fn with_registry(num_vars: u32, registry: &Registry) -> Self {
        Self::with_capacity_and_registry(num_vars, DEFAULT_NODE_HINT, registry)
    }

    /// The fully explicit constructor: capacity hint plus registry.
    pub fn with_capacity_and_registry(
        num_vars: u32,
        node_hint: usize,
        registry: &Registry,
    ) -> Self {
        // Slots 0 and 1 are the terminals; their contents are never read
        // through `node()` because `is_const` handles take an early return,
        // but give them sentinel values anyway.
        let sentinel = Node {
            var: u32::MAX,
            lo: Ref::FALSE,
            hi: Ref::TRUE,
        };
        let mut nodes = Vec::with_capacity(node_hint.saturating_add(2).min(1 << 24));
        nodes.push(sentinel);
        nodes.push(sentinel);
        Manager {
            nodes,
            unique: UniqueTable::with_node_capacity(node_hint),
            computed: ComputedCache::with_node_capacity(node_hint),
            num_vars,
            cache_hits: 0,
            cache_misses: 0,
            obs: ObsHandles::capture(registry),
        }
    }

    /// Number of variables this manager was created with.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Current counters.
    pub fn stats(&self) -> Stats {
        Stats {
            nodes: self.nodes.len() - 2,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            ite_cache_entries: self.computed.live(),
            unique_probes: self.unique.probes(),
            computed_evictions: self.computed.evictions(),
        }
    }

    /// Empties the computed cache while preserving the unique table, so
    /// every outstanding [`Ref`] stays valid and hash-consing (and
    /// therefore canonicity) is unaffected.
    ///
    /// The cache memoizes *history*: entries for intermediate functions
    /// from finished queries are rarely hit again. Long-running callers
    /// (the disambiguators between rounds, the linter between objects)
    /// call this at phase boundaries for a clean-slate hit/miss profile.
    /// Since the cache became a fixed-size direct-mapped table this is a
    /// cheap in-place `fill` — no reallocation, and skipping the call no
    /// longer risks unbounded growth. The hit/miss counters are
    /// cumulative and survive.
    pub fn clear_op_caches(&mut self) {
        self.obs.cache_clears.incr();
        let live = self.computed.reset();
        self.obs.ite_cache_entries.sub(live as i64);
    }

    fn node(&self, r: Ref) -> Node {
        debug_assert!(!r.is_const());
        self.nodes[r.idx()]
    }

    /// The level used for ordering comparisons; terminals sort last.
    fn level(&self, r: Ref) -> u32 {
        if r.is_const() {
            u32::MAX
        } else {
            self.node(r).var
        }
    }

    /// Finds or creates the node `(var, lo, hi)`, applying the reduction rule.
    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.level(lo) && var < self.level(hi),
            "order violation"
        );
        // Grow (if needed) before probing so the insertion slot stays valid.
        self.unique.reserve_one(&self.nodes);
        let probes_before = self.unique.probes();
        let r = match self.unique.find_or_slot(&self.nodes, var, lo.0, hi.0) {
            Ok(idx) => Ref(idx),
            Err(slot) => {
                let idx = u32::try_from(self.nodes.len())
                    .ok()
                    .filter(|&i| i < MAX_NODES)
                    .expect("BDD arena exceeded the u32 index space");
                self.nodes.push(Node { var, lo, hi });
                self.unique.insert(slot, idx);
                self.obs.unique_nodes.add(1);
                Ref(idx)
            }
        };
        self.obs
            .unique_probes
            .add(self.unique.probes() - probes_before);
        r
    }

    /// The function that is true iff variable `var` is true.
    pub fn var(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Ref::FALSE, Ref::TRUE)
    }

    /// The function that is true iff variable `var` is false.
    pub fn nvar(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Ref::TRUE, Ref::FALSE)
    }

    /// A literal: the variable if `positive`, its negation otherwise.
    pub fn literal(&mut self, var: u32, positive: bool) -> Ref {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// Cofactors of `f` with respect to the top variable `var`.
    fn cofactors(&self, f: Ref, var: u32) -> (Ref, Ref) {
        if f.is_const() {
            return (f, f);
        }
        let n = self.node(f);
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: the function `(f & g) | (!f & h)`.
    ///
    /// This is the single kernel every binary operation reduces to.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.ite_norm(f, g, h)
    }

    /// Standard-triple normalization, then the cached apply. Internal
    /// recursion re-enters here, so the rewrites fire at every level of
    /// the recursion, not just at the API boundary.
    ///
    /// Rewrites (Brace–Rudell–Bryant):
    /// - terminal `f` selects an argument;
    /// - `ite(f, f, h) = ite(f, 1, h)` and `ite(f, g, f) = ite(f, g, 0)`;
    /// - equal branches collapse; `ite(f, 1, 0) = f`;
    /// - the commuting forms are argument-canonicalized by `Ref` order:
    ///   `ite(f, 1, h) = f|h = ite(h, 1, f)` and
    ///   `ite(f, g, 0) = f&g = ite(g, f, 0)`, so both operand orders share
    ///   one computed-cache entry. (`ite(f, 0, h) = !f & h` does *not*
    ///   commute and gets no swap.)
    fn ite_norm(&mut self, mut f: Ref, mut g: Ref, mut h: Ref) -> Ref {
        if f == Ref::TRUE {
            return g;
        }
        if f == Ref::FALSE {
            return h;
        }
        // f is non-constant from here on.
        if g == f {
            g = Ref::TRUE;
        }
        if h == f {
            h = Ref::FALSE;
        }
        if g == h {
            return g;
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return f;
        }
        if g == Ref::TRUE {
            // Disjunction: both operands are non-constant here (h constant
            // was caught above), order them.
            if h < f {
                std::mem::swap(&mut f, &mut h);
            }
        } else if h == Ref::FALSE && g < f {
            // Conjunction: same argument ordering.
            std::mem::swap(&mut f, &mut g);
        }
        self.ite_apply(f, g, h)
    }

    /// The cached Shannon expansion for an already-normalized triple.
    fn ite_apply(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        if let Some(r) = self.computed.get(f.0, g.0, h.0) {
            self.cache_hits += 1;
            self.obs.cache_hits.incr();
            return Ref(r);
        }
        self.cache_misses += 1;
        self.obs.cache_misses.incr();

        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite_norm(f0, g0, h0);
        let hi = self.ite_norm(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.cache_put(f.0, g.0, h.0, r.0);
        r
    }

    /// Records an operation result, keeping the occupancy gauge and the
    /// eviction counter in step with what the lossy cache actually did.
    fn cache_put(&mut self, f: u32, g: u32, h: u32, r: u32) {
        match self.computed.put(f, g, h, r) {
            PutOutcome::Fresh => self.obs.ite_cache_entries.add(1),
            PutOutcome::Evicted => self.obs.computed_evictions.incr(),
            PutOutcome::Refreshed => {}
        }
    }

    /// Logical negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.not_rec(f)
    }

    fn not_rec(&mut self, f: Ref) -> Ref {
        match f {
            Ref::FALSE => Ref::TRUE,
            Ref::TRUE => Ref::FALSE,
            _ => self.ite_apply(f, Ref::FALSE, Ref::TRUE),
        }
    }

    /// Logical conjunction (a dedicated apply entry: operands are ordered
    /// so `and(a, b)` and `and(b, a)` share one computed-cache entry).
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.and_rec(f, g)
    }

    fn and_rec(&mut self, f: Ref, g: Ref) -> Ref {
        if f == g || g == Ref::TRUE {
            return f;
        }
        if f == Ref::TRUE {
            return g;
        }
        if f == Ref::FALSE || g == Ref::FALSE {
            return Ref::FALSE;
        }
        let (f, g) = if g < f { (g, f) } else { (f, g) };
        self.ite_apply(f, g, Ref::FALSE)
    }

    /// Logical disjunction (a dedicated apply entry, operand-ordered like
    /// [`Manager::and`]).
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.or_rec(f, g)
    }

    fn or_rec(&mut self, f: Ref, g: Ref) -> Ref {
        if f == g || g == Ref::FALSE {
            return f;
        }
        if f == Ref::FALSE {
            return g;
        }
        if f == Ref::TRUE || g == Ref::TRUE {
            return Ref::TRUE;
        }
        let (f, h) = if g < f { (g, f) } else { (f, g) };
        self.ite_apply(f, Ref::TRUE, h)
    }

    /// Exclusive or. A dedicated kernel: one recursion under the
    /// `(f, g, OP_XOR)` cache key instead of the old `not` + `ite` pair,
    /// so no throwaway negation nodes are materialized.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.xor_rec(f, g)
    }

    fn xor_rec(&mut self, f: Ref, g: Ref) -> Ref {
        if f == g {
            return Ref::FALSE;
        }
        if f == Ref::FALSE {
            return g;
        }
        if g == Ref::FALSE {
            return f;
        }
        if f == Ref::TRUE {
            return self.not_rec(g);
        }
        if g == Ref::TRUE {
            return self.not_rec(f);
        }
        // Commutative: order the operands for cache sharing.
        let (f, g) = if g < f { (g, f) } else { (f, g) };
        if let Some(r) = self.computed.get(f.0, g.0, OP_XOR) {
            self.cache_hits += 1;
            self.obs.cache_hits.incr();
            return Ref(r);
        }
        self.cache_misses += 1;
        self.obs.cache_misses.incr();
        let top = self.level(f).min(self.level(g));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let lo = self.xor_rec(f0, g0);
        let hi = self.xor_rec(f1, g1);
        let r = self.mk(top, lo, hi);
        self.cache_put(f.0, g.0, OP_XOR, r.0);
        r
    }

    /// Material implication `f -> g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.ite_norm(f, g, Ref::TRUE)
    }

    /// Biconditional `f <-> g`. Dedicated kernel under `(f, g, OP_XNOR)`.
    pub fn iff(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.xnor_rec(f, g)
    }

    fn xnor_rec(&mut self, f: Ref, g: Ref) -> Ref {
        if f == g {
            return Ref::TRUE;
        }
        if f == Ref::TRUE {
            return g;
        }
        if g == Ref::TRUE {
            return f;
        }
        if f == Ref::FALSE {
            return self.not_rec(g);
        }
        if g == Ref::FALSE {
            return self.not_rec(f);
        }
        let (f, g) = if g < f { (g, f) } else { (f, g) };
        if let Some(r) = self.computed.get(f.0, g.0, OP_XNOR) {
            self.cache_hits += 1;
            self.obs.cache_hits.incr();
            return Ref(r);
        }
        self.cache_misses += 1;
        self.obs.cache_misses.incr();
        let top = self.level(f).min(self.level(g));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let lo = self.xnor_rec(f0, g0);
        let hi = self.xnor_rec(f1, g1);
        let r = self.mk(top, lo, hi);
        self.cache_put(f.0, g.0, OP_XNOR, r.0);
        r
    }

    /// Difference `f & !g`. Dedicated kernel under `(f, g, OP_DIFF)`
    /// (not commutative — no operand swap).
    pub fn diff(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.diff_rec(f, g)
    }

    fn diff_rec(&mut self, f: Ref, g: Ref) -> Ref {
        if f == Ref::FALSE || f == g || g == Ref::TRUE {
            return Ref::FALSE;
        }
        if g == Ref::FALSE {
            return f;
        }
        if f == Ref::TRUE {
            return self.not_rec(g);
        }
        if let Some(r) = self.computed.get(f.0, g.0, OP_DIFF) {
            self.cache_hits += 1;
            self.obs.cache_hits.incr();
            return Ref(r);
        }
        self.cache_misses += 1;
        self.obs.cache_misses.incr();
        let top = self.level(f).min(self.level(g));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let lo = self.diff_rec(f0, g0);
        let hi = self.diff_rec(f1, g1);
        let r = self.mk(top, lo, hi);
        self.cache_put(f.0, g.0, OP_DIFF, r.0);
        r
    }

    /// Conjunction over an iterator (true for the empty sequence).
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        let mut acc = Ref::TRUE;
        for r in items {
            acc = self.and(acc, r);
            if acc == Ref::FALSE {
                break;
            }
        }
        acc
    }

    /// Disjunction over an iterator (false for the empty sequence).
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        let mut acc = Ref::FALSE;
        for r in items {
            acc = self.or(acc, r);
            if acc == Ref::TRUE {
                break;
            }
        }
        acc
    }

    /// Whether `f -> g` is a tautology, i.e. every model of `f` models `g`.
    pub fn implies_true(&mut self, f: Ref, g: Ref) -> bool {
        self.implies(f, g) == Ref::TRUE
    }

    /// Whether `f` and `g` share at least one model.
    pub fn intersects(&mut self, f: Ref, g: Ref) -> bool {
        self.and(f, g) != Ref::FALSE
    }

    /// Existential quantification of a set of variables (sorted or not).
    pub fn exists(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let mut sorted: Vec<u32> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut memo = HashMap::new();
        self.exists_rec(f, &sorted, &mut memo)
    }

    fn exists_rec(&mut self, f: Ref, vars: &[u32], memo: &mut HashMap<Ref, Ref>) -> Ref {
        if f.is_const() || vars.is_empty() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.node(f);
        // Drop quantified variables that are above the node's variable.
        let rest = match vars.iter().position(|&v| v >= n.var) {
            Some(i) => &vars[i..],
            None => return f,
        };
        let r = if rest.first() == Some(&n.var) {
            let lo = self.exists_rec(n.lo, &rest[1..], memo);
            let hi = self.exists_rec(n.hi, &rest[1..], memo);
            self.or_rec(lo, hi)
        } else {
            let lo = self.exists_rec(n.lo, rest, memo);
            let hi = self.exists_rec(n.hi, rest, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification of a set of variables.
    pub fn forall(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// Restricts `f` by fixing `var` to `value`.
    pub fn restrict(&mut self, f: Ref, var: u32, value: bool) -> Ref {
        let mut memo = HashMap::new();
        self.restrict_rec(f, var, value, &mut memo)
    }

    fn restrict_rec(&mut self, f: Ref, var: u32, value: bool, memo: &mut HashMap<Ref, Ref>) -> Ref {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let r = if n.var == var {
            if value {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict_rec(n.lo, var, value, memo);
            let hi = self.restrict_rec(n.hi, var, value, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Number of satisfying assignments over all `num_vars` variables,
    /// as an `f64` (exact for counts below 2^53; analyses here stay far
    /// below that threshold per field).
    pub fn sat_count(&self, f: Ref) -> f64 {
        let mut memo: HashMap<Ref, f64> = HashMap::new();
        let frac = self.sat_fraction(f, &mut memo);
        frac * 2f64.powi(self.num_vars as i32)
    }

    /// Fraction of the full assignment space that satisfies `f` (in `[0,1]`).
    fn sat_fraction(&self, f: Ref, memo: &mut HashMap<Ref, f64>) -> f64 {
        match f {
            Ref::FALSE => 0.0,
            Ref::TRUE => 1.0,
            _ => {
                if let Some(&x) = memo.get(&f) {
                    return x;
                }
                let n = self.node(f);
                let x = 0.5 * self.sat_fraction(n.lo, memo) + 0.5 * self.sat_fraction(n.hi, memo);
                memo.insert(f, x);
                x
            }
        }
    }

    /// Returns one satisfying assignment as a [`Cube`], or `None` when `f`
    /// is unsatisfiable. Variables not mentioned by any node along the found
    /// path are left unconstrained in the cube.
    pub fn any_sat(&self, f: Ref) -> Option<Cube> {
        if f == Ref::FALSE {
            return None;
        }
        let mut cube = Cube::unconstrained(self.num_vars);
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            // Prefer the low branch deterministically, unless it is false.
            if n.lo != Ref::FALSE {
                cube.set(n.var, false);
                cur = n.lo;
            } else {
                cube.set(n.var, true);
                cur = n.hi;
            }
        }
        debug_assert_eq!(cur, Ref::TRUE);
        Some(cube)
    }

    /// Like [`Manager::any_sat`], but prefers the **high** branch, yielding a
    /// different witness when one exists. Useful to diversify examples.
    pub fn any_sat_high(&self, f: Ref) -> Option<Cube> {
        if f == Ref::FALSE {
            return None;
        }
        let mut cube = Cube::unconstrained(self.num_vars);
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            if n.hi != Ref::FALSE {
                cube.set(n.var, true);
                cur = n.hi;
            } else {
                // ROBDD reduction guarantees lo != hi, so lo cannot also
                // be FALSE here.
                cube.set(n.var, false);
                cur = n.lo;
            }
        }
        debug_assert_eq!(cur, Ref::TRUE);
        Some(cube)
    }

    /// Evaluates `f` under a total assignment.
    pub fn eval(&self, f: Ref, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        cur == Ref::TRUE
    }

    /// The set of variables `f` actually depends on, ascending.
    pub fn support(&self, f: Ref) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Number of internal nodes reachable from `f` (a size measure).
    pub fn size(&self, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            count += 1;
            let n = self.node(r);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Builds the function "the variables `vars` (MSB first) encode exactly
    /// the value `value`". Panics if `value` does not fit in `vars.len()` bits.
    pub fn eq_const(&mut self, vars: &[u32], value: u64) -> Ref {
        assert!(
            vars.len() >= 64 - value.leading_zeros() as usize,
            "value {value} does not fit in {} bits",
            vars.len()
        );
        let mut acc = Ref::TRUE;
        for (i, &v) in vars.iter().enumerate() {
            // Positions beyond the u64 width hold leading zero bits.
            let shift = vars.len() - 1 - i;
            let bit = shift < 64 && (value >> shift) & 1 == 1;
            let lit = self.literal(v, bit);
            acc = self.and(acc, lit);
        }
        acc
    }

    /// Builds "the unsigned value of `vars` (MSB first) is <= `bound`".
    pub fn le_const(&mut self, vars: &[u32], bound: u64) -> Ref {
        // A bound that does not fit would silently truncate into a
        // different constraint.
        assert!(
            vars.len() >= 64 - bound.leading_zeros() as usize,
            "bound {bound} does not fit in {} bits",
            vars.len()
        );
        // Walk from MSB: at each position we can either match the bound bit
        // exactly and continue, or go strictly below it and accept.
        let mut acc = Ref::TRUE; // all remaining bits equal the bound so far
                                 // Build from LSB side backwards for a linear-size result.
        for (i, &v) in vars.iter().enumerate().rev() {
            let shift = vars.len() - 1 - i;
            let bit = shift < 64 && (bound >> shift) & 1 == 1;
            let lit = self.var(v);
            acc = if bit {
                // var may be 0 (strictly less, rest free) or 1 (must stay <=).
                let nlit = self.not(lit);
                let stay = self.and(lit, acc);
                self.or(nlit, stay)
            } else {
                // var must be 0 and the rest must stay <=.
                let nlit = self.not(lit);
                self.and(nlit, acc)
            };
        }
        acc
    }

    /// Builds "the unsigned value of `vars` (MSB first) is >= `bound`".
    pub fn ge_const(&mut self, vars: &[u32], bound: u64) -> Ref {
        if bound == 0 {
            return Ref::TRUE;
        }
        let le = self.le_const(vars, bound - 1);
        self.not(le)
    }

    /// Builds "the unsigned value of `vars` lies in `[lo, hi]`" (inclusive).
    pub fn range_const(&mut self, vars: &[u32], lo: u64, hi: u64) -> Ref {
        if lo > hi {
            return Ref::FALSE;
        }
        let ge = self.ge_const(vars, lo);
        let le = self.le_const(vars, hi);
        self.and(ge, le)
    }
}

impl Drop for Manager {
    /// Lowers the live-resource gauges by this manager's contribution,
    /// so `bdd.unique_nodes` / `bdd.ite_cache_entries` track what is
    /// actually alive across short-lived per-analysis managers.
    fn drop(&mut self) {
        self.obs.unique_nodes.sub((self.nodes.len() - 2) as i64);
        self.obs.ite_cache_entries.sub(self.computed.live() as i64);
    }
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("num_vars", &self.num_vars)
            .field("nodes", &(self.nodes.len() - 2))
            .finish()
    }
}

impl Manager {
    /// Exact number of satisfying assignments as a `u128`. Panics if the
    /// manager has more than 127 variables (use [`Manager::sat_count`]
    /// there); all Clarify spaces stay below that bound.
    pub fn sat_count_exact(&self, f: Ref) -> u128 {
        assert!(
            self.num_vars <= 127,
            "sat_count_exact supports at most 127 variables"
        );
        let mut memo: HashMap<Ref, u128> = HashMap::new();
        // Count over the variables below each node, then scale.
        self.count_from(f, 0, &mut memo)
    }

    /// Models of `f` assuming variables `level..num_vars` are still free,
    /// memoized per node (each node's count is normalized to its own
    /// variable level before scaling to the query level).
    fn count_from(&self, f: Ref, level: u32, memo: &mut HashMap<Ref, u128>) -> u128 {
        match f {
            Ref::FALSE => 0,
            Ref::TRUE => 1u128 << (self.num_vars - level),
            _ => {
                let n = self.node(f);
                let at_node = if let Some(&c) = memo.get(&f) {
                    c
                } else {
                    let lo = self.count_from(n.lo, n.var + 1, memo);
                    let hi = self.count_from(n.hi, n.var + 1, memo);
                    let c = lo + hi;
                    memo.insert(f, c);
                    c
                };
                // Scale by the variables skipped between `level` and the
                // node's variable.
                at_node << (n.var - level)
            }
        }
    }
}
