//! The BDD node arena and the `ite`-based operation kernel.

use std::collections::HashMap;

use clarify_obs::{Counter, Gauge, Registry};

use crate::cube::Cube;

/// A handle to a BDD function owned by a [`Manager`].
///
/// `Ref`s are cheap to copy and compare; equal `Ref`s from the same manager
/// denote semantically equal Boolean functions (canonicity of ROBDDs).
/// A `Ref` must only be used with the manager that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

impl Ref {
    /// The constant-false function.
    pub const FALSE: Ref = Ref(0);
    /// The constant-true function.
    pub const TRUE: Ref = Ref(1);

    /// Whether this handle is one of the two terminal nodes.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Ref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Ref::FALSE => write!(f, "Ref(F)"),
            Ref::TRUE => write!(f, "Ref(T)"),
            Ref(n) => write!(f, "Ref({n})"),
        }
    }
}

#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// Usage counters for diagnostics and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of live (hash-consed) internal nodes, terminals excluded.
    pub nodes: usize,
    /// Hits in the `ite` memo cache since creation.
    pub cache_hits: u64,
    /// Misses in the `ite` memo cache since creation.
    pub cache_misses: u64,
    /// Current entries in the `ite` memo cache (drops to zero after
    /// [`Manager::clear_op_caches`]; `exists`/`restrict` memos are
    /// per-call and never persist, so they are not counted here).
    pub ite_cache_entries: usize,
}

/// Metric handles captured once at manager construction, so the `ite`
/// kernel never performs a registry lookup. The handles are write-only
/// and aggregate across every manager wired to the same registry
/// (worker-local managers in a `clarify-par` pool all feed one total);
/// with the default disabled registry each update is a single branch.
struct ObsHandles {
    ite_calls: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_clears: Counter,
    /// Live hash-consed nodes across all managers on this registry.
    unique_nodes: Gauge,
    /// Live `ite`-cache entries across all managers on this registry.
    ite_cache_entries: Gauge,
}

impl ObsHandles {
    fn capture(registry: &Registry) -> ObsHandles {
        ObsHandles {
            ite_calls: registry.counter("bdd.ite_calls"),
            cache_hits: registry.counter("bdd.ite_cache_hits"),
            cache_misses: registry.counter("bdd.ite_cache_misses"),
            cache_clears: registry.counter("bdd.op_cache_clears"),
            unique_nodes: registry.gauge("bdd.unique_nodes"),
            ite_cache_entries: registry.gauge("bdd.ite_cache_entries"),
        }
    }
}

/// An arena of hash-consed BDD nodes plus the operation caches.
///
/// All functions created by one manager share structure. The manager never
/// frees nodes (no garbage collection): Clarify analyses are short-lived and
/// bounded, and a fresh manager per analysis keeps the design simple — the
/// same trade-off smoltcp makes by preferring robustness over cleverness.
pub struct Manager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, Ref, Ref), Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    num_vars: u32,
    cache_hits: u64,
    cache_misses: u64,
    obs: ObsHandles,
}

impl Manager {
    /// Creates a manager for functions over `num_vars` Boolean variables
    /// numbered `0..num_vars` (variable 0 is tested first).
    ///
    /// Metric handles are captured from the [`clarify_obs::global`]
    /// registry *current at this call*; use [`Manager::with_registry`]
    /// to inject one explicitly (isolated tests, per-request registries).
    pub fn new(num_vars: u32) -> Self {
        Self::with_registry(num_vars, &clarify_obs::global())
    }

    /// Like [`Manager::new`], but records metrics into `registry`
    /// instead of the process-global one.
    pub fn with_registry(num_vars: u32, registry: &Registry) -> Self {
        // Slots 0 and 1 are the terminals; their contents are never read
        // through `node()` because `is_const` handles take an early return,
        // but give them sentinel values anyway.
        let sentinel = Node {
            var: u32::MAX,
            lo: Ref::FALSE,
            hi: Ref::TRUE,
        };
        Manager {
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
            cache_hits: 0,
            cache_misses: 0,
            obs: ObsHandles::capture(registry),
        }
    }

    /// Number of variables this manager was created with.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Current counters.
    pub fn stats(&self) -> Stats {
        Stats {
            nodes: self.nodes.len() - 2,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            ite_cache_entries: self.ite_cache.len(),
        }
    }

    /// Drops the operation memo caches while preserving the unique table,
    /// so every outstanding [`Ref`] stays valid and hash-consing (and
    /// therefore canonicity) is unaffected.
    ///
    /// The `ite` cache memoizes *history*: entries for intermediate
    /// functions from finished queries are never hit again but are kept
    /// alive forever, so a long session's cache grows without bound.
    /// Long-running callers (the disambiguators between rounds, the
    /// linter between objects) call this at phase boundaries to bound
    /// that growth. The hit/miss counters are cumulative and survive.
    pub fn clear_op_caches(&mut self) {
        self.obs.cache_clears.incr();
        self.obs.ite_cache_entries.sub(self.ite_cache.len() as i64);
        self.ite_cache = HashMap::new();
    }

    fn node(&self, r: Ref) -> Node {
        debug_assert!(!r.is_const());
        self.nodes[r.idx()]
    }

    /// The level used for ordering comparisons; terminals sort last.
    fn level(&self, r: Ref) -> u32 {
        if r.is_const() {
            u32::MAX
        } else {
            self.node(r).var
        }
    }

    /// Finds or creates the node `(var, lo, hi)`, applying the reduction rule.
    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.level(lo) && var < self.level(hi),
            "order violation"
        );
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        let r = Ref(u32::try_from(self.nodes.len()).expect("BDD arena exceeded u32 indices"));
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        self.obs.unique_nodes.add(1);
        r
    }

    /// The function that is true iff variable `var` is true.
    pub fn var(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Ref::FALSE, Ref::TRUE)
    }

    /// The function that is true iff variable `var` is false.
    pub fn nvar(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Ref::TRUE, Ref::FALSE)
    }

    /// A literal: the variable if `positive`, its negation otherwise.
    pub fn literal(&mut self, var: u32, positive: bool) -> Ref {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// Cofactors of `f` with respect to the top variable `var`.
    fn cofactors(&self, f: Ref, var: u32) -> (Ref, Ref) {
        if f.is_const() {
            return (f, f);
        }
        let n = self.node(f);
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: the function `(f & g) | (!f & h)`.
    ///
    /// This is the single kernel every binary operation reduces to.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        self.obs.ite_calls.incr();
        // Terminal cases.
        if f == Ref::TRUE {
            return g;
        }
        if f == Ref::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return f;
        }

        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            self.cache_hits += 1;
            self.obs.cache_hits.incr();
            return r;
        }
        self.cache_misses += 1;
        self.obs.cache_misses.incr();

        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        // A deeper recursion can have memoized this very triple already;
        // only count genuinely new entries toward the live gauge.
        if self.ite_cache.insert((f, g, h), r).is_none() {
            self.obs.ite_cache_entries.add(1);
        }
        r
    }

    /// Logical negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Ref::FALSE, Ref::TRUE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::FALSE)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Material implication `f -> g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::TRUE)
    }

    /// Biconditional `f <-> g`.
    pub fn iff(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Difference `f & !g`.
    pub fn diff(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Conjunction over an iterator (true for the empty sequence).
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        let mut acc = Ref::TRUE;
        for r in items {
            acc = self.and(acc, r);
            if acc == Ref::FALSE {
                break;
            }
        }
        acc
    }

    /// Disjunction over an iterator (false for the empty sequence).
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        let mut acc = Ref::FALSE;
        for r in items {
            acc = self.or(acc, r);
            if acc == Ref::TRUE {
                break;
            }
        }
        acc
    }

    /// Whether `f -> g` is a tautology, i.e. every model of `f` models `g`.
    pub fn implies_true(&mut self, f: Ref, g: Ref) -> bool {
        self.implies(f, g) == Ref::TRUE
    }

    /// Whether `f` and `g` share at least one model.
    pub fn intersects(&mut self, f: Ref, g: Ref) -> bool {
        self.and(f, g) != Ref::FALSE
    }

    /// Existential quantification of a set of variables (sorted or not).
    pub fn exists(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let mut sorted: Vec<u32> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut memo = HashMap::new();
        self.exists_rec(f, &sorted, &mut memo)
    }

    fn exists_rec(&mut self, f: Ref, vars: &[u32], memo: &mut HashMap<Ref, Ref>) -> Ref {
        if f.is_const() || vars.is_empty() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.node(f);
        // Drop quantified variables that are above the node's variable.
        let rest = match vars.iter().position(|&v| v >= n.var) {
            Some(i) => &vars[i..],
            None => return f,
        };
        let r = if rest.first() == Some(&n.var) {
            let lo = self.exists_rec(n.lo, &rest[1..], memo);
            let hi = self.exists_rec(n.hi, &rest[1..], memo);
            self.or(lo, hi)
        } else {
            let lo = self.exists_rec(n.lo, rest, memo);
            let hi = self.exists_rec(n.hi, rest, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification of a set of variables.
    pub fn forall(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// Restricts `f` by fixing `var` to `value`.
    pub fn restrict(&mut self, f: Ref, var: u32, value: bool) -> Ref {
        let mut memo = HashMap::new();
        self.restrict_rec(f, var, value, &mut memo)
    }

    fn restrict_rec(&mut self, f: Ref, var: u32, value: bool, memo: &mut HashMap<Ref, Ref>) -> Ref {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let r = if n.var == var {
            if value {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict_rec(n.lo, var, value, memo);
            let hi = self.restrict_rec(n.hi, var, value, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Number of satisfying assignments over all `num_vars` variables,
    /// as an `f64` (exact for counts below 2^53; analyses here stay far
    /// below that threshold per field).
    pub fn sat_count(&self, f: Ref) -> f64 {
        let mut memo: HashMap<Ref, f64> = HashMap::new();
        let frac = self.sat_fraction(f, &mut memo);
        frac * 2f64.powi(self.num_vars as i32)
    }

    /// Fraction of the full assignment space that satisfies `f` (in `[0,1]`).
    fn sat_fraction(&self, f: Ref, memo: &mut HashMap<Ref, f64>) -> f64 {
        match f {
            Ref::FALSE => 0.0,
            Ref::TRUE => 1.0,
            _ => {
                if let Some(&x) = memo.get(&f) {
                    return x;
                }
                let n = self.node(f);
                let x = 0.5 * self.sat_fraction(n.lo, memo) + 0.5 * self.sat_fraction(n.hi, memo);
                memo.insert(f, x);
                x
            }
        }
    }

    /// Returns one satisfying assignment as a [`Cube`], or `None` when `f`
    /// is unsatisfiable. Variables not mentioned by any node along the found
    /// path are left unconstrained in the cube.
    pub fn any_sat(&self, f: Ref) -> Option<Cube> {
        if f == Ref::FALSE {
            return None;
        }
        let mut cube = Cube::unconstrained(self.num_vars);
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            // Prefer the low branch deterministically, unless it is false.
            if n.lo != Ref::FALSE {
                cube.set(n.var, false);
                cur = n.lo;
            } else {
                cube.set(n.var, true);
                cur = n.hi;
            }
        }
        debug_assert_eq!(cur, Ref::TRUE);
        Some(cube)
    }

    /// Like [`Manager::any_sat`], but prefers the **high** branch, yielding a
    /// different witness when one exists. Useful to diversify examples.
    pub fn any_sat_high(&self, f: Ref) -> Option<Cube> {
        if f == Ref::FALSE {
            return None;
        }
        let mut cube = Cube::unconstrained(self.num_vars);
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            if n.hi != Ref::FALSE {
                cube.set(n.var, true);
                cur = n.hi;
            } else {
                // ROBDD reduction guarantees lo != hi, so lo cannot also
                // be FALSE here.
                cube.set(n.var, false);
                cur = n.lo;
            }
        }
        debug_assert_eq!(cur, Ref::TRUE);
        Some(cube)
    }

    /// Evaluates `f` under a total assignment.
    pub fn eval(&self, f: Ref, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        cur == Ref::TRUE
    }

    /// The set of variables `f` actually depends on, ascending.
    pub fn support(&self, f: Ref) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Number of internal nodes reachable from `f` (a size measure).
    pub fn size(&self, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            count += 1;
            let n = self.node(r);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Builds the function "the variables `vars` (MSB first) encode exactly
    /// the value `value`". Panics if `value` does not fit in `vars.len()` bits.
    pub fn eq_const(&mut self, vars: &[u32], value: u64) -> Ref {
        assert!(
            vars.len() >= 64 - value.leading_zeros() as usize,
            "value {value} does not fit in {} bits",
            vars.len()
        );
        let mut acc = Ref::TRUE;
        for (i, &v) in vars.iter().enumerate() {
            // Positions beyond the u64 width hold leading zero bits.
            let shift = vars.len() - 1 - i;
            let bit = shift < 64 && (value >> shift) & 1 == 1;
            let lit = self.literal(v, bit);
            acc = self.and(acc, lit);
        }
        acc
    }

    /// Builds "the unsigned value of `vars` (MSB first) is <= `bound`".
    pub fn le_const(&mut self, vars: &[u32], bound: u64) -> Ref {
        // A bound that does not fit would silently truncate into a
        // different constraint.
        assert!(
            vars.len() >= 64 - bound.leading_zeros() as usize,
            "bound {bound} does not fit in {} bits",
            vars.len()
        );
        // Walk from MSB: at each position we can either match the bound bit
        // exactly and continue, or go strictly below it and accept.
        let mut acc = Ref::TRUE; // all remaining bits equal the bound so far
                                 // Build from LSB side backwards for a linear-size result.
        for (i, &v) in vars.iter().enumerate().rev() {
            let shift = vars.len() - 1 - i;
            let bit = shift < 64 && (bound >> shift) & 1 == 1;
            let lit = self.var(v);
            acc = if bit {
                // var may be 0 (strictly less, rest free) or 1 (must stay <=).
                let nlit = self.not(lit);
                let stay = self.and(lit, acc);
                self.or(nlit, stay)
            } else {
                // var must be 0 and the rest must stay <=.
                let nlit = self.not(lit);
                self.and(nlit, acc)
            };
        }
        acc
    }

    /// Builds "the unsigned value of `vars` (MSB first) is >= `bound`".
    pub fn ge_const(&mut self, vars: &[u32], bound: u64) -> Ref {
        if bound == 0 {
            return Ref::TRUE;
        }
        let le = self.le_const(vars, bound - 1);
        self.not(le)
    }

    /// Builds "the unsigned value of `vars` lies in `[lo, hi]`" (inclusive).
    pub fn range_const(&mut self, vars: &[u32], lo: u64, hi: u64) -> Ref {
        if lo > hi {
            return Ref::FALSE;
        }
        let ge = self.ge_const(vars, lo);
        let le = self.le_const(vars, hi);
        self.and(ge, le)
    }
}

impl Drop for Manager {
    /// Lowers the live-resource gauges by this manager's contribution,
    /// so `bdd.unique_nodes` / `bdd.ite_cache_entries` track what is
    /// actually alive across short-lived per-analysis managers.
    fn drop(&mut self) {
        self.obs.unique_nodes.sub((self.nodes.len() - 2) as i64);
        self.obs.ite_cache_entries.sub(self.ite_cache.len() as i64);
    }
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("num_vars", &self.num_vars)
            .field("nodes", &(self.nodes.len() - 2))
            .finish()
    }
}

impl Manager {
    /// Exact number of satisfying assignments as a `u128`. Panics if the
    /// manager has more than 127 variables (use [`Manager::sat_count`]
    /// there); all Clarify spaces stay below that bound.
    pub fn sat_count_exact(&self, f: Ref) -> u128 {
        assert!(
            self.num_vars <= 127,
            "sat_count_exact supports at most 127 variables"
        );
        let mut memo: HashMap<Ref, u128> = HashMap::new();
        // Count over the variables below each node, then scale.
        self.count_from(f, 0, &mut memo)
    }

    /// Models of `f` assuming variables `level..num_vars` are still free,
    /// memoized per node (each node's count is normalized to its own
    /// variable level before scaling to the query level).
    fn count_from(&self, f: Ref, level: u32, memo: &mut HashMap<Ref, u128>) -> u128 {
        match f {
            Ref::FALSE => 0,
            Ref::TRUE => 1u128 << (self.num_vars - level),
            _ => {
                let n = self.node(f);
                let at_node = if let Some(&c) = memo.get(&f) {
                    c
                } else {
                    let lo = self.count_from(n.lo, n.var + 1, memo);
                    let hi = self.count_from(n.hi, n.var + 1, memo);
                    let c = lo + hi;
                    memo.insert(f, c);
                    c
                };
                // Scale by the variables skipped between `level` and the
                // node's variable.
                at_node << (n.var - level)
            }
        }
    }
}
