//! The BDD node arena and the operation kernel, with complement edges.
//!
//! A [`Ref`] packs an arena index and a *complement bit* into one `u32`
//! (`index << 1 | complement`). The complement bit denotes the negated
//! function, so negation is a single xor and `f`/`!f` share every node.
//! Canonicity demands the bit appear on at most one edge per node: here
//! the **then/hi edge is always regular** (never complemented); only the
//! else/lo edge and external handles may carry the bit (DESIGN.md §13).
//! One terminal node (arena index 0) represents `TRUE`; `FALSE` is its
//! complement.

use std::collections::{HashMap, HashSet};

use clarify_obs::{Counter, Gauge, Registry};

use crate::cache::{ComputedCache, PutOutcome};
use crate::cube::Cube;
use crate::unique::UniqueTable;

/// A handle to a BDD function owned by a [`Manager`].
///
/// `Ref`s are cheap to copy and compare; equal `Ref`s from the same manager
/// denote semantically equal Boolean functions (canonicity of ROBDDs with
/// complement edges). A `Ref` must only be used with the manager that
/// produced it, and — since the manager grew a garbage collector — a `Ref`
/// held across [`Manager::gc`] / [`Manager::reorder`] must be protected by
/// a [`crate::Root`] or reachable from one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The constant-true function: the terminal node, regular polarity.
    pub const TRUE: Ref = Ref(0);
    /// The constant-false function: the terminal node, complemented.
    pub const FALSE: Ref = Ref(1);

    /// Whether this handle is one of the two constant functions.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// The arena index this handle points at (complement bit stripped).
    pub(crate) fn index(self) -> u32 {
        self.0 >> 1
    }

    fn idx(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the complement bit is set.
    pub(crate) fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The negated function: flip the complement bit. O(1).
    pub(crate) fn complement(self) -> Ref {
        Ref(self.0 ^ 1)
    }

    /// This handle with the complement bit cleared.
    pub(crate) fn regular(self) -> Ref {
        Ref(self.0 & !1)
    }
}

impl std::fmt::Debug for Ref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Ref::TRUE => write!(f, "Ref(T)"),
            Ref::FALSE => write!(f, "Ref(F)"),
            r if r.is_complement() => write!(f, "Ref(!{})", r.index()),
            r => write!(f, "Ref({})", r.index()),
        }
    }
}

#[derive(Clone, Copy)]
pub(crate) struct Node {
    pub(crate) var: u32,
    pub(crate) lo: Ref,
    pub(crate) hi: Ref,
}

/// `var` sentinel for the terminal node at arena index 0.
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// `var` sentinel for a swept (dead) arena slot awaiting reuse. The
/// unique-table rebuild and every arena scan skip slots at or above this.
pub(crate) const DEAD_VAR: u32 = u32::MAX - 1;

/// Operation tags for the binary kernels (conjunction and exclusive-or —
/// every other connective is a complement-edge rewrite of those two).
/// Tags live in the cache key's third slot, above every legal tagged
/// `Ref`, so `(f, g, OP_AND)` can never collide with a genuine `ite`
/// triple.
const OP_AND: u32 = u32::MAX - 1;
const OP_XOR: u32 = u32::MAX - 2;

/// Hard ceiling on arena indices: a tagged `Ref` is `index << 1 | c`, and
/// everything above the ceiling is reserved for the operation tags and
/// the tables' vacancy sentinels.
const MAX_INDEX: u32 = (u32::MAX - 16) >> 1;

/// Default capacity hint (in nodes) for managers built without one.
const DEFAULT_NODE_HINT: usize = 1 << 14;

/// Auto-GC never fires below this many live nodes.
pub(crate) const GC_FLOOR: usize = 1 << 12;

/// Auto-reorder never fires below this many live nodes.
pub(crate) const REORDER_FLOOR: usize = 1 << 12;

/// Usage counters for diagnostics and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of live (hash-consed) internal nodes, terminal excluded and
    /// garbage-collected slots excluded.
    pub nodes: usize,
    /// Arena slots allocated (terminal excluded), *including* dead slots
    /// awaiting reuse: the high-water footprint, not the live set.
    pub capacity_nodes: usize,
    /// Live nodes whose else/lo edge carries the complement bit — the
    /// "complement share" that measures how much sharing the tagged
    /// representation buys.
    pub complement_edges: usize,
    /// Hits in the computed cache since creation.
    pub cache_hits: u64,
    /// Misses in the computed cache since creation.
    pub cache_misses: u64,
    /// Currently occupied slots of the bounded computed cache (drops to
    /// zero after [`Manager::clear_op_caches`]; `exists`/`restrict` memos
    /// are per-call and never persist, so they are not counted here).
    pub ite_cache_entries: usize,
    /// Cumulative unique-table slot inspections. A value close to the
    /// node count means the hash is spreading keys well.
    pub unique_probes: u64,
    /// Cumulative computed-cache collision evictions. The cache is
    /// direct-mapped and lossy; evictions cost recomputation, not
    /// correctness.
    pub computed_evictions: u64,
    /// Mark-and-sweep collections run (explicit or automatic).
    pub gc_runs: u64,
    /// Nodes reclaimed across all collections.
    pub gc_freed_nodes: u64,
    /// Sifting passes run (explicit or automatic).
    pub reorder_runs: u64,
    /// Adjacent-level swaps performed across all sifting passes.
    pub reorder_swaps: u64,
    /// Nanoseconds spent inside [`Manager::reorder`], cumulative.
    pub reorder_ns: u64,
}

/// Metric handles captured once at manager construction, so the hot
/// kernels never perform a registry lookup. The handles are write-only
/// and aggregate across every manager wired to the same registry
/// (worker-local managers in a `clarify-par` pool all feed one total);
/// with the default disabled registry each update is a single branch.
pub(crate) struct ObsHandles {
    pub(crate) ite_calls: Counter,
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) cache_clears: Counter,
    /// Unique-table slot inspections across all managers on this registry.
    pub(crate) unique_probes: Counter,
    /// Computed-cache collision evictions across all managers.
    pub(crate) computed_evictions: Counter,
    /// Mark-and-sweep collections across all managers.
    pub(crate) gc_runs: Counter,
    /// Nodes reclaimed by collections across all managers.
    pub(crate) gc_freed: Counter,
    /// Sifting passes across all managers.
    pub(crate) reorder_runs: Counter,
    /// Adjacent-level swaps across all managers.
    pub(crate) reorder_swaps: Counter,
    /// Nanoseconds spent sifting across all managers.
    pub(crate) reorder_ns: Counter,
    /// Live hash-consed nodes across all managers on this registry.
    pub(crate) unique_nodes: Gauge,
    /// Live computed-cache entries across all managers on this registry.
    pub(crate) ite_cache_entries: Gauge,
}

impl ObsHandles {
    fn capture(registry: &Registry) -> ObsHandles {
        ObsHandles {
            ite_calls: registry.counter("bdd.ite_calls"),
            cache_hits: registry.counter("bdd.ite_cache_hits"),
            cache_misses: registry.counter("bdd.ite_cache_misses"),
            cache_clears: registry.counter("bdd.op_cache_clears"),
            unique_probes: registry.counter("bdd.unique_probes"),
            computed_evictions: registry.counter("bdd.computed_evictions"),
            gc_runs: registry.counter("bdd.gc.runs"),
            gc_freed: registry.counter("bdd.gc.freed_nodes"),
            reorder_runs: registry.counter("bdd.reorder.runs"),
            reorder_swaps: registry.counter("bdd.reorder.swaps"),
            reorder_ns: registry.counter("bdd.reorder.ns"),
            unique_nodes: registry.gauge("bdd.unique_nodes"),
            ite_cache_entries: registry.gauge("bdd.ite_cache_entries"),
        }
    }
}

/// An arena of hash-consed BDD nodes plus the operation caches.
///
/// All functions created by one manager share structure. Since the
/// complement-edge rewrite the manager also owns a *lifecycle*: external
/// callers pin functions with [`Manager::protect`] root handles, a
/// mark-and-sweep collector ([`Manager::gc`]) reclaims everything
/// unreachable from the roots, and a sifting pass ([`Manager::reorder`])
/// searches for a better variable order. Neither pass moves live nodes,
/// so protected `Ref`s stay valid across both.
///
/// The kernel data structures are hand-rolled for the hot path (see
/// DESIGN.md §8/§13): the unique table is an open-addressing hash table
/// of bare `u32` arena indices, and the operation memo is a fixed-size
/// direct-mapped *lossy* computed cache in the CUDD tradition. Losing a
/// computed-cache entry never loses correctness — results are re-derived
/// and hash-consing lands them on the same [`Ref`].
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: UniqueTable,
    pub(crate) computed: ComputedCache,
    num_vars: u32,
    /// Variable id -> level (position in the current order; 0 is tested
    /// first). Starts as the identity and changes only under sifting.
    pub(crate) var2level: Vec<u32>,
    /// Level -> variable id (inverse of `var2level`).
    pub(crate) level2var: Vec<u32>,
    /// Fast-path flag: true while `var2level` is the identity, letting
    /// witness extraction keep the O(depth) walk.
    pub(crate) order_identity: bool,
    /// Dead arena slots available for reuse (filled by the sweep).
    pub(crate) free: Vec<u32>,
    /// Live internal nodes (terminal excluded, dead slots excluded).
    pub(crate) live_nodes: usize,
    /// The root slab: every `Some` entry is a GC root.
    pub(crate) roots: Vec<Option<Ref>>,
    /// Vacant slots of the root slab.
    pub(crate) root_free: Vec<u32>,
    pub(crate) auto_gc: bool,
    pub(crate) auto_reorder: bool,
    /// Auto-GC fires when `live_nodes` reaches this (doubles after each).
    pub(crate) gc_trigger: usize,
    /// Auto-reorder fires when `live_nodes` reaches this.
    pub(crate) reorder_trigger: usize,
    cache_hits: u64,
    cache_misses: u64,
    pub(crate) gc_runs: u64,
    pub(crate) gc_freed: u64,
    pub(crate) reorder_runs: u64,
    pub(crate) reorder_swaps: u64,
    pub(crate) reorder_ns: u64,
    pub(crate) obs: ObsHandles,
}

impl Manager {
    /// Creates a manager for functions over `num_vars` Boolean variables
    /// numbered `0..num_vars` (variable 0 is tested first until a reorder
    /// changes the level maps).
    ///
    /// Metric handles are captured from the [`clarify_obs::global`]
    /// registry *current at this call*; use [`Manager::with_registry`]
    /// to inject one explicitly (isolated tests, per-request registries).
    pub fn new(num_vars: u32) -> Self {
        Self::with_capacity(num_vars, DEFAULT_NODE_HINT)
    }

    /// Like [`Manager::new`], but pre-sizes the unique table and computed
    /// cache for roughly `node_hint` live nodes, so workloads with a known
    /// footprint (the analysis spaces derive one from their atomic
    /// predicate counts) skip the early rehash ladder. The hint is only a
    /// hint: the arena and unique table still grow on demand, and the
    /// computed cache is clamped to a bounded size either way.
    pub fn with_capacity(num_vars: u32, node_hint: usize) -> Self {
        Self::with_capacity_and_registry(num_vars, node_hint, &clarify_obs::global())
    }

    /// Like [`Manager::new`], but records metrics into `registry`
    /// instead of the process-global one.
    pub fn with_registry(num_vars: u32, registry: &Registry) -> Self {
        Self::with_capacity_and_registry(num_vars, DEFAULT_NODE_HINT, registry)
    }

    /// The fully explicit constructor: capacity hint plus registry.
    pub fn with_capacity_and_registry(
        num_vars: u32,
        node_hint: usize,
        registry: &Registry,
    ) -> Self {
        // Slot 0 is the terminal; its children are never followed because
        // `is_const` handles take an early return everywhere.
        let terminal = Node {
            var: TERMINAL_VAR,
            lo: Ref::TRUE,
            hi: Ref::TRUE,
        };
        let mut nodes = Vec::with_capacity(node_hint.saturating_add(1).min(1 << 24));
        nodes.push(terminal);
        Manager {
            nodes,
            unique: UniqueTable::with_node_capacity(node_hint),
            computed: ComputedCache::with_node_capacity(node_hint),
            num_vars,
            var2level: (0..num_vars).collect(),
            level2var: (0..num_vars).collect(),
            order_identity: true,
            free: Vec::new(),
            live_nodes: 0,
            roots: Vec::new(),
            root_free: Vec::new(),
            auto_gc: false,
            auto_reorder: false,
            gc_trigger: GC_FLOOR,
            reorder_trigger: REORDER_FLOOR,
            cache_hits: 0,
            cache_misses: 0,
            gc_runs: 0,
            gc_freed: 0,
            reorder_runs: 0,
            reorder_swaps: 0,
            reorder_ns: 0,
            obs: ObsHandles::capture(registry),
        }
    }

    /// Number of variables this manager was created with.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Live internal nodes right now (terminal and swept slots excluded).
    pub fn live_node_count(&self) -> usize {
        self.live_nodes
    }

    /// The current level of variable `var` (0 is tested first).
    pub fn level_of_var(&self, var: u32) -> u32 {
        self.var2level[var as usize]
    }

    /// Current counters.
    pub fn stats(&self) -> Stats {
        let complement_edges = self
            .nodes
            .iter()
            .skip(1)
            .filter(|n| n.var < DEAD_VAR && n.lo.is_complement())
            .count();
        Stats {
            nodes: self.live_nodes,
            capacity_nodes: self.nodes.len() - 1,
            complement_edges,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            ite_cache_entries: self.computed.live(),
            unique_probes: self.unique.probes(),
            computed_evictions: self.computed.evictions(),
            gc_runs: self.gc_runs,
            gc_freed_nodes: self.gc_freed,
            reorder_runs: self.reorder_runs,
            reorder_swaps: self.reorder_swaps,
            reorder_ns: self.reorder_ns,
        }
    }

    /// Empties the computed cache while preserving the unique table, so
    /// every outstanding [`Ref`] stays valid and hash-consing (and
    /// therefore canonicity) is unaffected — *unless* automatic
    /// collection or reordering has been armed via
    /// [`Manager::set_auto_gc`] / [`Manager::set_auto_reorder`], in which
    /// case this call is also the trigger point: with enough live nodes a
    /// mark-and-sweep (and possibly a sifting pass) runs here, and only
    /// refs reachable from [`Manager::protect`] roots survive. Bare
    /// managers (none armed) keep the historical contract exactly.
    ///
    /// The cache memoizes *history*: entries for intermediate functions
    /// from finished queries are rarely hit again. Long-running callers
    /// (the disambiguators between rounds, the linter between objects)
    /// call this at phase boundaries — which is also the only moment no
    /// operation is mid-recursion, making it the safe point for the
    /// collector.
    pub fn clear_op_caches(&mut self) {
        self.obs.cache_clears.incr();
        let live = self.computed.reset();
        self.obs.ite_cache_entries.sub(live as i64);
        self.maybe_collect();
    }

    pub(crate) fn node(&self, r: Ref) -> Node {
        debug_assert!(!r.is_const());
        debug_assert!(self.nodes[r.idx()].var < DEAD_VAR, "ref to a dead node");
        self.nodes[r.idx()]
    }

    /// The level used for ordering comparisons; terminals sort last.
    pub(crate) fn level(&self, r: Ref) -> u32 {
        if r.is_const() {
            u32::MAX
        } else {
            self.var2level[self.node(r).var as usize]
        }
    }

    /// The cofactors of `f` with the complement bit pushed onto them.
    pub(crate) fn children(&self, f: Ref) -> (Ref, Ref) {
        let n = self.node(f);
        if f.is_complement() {
            (n.lo.complement(), n.hi.complement())
        } else {
            (n.lo, n.hi)
        }
    }

    /// Cofactors of `f` with respect to the order level `level`.
    fn cofactors_at(&self, f: Ref, level: u32) -> (Ref, Ref) {
        if !f.is_const() && self.level(f) == level {
            self.children(f)
        } else {
            (f, f)
        }
    }

    /// Finds or creates the node `(var, lo, hi)`, applying the reduction
    /// rule and the complement-edge canonicalization: if the then-edge
    /// would be complemented, both edges are flipped and the complement
    /// moves to the returned handle, so stored nodes always have a
    /// regular then-edge.
    pub(crate) fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        if hi.is_complement() {
            let r = self.mk_raw(var, lo.complement(), hi.complement());
            return r.complement();
        }
        self.mk_raw(var, lo, hi)
    }

    fn mk_raw(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        debug_assert!(!hi.is_complement());
        debug_assert!(
            self.var2level[var as usize] < self.level(lo)
                && self.var2level[var as usize] < self.level(hi),
            "order violation"
        );
        // Grow (if needed) before probing so the insertion slot stays valid.
        self.unique.reserve_one(&self.nodes);
        let probes_before = self.unique.probes();
        let r = match self.unique.find_or_slot(&self.nodes, var, lo.0, hi.0) {
            Ok(idx) => Ref(idx << 1),
            Err(slot) => {
                let idx = self.alloc_node(Node { var, lo, hi });
                self.unique.insert(slot, idx);
                self.obs.unique_nodes.add(1);
                Ref(idx << 1)
            }
        };
        self.obs
            .unique_probes
            .add(self.unique.probes() - probes_before);
        r
    }

    /// Places a node into the arena, reusing a swept slot when one is
    /// free. The caller wires it into whichever table needs it.
    pub(crate) fn alloc_node(&mut self, n: Node) -> u32 {
        self.live_nodes += 1;
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = n;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len())
                .ok()
                .filter(|&i| i < MAX_INDEX)
                .expect("BDD arena exceeded the index space");
            self.nodes.push(n);
            idx
        }
    }

    /// The function that is true iff variable `var` is true.
    pub fn var(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Ref::FALSE, Ref::TRUE)
    }

    /// The function that is true iff variable `var` is false.
    pub fn nvar(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Ref::TRUE, Ref::FALSE)
    }

    /// A literal: the variable if `positive`, its negation otherwise.
    pub fn literal(&mut self, var: u32, positive: bool) -> Ref {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// If-then-else: the function `(f & g) | (!f & h)`.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.ite_norm(f, g, h)
    }

    /// Standard-triple normalization (Brace–Rudell–Bryant, adapted for
    /// complement edges), then the cached apply. Internal recursion
    /// re-enters here, so the rewrites fire at every level.
    ///
    /// Every two-operand shape is delegated to the [`Manager::and_rec`] /
    /// [`Manager::xor_rec`] kernels — with O(1) negation, conjunction and
    /// exclusive-or are a complete basis, and funneling `f|h`, `!f&h`,
    /// `f->g`, and `f<->g` through two cache namespaces maximizes sharing.
    /// The residual three-operand triples are canonicalized by the two
    /// complement rules: `ite(!f,g,h) = ite(f,h,g)` makes the first
    /// argument regular, and `ite(f,!g,h) = !ite(f,g,!h)` makes the
    /// then-argument regular (the complement moves to the result).
    fn ite_norm(&mut self, mut f: Ref, mut g: Ref, mut h: Ref) -> Ref {
        if f == Ref::TRUE {
            return g;
        }
        if f == Ref::FALSE {
            return h;
        }
        // f is non-constant from here on.
        if g == f {
            g = Ref::TRUE;
        } else if g == f.complement() {
            g = Ref::FALSE;
        }
        if h == f {
            h = Ref::FALSE;
        } else if h == f.complement() {
            h = Ref::TRUE;
        }
        if g == h {
            return g;
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return f;
        }
        if g == Ref::FALSE && h == Ref::TRUE {
            return f.complement();
        }
        if g == Ref::TRUE {
            // f | h = !(!f & !h)
            let r = self.and_rec(f.complement(), h.complement());
            return r.complement();
        }
        if g == Ref::FALSE {
            return self.and_rec(f.complement(), h);
        }
        if h == Ref::FALSE {
            return self.and_rec(f, g);
        }
        if h == Ref::TRUE {
            // f -> g = !(f & !g)
            let r = self.and_rec(f, g.complement());
            return r.complement();
        }
        if h == g.complement() {
            // ite(f, g, !g) = f <-> g = f ^ !g
            return self.xor_rec(f, g.complement());
        }
        if f.is_complement() {
            f = f.regular();
            std::mem::swap(&mut g, &mut h);
        }
        if g.is_complement() {
            let r = self.ite_apply(f, g.complement(), h.complement());
            return r.complement();
        }
        self.ite_apply(f, g, h)
    }

    /// The cached Shannon expansion for an already-normalized triple
    /// (`f` and `g` regular and non-constant, `h` non-constant).
    fn ite_apply(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        debug_assert!(!f.is_complement() && !g.is_complement());
        if let Some(r) = self.computed.get(f.0, g.0, h.0) {
            self.cache_hits += 1;
            self.obs.cache_hits.incr();
            return Ref(r);
        }
        self.cache_misses += 1;
        self.obs.cache_misses.incr();

        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.ite_norm(f0, g0, h0);
        let hi = self.ite_norm(f1, g1, h1);
        let var = self.level2var[top as usize];
        let r = self.mk(var, lo, hi);
        self.cache_put(f.0, g.0, h.0, r.0);
        r
    }

    /// Records an operation result, keeping the occupancy gauge and the
    /// eviction counter in step with what the lossy cache actually did.
    fn cache_put(&mut self, f: u32, g: u32, h: u32, r: u32) {
        match self.computed.put(f, g, h, r) {
            PutOutcome::Fresh => self.obs.ite_cache_entries.add(1),
            PutOutcome::Evicted => self.obs.computed_evictions.incr(),
            PutOutcome::Refreshed => {}
        }
    }

    /// Logical negation: with complement edges this is one bit flip — no
    /// recursion, no allocation, no cache traffic.
    pub fn not(&self, f: Ref) -> Ref {
        f.complement()
    }

    /// Logical conjunction — one of the two real kernels. Operands are
    /// ordered by tagged value so `and(a, b)` and `and(b, a)` share one
    /// `(a, b, OP_AND)` computed-cache entry.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.and_rec(f, g)
    }

    fn and_rec(&mut self, f: Ref, g: Ref) -> Ref {
        if f == Ref::TRUE || f == g {
            return g;
        }
        if g == Ref::TRUE {
            return f;
        }
        if f == Ref::FALSE || g == Ref::FALSE || f == g.complement() {
            return Ref::FALSE;
        }
        let (f, g) = if g.0 < f.0 { (g, f) } else { (f, g) };
        if let Some(r) = self.computed.get(f.0, g.0, OP_AND) {
            self.cache_hits += 1;
            self.obs.cache_hits.incr();
            return Ref(r);
        }
        self.cache_misses += 1;
        self.obs.cache_misses.incr();
        let top = self.level(f).min(self.level(g));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let lo = self.and_rec(f0, g0);
        let hi = self.and_rec(f1, g1);
        let var = self.level2var[top as usize];
        let r = self.mk(var, lo, hi);
        self.cache_put(f.0, g.0, OP_AND, r.0);
        r
    }

    /// Logical disjunction: `!( !f & !g )` — a complement-edge rewrite
    /// that reuses the conjunction kernel and its cache namespace.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        let r = self.and_rec(f.complement(), g.complement());
        r.complement()
    }

    /// Exclusive or — the second real kernel. Complement bits factor out
    /// (`!a ^ b = !(a ^ b)`), so the cache key is always over two regular
    /// refs and all four polarity combinations share one entry.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.xor_rec(f, g)
    }

    fn xor_rec(&mut self, f: Ref, g: Ref) -> Ref {
        if f == g {
            return Ref::FALSE;
        }
        if f == g.complement() {
            return Ref::TRUE;
        }
        if f == Ref::FALSE {
            return g;
        }
        if g == Ref::FALSE {
            return f;
        }
        if f == Ref::TRUE {
            return g.complement();
        }
        if g == Ref::TRUE {
            return f.complement();
        }
        let parity = f.is_complement() ^ g.is_complement();
        let (f, g) = (f.regular(), g.regular());
        let (f, g) = if g.0 < f.0 { (g, f) } else { (f, g) };
        let r = if let Some(r) = self.computed.get(f.0, g.0, OP_XOR) {
            self.cache_hits += 1;
            self.obs.cache_hits.incr();
            Ref(r)
        } else {
            self.cache_misses += 1;
            self.obs.cache_misses.incr();
            let top = self.level(f).min(self.level(g));
            let (f0, f1) = self.cofactors_at(f, top);
            let (g0, g1) = self.cofactors_at(g, top);
            let lo = self.xor_rec(f0, g0);
            let hi = self.xor_rec(f1, g1);
            let var = self.level2var[top as usize];
            let r = self.mk(var, lo, hi);
            self.cache_put(f.0, g.0, OP_XOR, r.0);
            r
        };
        if parity {
            r.complement()
        } else {
            r
        }
    }

    /// Material implication `f -> g = !(f & !g)`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        let r = self.and_rec(f, g.complement());
        r.complement()
    }

    /// Biconditional `f <-> g = !(f ^ g)`.
    pub fn iff(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        let r = self.xor_rec(f, g);
        r.complement()
    }

    /// Difference `f & !g`.
    pub fn diff(&mut self, f: Ref, g: Ref) -> Ref {
        self.obs.ite_calls.incr();
        self.and_rec(f, g.complement())
    }

    /// Conjunction over an iterator (true for the empty sequence).
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        let mut acc = Ref::TRUE;
        for r in items {
            acc = self.and(acc, r);
            if acc == Ref::FALSE {
                break;
            }
        }
        acc
    }

    /// Disjunction over an iterator (false for the empty sequence).
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        let mut acc = Ref::FALSE;
        for r in items {
            acc = self.or(acc, r);
            if acc == Ref::TRUE {
                break;
            }
        }
        acc
    }

    /// Whether `f -> g` is a tautology, i.e. every model of `f` models `g`.
    pub fn implies_true(&mut self, f: Ref, g: Ref) -> bool {
        self.implies(f, g) == Ref::TRUE
    }

    /// Whether `f` and `g` share at least one model.
    pub fn intersects(&mut self, f: Ref, g: Ref) -> bool {
        self.and(f, g) != Ref::FALSE
    }

    /// Existential quantification of a set of variables (sorted or not).
    pub fn exists(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let mut levels: Vec<u32> = vars.iter().map(|&v| self.var2level[v as usize]).collect();
        levels.sort_unstable();
        levels.dedup();
        let mut memo = HashMap::new();
        self.exists_rec(f, &levels, &mut memo)
    }

    fn exists_rec(&mut self, f: Ref, levels: &[u32], memo: &mut HashMap<Ref, Ref>) -> Ref {
        if f.is_const() || levels.is_empty() {
            return f;
        }
        let fl = self.level(f);
        // Drop quantified levels that are above the node's level. `rest`
        // is a function of `f` alone (for one fixed query), so the memo
        // can key on the tagged ref.
        let rest = match levels.iter().position(|&l| l >= fl) {
            Some(i) => &levels[i..],
            None => return f,
        };
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (lo, hi) = self.children(f);
        let var = self.node(f).var;
        let r = if rest.first() == Some(&fl) {
            let lo = self.exists_rec(lo, &rest[1..], memo);
            let hi = self.exists_rec(hi, &rest[1..], memo);
            // lo | hi via the conjunction kernel.
            let r = self.and_rec(lo.complement(), hi.complement());
            r.complement()
        } else {
            let lo = self.exists_rec(lo, rest, memo);
            let hi = self.exists_rec(hi, rest, memo);
            self.mk(var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification of a set of variables.
    pub fn forall(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let e = self.exists(f.complement(), vars);
        e.complement()
    }

    /// Restricts `f` by fixing `var` to `value`.
    pub fn restrict(&mut self, f: Ref, var: u32, value: bool) -> Ref {
        let mut memo = HashMap::new();
        self.restrict_rec(f, var, value, &mut memo)
    }

    fn restrict_rec(&mut self, f: Ref, var: u32, value: bool, memo: &mut HashMap<Ref, Ref>) -> Ref {
        if f.is_const() {
            return f;
        }
        let target = self.var2level[var as usize];
        if self.level(f) > target {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.node(f);
        let (lo, hi) = self.children(f);
        let r = if n.var == var {
            if value {
                hi
            } else {
                lo
            }
        } else {
            let lo = self.restrict_rec(lo, var, value, memo);
            let hi = self.restrict_rec(hi, var, value, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Number of satisfying assignments over all `num_vars` variables,
    /// as an `f64` (exact for counts below 2^53; analyses here stay far
    /// below that threshold per field).
    pub fn sat_count(&self, f: Ref) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        let frac = self.sat_fraction(f, &mut memo);
        frac * 2f64.powi(self.num_vars as i32)
    }

    /// Fraction of the full assignment space that satisfies `f` (in
    /// `[0,1]`). Memoized on the regular ref; a complemented handle is
    /// `1 - fraction(regular)`.
    fn sat_fraction(&self, f: Ref, memo: &mut HashMap<u32, f64>) -> f64 {
        if f == Ref::TRUE {
            return 1.0;
        }
        if f == Ref::FALSE {
            return 0.0;
        }
        let reg = f.regular();
        let x = if let Some(&x) = memo.get(&reg.0) {
            x
        } else {
            let n = self.node(reg);
            let x = 0.5 * self.sat_fraction(n.lo, memo) + 0.5 * self.sat_fraction(n.hi, memo);
            memo.insert(reg.0, x);
            x
        };
        if f.is_complement() {
            1.0 - x
        } else {
            x
        }
    }

    /// Returns one satisfying assignment as a [`Cube`], or `None` when
    /// `f` is unsatisfiable.
    ///
    /// The witness is *order-invariant*: it is the assignment that is
    /// lexicographically minimal in variable-id significance (variable 0
    /// most significant, `false < true`), restricted to the variables the
    /// successively restricted function still depends on — so reordering
    /// the manager never changes a decoded witness. With the identity
    /// order this is exactly the classic low-preferring path walk, which
    /// stays the O(depth) fast path.
    pub fn any_sat(&self, f: Ref) -> Option<Cube> {
        self.lex_sat(f, false)
    }

    /// Like [`Manager::any_sat`], but prefers the **high** branch
    /// (lexicographically maximal over the constrained variables),
    /// yielding a different witness when one exists. Equally
    /// order-invariant.
    pub fn any_sat_high(&self, f: Ref) -> Option<Cube> {
        self.lex_sat(f, true)
    }

    fn lex_sat(&self, f: Ref, prefer_high: bool) -> Option<Cube> {
        if f == Ref::FALSE {
            return None;
        }
        let mut cube = Cube::unconstrained(self.num_vars);
        if self.order_identity {
            // Fast path: with levels == variable ids the greedy walk
            // visits variables in id order, so "take the preferred branch
            // unless it is FALSE" *is* the lex-extreme assignment and the
            // visited nodes are exactly the constrained variables.
            let mut cur = f;
            while !cur.is_const() {
                let n = self.node(cur);
                let (lo, hi) = self.children(cur);
                let pick_hi = if prefer_high {
                    hi != Ref::FALSE
                } else {
                    lo == Ref::FALSE
                };
                cube.set(n.var, pick_hi);
                cur = if pick_hi { hi } else { lo };
            }
            debug_assert_eq!(cur, Ref::TRUE);
            return Some(cube);
        }
        // General path (after a reorder): decide variables in id order by
        // probing satisfiability under the partial assignment built so
        // far. Each probe is one DFS over the (restricted) graph, so a
        // witness costs O(num_vars * size) — cold-path only.
        let mut fixed: Vec<Option<bool>> = vec![None; self.num_vars as usize];
        for v in 0..self.num_vars {
            if !self.dep_under(f, v, &fixed) {
                continue;
            }
            fixed[v as usize] = Some(prefer_high);
            if !self.sat_under(f, &fixed) {
                fixed[v as usize] = Some(!prefer_high);
            }
            cube.set(v, fixed[v as usize].unwrap());
        }
        Some(cube)
    }

    /// Whether `f` restricted by `fixed` has a satisfying assignment.
    fn sat_under(&self, f: Ref, fixed: &[Option<bool>]) -> bool {
        let mut memo: HashMap<u32, bool> = HashMap::new();
        self.sat_under_rec(f, fixed, &mut memo)
    }

    fn sat_under_rec(&self, f: Ref, fixed: &[Option<bool>], memo: &mut HashMap<u32, bool>) -> bool {
        if f == Ref::TRUE {
            return true;
        }
        if f == Ref::FALSE {
            return false;
        }
        if let Some(&b) = memo.get(&f.0) {
            return b;
        }
        let n = self.node(f);
        let (lo, hi) = self.children(f);
        let b = match fixed[n.var as usize] {
            Some(true) => self.sat_under_rec(hi, fixed, memo),
            Some(false) => self.sat_under_rec(lo, fixed, memo),
            None => self.sat_under_rec(lo, fixed, memo) || self.sat_under_rec(hi, fixed, memo),
        };
        memo.insert(f.0, b);
        b
    }

    /// Whether `f` restricted by `fixed` still *semantically* depends on
    /// `v`: is there an assignment of the free variables (consistent with
    /// `fixed`) under which flipping `v` flips the value?
    ///
    /// Mere reachability of a `v`-labelled node is not enough: once a
    /// reorder places a fixed variable below `v`'s level, the two
    /// cofactors of a reachable `v` node can coincide after restriction.
    /// So this walks *pairs*: the left side carries `v -> 0`, the right
    /// side `v -> 1`, every other variable is branched in lockstep, and
    /// the functions differ iff some leaf pair disagrees.
    fn dep_under(&self, f: Ref, v: u32, fixed: &[Option<bool>]) -> bool {
        let mut memo: HashMap<(u32, u32), bool> = HashMap::new();
        self.dep_under_rec(f, f, v, fixed, &mut memo)
    }

    fn dep_under_rec(
        &self,
        a: Ref,
        b: Ref,
        v: u32,
        fixed: &[Option<bool>],
        memo: &mut HashMap<(u32, u32), bool>,
    ) -> bool {
        if a.is_const() && b.is_const() {
            return a != b;
        }
        if let Some(&d) = memo.get(&(a.0, b.0)) {
            return d;
        }
        // Expand the topmost level present on either side; the other side
        // is independent of that variable and keeps both cofactors equal.
        let la = self.level(a);
        let lb = self.level(b);
        let l = la.min(lb);
        let w = self.level2var[l as usize];
        let (a0, a1) = if la == l { self.children(a) } else { (a, a) };
        let (b0, b1) = if lb == l { self.children(b) } else { (b, b) };
        let d = if w == v {
            self.dep_under_rec(a0, b1, v, fixed, memo)
        } else {
            match fixed[w as usize] {
                Some(true) => self.dep_under_rec(a1, b1, v, fixed, memo),
                Some(false) => self.dep_under_rec(a0, b0, v, fixed, memo),
                None => {
                    self.dep_under_rec(a0, b0, v, fixed, memo)
                        || self.dep_under_rec(a1, b1, v, fixed, memo)
                }
            }
        };
        memo.insert((a.0, b.0), d);
        d
    }

    /// Evaluates `f` under a total assignment.
    pub fn eval(&self, f: Ref, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            let (lo, hi) = self.children(cur);
            cur = if assignment(n.var) { hi } else { lo };
        }
        cur == Ref::TRUE
    }

    /// The set of variables `f` actually depends on, ascending by id.
    pub fn support(&self, f: Ref) -> Vec<u32> {
        let mut seen = HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.regular()];
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r.index()) {
                continue;
            }
            let n = self.node(r);
            vars.insert(n.var);
            stack.push(n.lo.regular());
            stack.push(n.hi.regular());
        }
        vars.into_iter().collect()
    }

    /// Number of internal nodes reachable from `f` (a size measure;
    /// `f` and `!f` share all of them).
    pub fn size(&self, f: Ref) -> usize {
        let mut seen = HashSet::new();
        let mut stack = vec![f.regular()];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r.index()) {
                continue;
            }
            count += 1;
            let n = self.node(r);
            stack.push(n.lo.regular());
            stack.push(n.hi.regular());
        }
        count
    }

    /// Builds the function "the variables `vars` (MSB first) encode exactly
    /// the value `value`". Panics if `value` does not fit in `vars.len()` bits.
    pub fn eq_const(&mut self, vars: &[u32], value: u64) -> Ref {
        assert!(
            vars.len() >= 64 - value.leading_zeros() as usize,
            "value {value} does not fit in {} bits",
            vars.len()
        );
        let mut acc = Ref::TRUE;
        for (i, &v) in vars.iter().enumerate() {
            // Positions beyond the u64 width hold leading zero bits.
            let shift = vars.len() - 1 - i;
            let bit = shift < 64 && (value >> shift) & 1 == 1;
            let lit = self.literal(v, bit);
            acc = self.and(acc, lit);
        }
        acc
    }

    /// Builds "the unsigned value of `vars` (MSB first) is <= `bound`".
    pub fn le_const(&mut self, vars: &[u32], bound: u64) -> Ref {
        // A bound that does not fit would silently truncate into a
        // different constraint.
        assert!(
            vars.len() >= 64 - bound.leading_zeros() as usize,
            "bound {bound} does not fit in {} bits",
            vars.len()
        );
        // Walk from MSB: at each position we can either match the bound bit
        // exactly and continue, or go strictly below it and accept.
        let mut acc = Ref::TRUE; // all remaining bits equal the bound so far
                                 // Build from LSB side backwards for a linear-size result.
        for (i, &v) in vars.iter().enumerate().rev() {
            let shift = vars.len() - 1 - i;
            let bit = shift < 64 && (bound >> shift) & 1 == 1;
            let lit = self.var(v);
            acc = if bit {
                // var may be 0 (strictly less, rest free) or 1 (must stay <=).
                let stay = self.and(lit, acc);
                self.or(lit.complement(), stay)
            } else {
                // var must be 0 and the rest must stay <=.
                self.and(lit.complement(), acc)
            };
        }
        acc
    }

    /// Builds "the unsigned value of `vars` (MSB first) is >= `bound`".
    pub fn ge_const(&mut self, vars: &[u32], bound: u64) -> Ref {
        if bound == 0 {
            return Ref::TRUE;
        }
        let le = self.le_const(vars, bound - 1);
        le.complement()
    }

    /// Builds "the unsigned value of `vars` lies in `[lo, hi]`" (inclusive).
    pub fn range_const(&mut self, vars: &[u32], lo: u64, hi: u64) -> Ref {
        if lo > hi {
            return Ref::FALSE;
        }
        let ge = self.ge_const(vars, lo);
        let le = self.le_const(vars, hi);
        self.and(ge, le)
    }
}

impl Drop for Manager {
    /// Lowers the live-resource gauges by this manager's contribution,
    /// so `bdd.unique_nodes` / `bdd.ite_cache_entries` track what is
    /// actually alive across short-lived per-analysis managers.
    fn drop(&mut self) {
        self.obs.unique_nodes.sub(self.live_nodes as i64);
        self.obs.ite_cache_entries.sub(self.computed.live() as i64);
    }
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("num_vars", &self.num_vars)
            .field("live_nodes", &self.live_nodes)
            .field("capacity_nodes", &(self.nodes.len() - 1))
            .finish()
    }
}

impl Manager {
    /// Exact number of satisfying assignments as a `u128`. Panics if the
    /// manager has more than 127 variables (use [`Manager::sat_count`]
    /// there); all Clarify spaces stay below that bound.
    pub fn sat_count_exact(&self, f: Ref) -> u128 {
        assert!(
            self.num_vars <= 127,
            "sat_count_exact supports at most 127 variables"
        );
        let mut memo: HashMap<u32, u128> = HashMap::new();
        self.count_from(f, 0, &mut memo)
    }

    /// Models of `f` assuming the order levels `level..num_vars` are
    /// still free. Memoized per regular node; a complemented handle's
    /// count is the remaining assignment space minus the regular count.
    fn count_from(&self, f: Ref, level: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        let total = 1u128 << (self.num_vars - level);
        if f == Ref::TRUE {
            return total;
        }
        if f == Ref::FALSE {
            return 0;
        }
        let reg = f.regular();
        let node_level = self.level(reg);
        let at_node = if let Some(&c) = memo.get(&reg.0) {
            c
        } else {
            let n = self.node(reg);
            let lo = self.count_from(n.lo, node_level + 1, memo);
            let hi = self.count_from(n.hi, node_level + 1, memo);
            let c = lo + hi;
            memo.insert(reg.0, c);
            c
        };
        // Scale by the levels skipped between `level` and the node's.
        let scaled = at_node << (node_level - level);
        if f.is_complement() {
            total - scaled
        } else {
            scaled
        }
    }
}
