//! The open-addressed unique table backing hash-consing.
//!
//! The table maps `(var, lo, hi)` triples to arena indices without storing
//! the keys: slots hold bare `u32` node indices and key comparison reads
//! the node arena directly, so each slot costs four bytes and a lookup
//! that stays in one cache line usually touches the arena exactly once.
//! Capacity is a power of two (masked indexing, no division) and
//! collisions resolve by linear probing. The table never deletes
//! *incrementally* — between collections the set of keys is exactly the
//! set of live internal nodes — but the garbage collector and the sifting
//! pass retire nodes wholesale, after which [`UniqueTable::rebuild`]
//! reconstitutes the table from the surviving arena slots (dead slots are
//! tagged with a `var` sentinel and skipped).

use crate::manager::{Node, DEAD_VAR};

/// Slot sentinel for "no node here". Arena indices are capped far below
/// this by [`crate::manager::Manager`], so the sentinel can never collide
/// with a real index.
const EMPTY_SLOT: u32 = u32::MAX;

/// Smallest table we ever allocate (slots, power of two). Keeps the load
/// factor arithmetic trivially safe and the initial allocation tiny.
const MIN_CAPACITY: usize = 1 << 10;

/// FxHash-style multiplicative mixing over the `(var, lo, hi)` triple.
/// `lo` and `hi` are *tagged* refs (`index << 1 | complement`), so the
/// complement bit participates in the hash for free.
///
/// Each word is folded in with a multiply by the 64-bit golden-ratio
/// constant (the splitmix64 increment); the final xor-shift folds the
/// well-mixed high bits back into the low bits we mask with.
#[inline]
pub(crate) fn mix_triple(var: u32, lo: u32, hi: u32) -> u64 {
    const K: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut x = (var as u64).wrapping_add(K).wrapping_mul(K);
    x = (x ^ lo as u64).wrapping_mul(K);
    x = (x ^ hi as u64).wrapping_mul(K);
    x ^ (x >> 32)
}

/// Open-addressing hash table from node keys to arena indices.
pub(crate) struct UniqueTable {
    /// Power-of-two slot array of arena indices (`EMPTY_SLOT` = vacant).
    slots: Vec<u32>,
    /// Occupied slots; grows on insert, resets on [`UniqueTable::rebuild`].
    len: usize,
    /// Cumulative slot inspections across all lookups (the `bdd.unique_probes`
    /// counter). A value close to `len` means the hash is doing its job.
    probes: u64,
}

impl UniqueTable {
    /// A table sized so that `node_hint` nodes fit below the 3/4 load
    /// ceiling without rehashing.
    pub(crate) fn with_node_capacity(node_hint: usize) -> UniqueTable {
        UniqueTable {
            slots: vec![EMPTY_SLOT; Self::capacity_for(node_hint)],
            len: 0,
            probes: 0,
        }
    }

    fn capacity_for(nodes: usize) -> usize {
        (nodes.saturating_mul(4) / 3 + 1)
            .next_power_of_two()
            .max(MIN_CAPACITY)
    }

    /// Cumulative probe count (monotone; survives rehashes).
    pub(crate) fn probes(&self) -> u64 {
        self.probes
    }

    /// Doubles the table if one more insert would push the load factor
    /// past 3/4. Must be called *before* [`UniqueTable::find_or_slot`] so
    /// the returned insertion slot stays valid.
    pub(crate) fn reserve_one(&mut self, nodes: &[Node]) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            let cap = self.slots.len() * 2;
            self.rehash(nodes, cap);
        }
    }

    /// Rebuilds the table from the arena after a collection or a sifting
    /// pass, sized for `live` nodes (the table may shrink back — daemon
    /// sessions rely on that for memory flatness). Dead slots carry the
    /// `DEAD_VAR` sentinel and are skipped.
    pub(crate) fn rebuild(&mut self, nodes: &[Node], live: usize) {
        self.rehash(nodes, Self::capacity_for(live));
    }

    /// Rebuilds at `cap` slots straight from the node arena. Every live
    /// internal node is a key and all keys are distinct (hash-consing
    /// invariant), so reinsertion needs no comparisons — just a probe for
    /// the first empty slot.
    fn rehash(&mut self, nodes: &[Node], cap: usize) {
        let mask = cap - 1;
        let mut slots = vec![EMPTY_SLOT; cap];
        let mut len = 0;
        // Arena slot 0 is the terminal, never hashed; dead slots skipped.
        for (idx, n) in nodes.iter().enumerate().skip(1) {
            if n.var >= DEAD_VAR {
                continue;
            }
            let mut s = mix_triple(n.var, n.lo.0, n.hi.0) as usize & mask;
            while slots[s] != EMPTY_SLOT {
                s = (s + 1) & mask;
            }
            slots[s] = idx as u32;
            len += 1;
        }
        self.slots = slots;
        self.len = len;
    }

    /// Linear-probes for `(var, lo, hi)`: `Ok(index)` when the node is
    /// already interned, `Err(slot)` with the vacant insertion slot
    /// otherwise. Every slot inspection counts toward [`Self::probes`].
    pub(crate) fn find_or_slot(
        &mut self,
        nodes: &[Node],
        var: u32,
        lo: u32,
        hi: u32,
    ) -> Result<u32, usize> {
        let mask = self.slots.len() - 1;
        let mut s = mix_triple(var, lo, hi) as usize & mask;
        loop {
            self.probes += 1;
            let idx = self.slots[s];
            if idx == EMPTY_SLOT {
                return Err(s);
            }
            let n = &nodes[idx as usize];
            if n.var == var && n.lo.0 == lo && n.hi.0 == hi {
                return Ok(idx);
            }
            s = (s + 1) & mask;
        }
    }

    /// Fills the vacant slot returned by [`UniqueTable::find_or_slot`].
    pub(crate) fn insert(&mut self, slot: usize, idx: u32) {
        debug_assert_eq!(self.slots[slot], EMPTY_SLOT, "slot already taken");
        self.slots[slot] = idx;
        self.len += 1;
    }
}
