//! Sifting-based dynamic variable reordering (Rudell's algorithm).
//!
//! The primitive is an **adjacent-level swap** performed in place: when
//! levels `l` (variable `x`) and `l+1` (variable `y`) swap, every x-node
//! that depends on y is rewritten *in its own arena slot* as a y-node
//! over freshly consed x-children, and every other node is untouched.
//! Because a slot keeps denoting the same Boolean function, external
//! [`crate::Ref`]s — including every [`crate::Root`] — survive any
//! sequence of swaps unchanged. Orphaned y-nodes are reclaimed by
//! transient reference counts with cascading deaths, so the live-node
//! count tracked during sifting is exactly the canonical ROBDD size of
//! the rooted function set under the current order.
//!
//! A sifting pass moves each variable (most-populated first) down to the
//! bottom and up to the top of the order, records the best position seen,
//! aborts a direction once the diagram grows past 6/5 of the best size,
//! and finally parks the variable at its best level. The pass is
//! deterministic: no randomness, stable tie-breaks, and the node count at
//! any order is canonical (path-independent), so serial and parallel
//! builds that reorder at the same point see identical diagrams.

use std::collections::HashMap;
use std::time::Instant;

use crate::manager::{Manager, Node, DEAD_VAR};
use crate::Ref;

/// Direction abort threshold: stop sifting a direction once the diagram
/// exceeds `best * GROWTH_NUM / GROWTH_DEN` (= 1.2x).
const GROWTH_NUM: usize = 6;
const GROWTH_DEN: usize = 5;

/// What one sifting pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Live nodes before the pass (after its initial collection).
    pub before_nodes: usize,
    /// Live nodes after the pass.
    pub after_nodes: usize,
    /// Adjacent-level swaps performed.
    pub swaps: u64,
    /// Wall-clock nanoseconds spent in the pass.
    pub duration_ns: u64,
}

/// Transient sifting state: per-node reference counts and per-variable
/// node lists, both maintained across every swap of one pass. Lists are
/// pruned lazily — entries whose slot died or moved to another variable
/// are skipped on the next scan.
struct SiftState {
    rc: Vec<u32>,
    var_nodes: Vec<Vec<u32>>,
}

impl Manager {
    /// Runs one sifting pass over every variable, searching for a
    /// variable order that shrinks the diagram.
    ///
    /// Only functions reachable from [`crate::Root`] handles survive: the
    /// pass opens with a mark-and-sweep (reference counts must describe
    /// the live graph exactly), so unrooted refs are invalidated just
    /// like [`Manager::gc`] invalidates them. Rooted refs stay valid and
    /// keep denoting the same functions. Decoded witnesses are unaffected
    /// because witness extraction is order-invariant (see
    /// [`Manager::any_sat`]).
    pub fn reorder(&mut self) -> ReorderStats {
        let t0 = Instant::now();
        self.gc();
        let before_nodes = self.live_nodes;
        let num_vars = self.num_vars() as usize;
        let mut swaps = 0u64;
        if num_vars >= 2 && self.live_nodes > 0 {
            let mut st = self.build_sift_state();
            // Most-populated variables first: they have the most to gain,
            // and later sifts run against an already-shrunk diagram.
            // Stable sort => deterministic tie-break by variable id.
            let mut order: Vec<u32> = (0..self.num_vars()).collect();
            order.sort_by_key(|&v| std::cmp::Reverse(self.live_var_count(&st, v)));
            for &v in &order {
                if self.live_var_count(&st, v) == 0 {
                    continue;
                }
                self.sift_var(v, &mut st, &mut swaps);
            }
            self.unique.rebuild(&self.nodes, self.live_nodes);
        }
        self.order_identity = self
            .var2level
            .iter()
            .enumerate()
            .all(|(v, &l)| l == v as u32);
        let duration_ns = t0.elapsed().as_nanos() as u64;
        self.reorder_runs += 1;
        self.reorder_swaps += swaps;
        self.reorder_ns += duration_ns;
        self.obs.reorder_runs.incr();
        self.obs.reorder_swaps.add(swaps);
        self.obs.reorder_ns.add(duration_ns);
        ReorderStats {
            before_nodes,
            after_nodes: self.live_nodes,
            swaps,
            duration_ns,
        }
    }

    /// Reference counts from the live graph plus the root set, and the
    /// per-variable node lists. Runs right after the opening collection,
    /// so every non-dead node is root-reachable and gets rc >= 1.
    fn build_sift_state(&self) -> SiftState {
        let mut rc = vec![0u32; self.nodes.len()];
        let mut var_nodes: Vec<Vec<u32>> = vec![Vec::new(); self.num_vars() as usize];
        for idx in 1..self.nodes.len() {
            let n = self.nodes[idx];
            if n.var >= DEAD_VAR {
                continue;
            }
            var_nodes[n.var as usize].push(idx as u32);
            rc[n.lo.index() as usize] += 1;
            rc[n.hi.index() as usize] += 1;
        }
        for r in self.roots.iter().flatten() {
            rc[r.index() as usize] += 1;
        }
        SiftState { rc, var_nodes }
    }

    /// Live nodes currently labelled with `var` (prunes stale entries).
    fn live_var_count(&self, st: &SiftState, var: u32) -> usize {
        st.var_nodes[var as usize]
            .iter()
            .filter(|&&i| self.nodes[i as usize].var == var)
            .count()
    }

    /// Sifts one variable: down to the bottom, up to the top (each
    /// direction abandoned past the growth bound), then back to the best
    /// level seen. The first minimum along the trajectory wins ties.
    fn sift_var(&mut self, v: u32, st: &mut SiftState, swaps: &mut u64) {
        let bottom = self.num_vars() as usize - 1;
        let start = self.var2level[v as usize] as usize;
        let mut l = start;
        let mut best_size = self.live_nodes;
        let mut best_level = start;
        while l < bottom {
            self.swap_levels(l, st);
            *swaps += 1;
            l += 1;
            if self.live_nodes < best_size {
                best_size = self.live_nodes;
                best_level = l;
            }
            if self.live_nodes * GROWTH_DEN > best_size * GROWTH_NUM {
                break;
            }
        }
        while l > 0 {
            self.swap_levels(l - 1, st);
            *swaps += 1;
            l -= 1;
            if self.live_nodes < best_size {
                best_size = self.live_nodes;
                best_level = l;
            }
            if self.live_nodes * GROWTH_DEN > best_size * GROWTH_NUM {
                break;
            }
        }
        while l < best_level {
            self.swap_levels(l, st);
            *swaps += 1;
            l += 1;
        }
        while l > best_level {
            self.swap_levels(l - 1, st);
            *swaps += 1;
            l -= 1;
        }
        debug_assert_eq!(self.live_nodes, best_size, "size not canonical per order");
    }

    /// Swaps order levels `l` and `l+1` in place.
    ///
    /// With `x` at level `l` and `y` at `l+1`: x-nodes not depending on y
    /// keep their slot and label (their level moves with the map swap);
    /// x-nodes depending on y are rewritten in place as y-nodes over
    /// consed x-children. The rewritten slot denotes the same function,
    /// so no edge pointing at it needs patching. New x-children are
    /// consed against a local table of the surviving x-stayers — the
    /// global unique table is stale during sifting and rebuilt once at
    /// the end of the pass.
    ///
    /// Canonical-form note: a rewritten node's then-edge is always
    /// regular. Its then-child is `mk(x, f01, f11)` whose own then-child
    /// `f11` is the then-cofactor of a regular then-edge — regular by the
    /// node invariant — so neither the complement-out rule nor the
    /// `lo == hi` reduction can ever hand back a complemented then-edge.
    fn swap_levels(&mut self, l: usize, st: &mut SiftState) {
        let x = self.level2var[l];
        let y = self.level2var[l + 1];
        let mut xs = std::mem::take(&mut st.var_nodes[x as usize]);
        // A slot freed mid-pass and re-allocated for the same variable is
        // pushed again while its stale entry lingers; processing a mover
        // slot twice would re-read it *after* the rewrite. Dedup first.
        xs.sort_unstable();
        xs.dedup();
        let mut stayers: Vec<u32> = Vec::with_capacity(xs.len());
        let mut movers: Vec<u32> = Vec::new();
        for idx in xs {
            let n = self.nodes[idx as usize];
            if n.var != x {
                continue; // stale: slot died or was rewritten earlier
            }
            if self.var_of(n.lo) == y || self.var_of(n.hi) == y {
                movers.push(idx);
            } else {
                stayers.push(idx);
            }
        }
        let mut local: HashMap<(u32, u32), u32> = stayers
            .iter()
            .map(|&i| {
                let n = self.nodes[i as usize];
                ((n.lo.0, n.hi.0), i)
            })
            .collect();
        st.var_nodes[x as usize] = stayers;
        for idx in movers {
            let n = self.nodes[idx as usize];
            let (f0, f1) = (n.lo, n.hi);
            let (f00, f01) = if self.var_of(f0) == y {
                self.children(f0)
            } else {
                (f0, f0)
            };
            let (f10, f11) = if self.var_of(f1) == y {
                self.children(f1)
            } else {
                (f1, f1)
            };
            let a = self.mk_sift(x, f00, f10, st, &mut local);
            let b = self.mk_sift(x, f01, f11, st, &mut local);
            debug_assert!(!b.is_complement(), "then-edge must stay regular");
            debug_assert_ne!(a, b, "mover did not actually depend on y");
            self.nodes[idx as usize] = Node {
                var: y,
                lo: a,
                hi: b,
            };
            st.var_nodes[y as usize].push(idx);
            self.deref_cascade(f0, st);
            self.deref_cascade(f1, st);
        }
        self.level2var.swap(l, l + 1);
        self.var2level.swap(x as usize, y as usize);
    }

    /// The variable labelling `r`'s slot, or `u32::MAX` for terminals.
    fn var_of(&self, r: Ref) -> u32 {
        if r.is_const() {
            u32::MAX
        } else {
            self.nodes[(r.0 >> 1) as usize].var
        }
    }

    /// `mk` against the swap-local consing table, maintaining reference
    /// counts: the returned ref carries one fresh reference for its
    /// caller (the rewritten mover).
    fn mk_sift(
        &mut self,
        var: u32,
        lo: Ref,
        hi: Ref,
        st: &mut SiftState,
        local: &mut HashMap<(u32, u32), u32>,
    ) -> Ref {
        if lo == hi {
            st.rc[lo.index() as usize] += 1;
            return lo;
        }
        let (lo, hi, complement_out) = if hi.is_complement() {
            (lo.complement(), hi.complement(), 1u32)
        } else {
            (lo, hi, 0u32)
        };
        if let Some(&i) = local.get(&(lo.0, hi.0)) {
            st.rc[i as usize] += 1;
            return Ref(i << 1 | complement_out);
        }
        let idx = self.alloc_node(Node { var, lo, hi });
        if st.rc.len() <= idx as usize {
            st.rc.resize(idx as usize + 1, 0);
        }
        st.rc[idx as usize] = 1;
        st.rc[lo.index() as usize] += 1;
        st.rc[hi.index() as usize] += 1;
        local.insert((lo.0, hi.0), idx);
        st.var_nodes[var as usize].push(idx);
        self.obs.unique_nodes.add(1);
        Ref(idx << 1 | complement_out)
    }

    /// Drops one reference to `r`, freeing its slot and cascading into
    /// its children when the count reaches zero.
    fn deref_cascade(&mut self, r: Ref, st: &mut SiftState) {
        let mut stack = vec![r.index()];
        while let Some(idx) = stack.pop() {
            if idx == 0 {
                continue; // the terminal is never freed
            }
            let i = idx as usize;
            debug_assert!(st.rc[i] > 0, "refcount underflow");
            st.rc[i] -= 1;
            if st.rc[i] == 0 {
                let n = self.nodes[i];
                debug_assert!(n.var < DEAD_VAR, "double free");
                self.nodes[i].var = DEAD_VAR;
                self.free.push(idx);
                self.live_nodes -= 1;
                self.obs.unique_nodes.sub(1);
                stack.push(n.lo.index());
                stack.push(n.hi.index());
            }
        }
    }
}
