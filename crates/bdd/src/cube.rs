//! Partial assignments extracted from BDD paths.

/// A partial truth assignment over the manager's variables.
///
/// Produced by [`crate::Manager::any_sat`]; variables not forced by the
/// satisfying path remain [`None`] and may be chosen freely by the consumer
/// (the analysis layer fills them with deterministic defaults so witnesses
/// are reproducible).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cube {
    bits: Vec<Option<bool>>,
}

impl Cube {
    /// A cube leaving every one of `num_vars` variables unconstrained.
    pub fn unconstrained(num_vars: u32) -> Self {
        Cube {
            bits: vec![None; num_vars as usize],
        }
    }

    /// Forces `var` to `value`.
    pub fn set(&mut self, var: u32, value: bool) {
        self.bits[var as usize] = Some(value);
    }

    /// The constraint on `var`, if any.
    pub fn get(&self, var: u32) -> Option<bool> {
        self.bits[var as usize]
    }

    /// The value of `var`, defaulting unconstrained variables to `false`.
    pub fn value_or_false(&self, var: u32) -> bool {
        self.bits[var as usize].unwrap_or(false)
    }

    /// Number of variables the cube ranges over.
    pub fn num_vars(&self) -> u32 {
        self.bits.len() as u32
    }

    /// Decodes consecutive variables `vars` (MSB first) as an unsigned
    /// integer, defaulting unconstrained bits to zero.
    pub fn decode(&self, vars: &[u32]) -> u64 {
        let mut v = 0u64;
        for &var in vars {
            v = (v << 1) | u64::from(self.value_or_false(var));
        }
        v
    }

    /// Number of constrained variables.
    pub fn fixed_count(&self) -> usize {
        self.bits.iter().filter(|b| b.is_some()).count()
    }
}
