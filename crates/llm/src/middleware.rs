//! Composable backend middleware: retry, guardrail, recording, replay.
//!
//! Every layer implements [`Backend`] and wraps another backend, so a
//! stack of layers is itself a backend the pipeline uses unchanged. The
//! standard stack built by [`BackendStack`](crate::BackendStack) is
//!
//! ```text
//! Guardrail( Retry( Recording( base ) ) )
//! ```
//!
//! **Recording sits innermost** so every exchange that actually reaches
//! the base backend — including each retry attempt — lands in the
//! transcript; replaying the transcript then reproduces the base
//! backend's behaviour exactly, retries and all, with the same outer
//! layers re-applied live. [`ReplayBackend`] substitutes for the base at
//! that innermost position.
//!
//! Layers are instrumented with `llm.mw.*` counters and a
//! `span.llm_backend.ns` timing span at the stack boundary.

use std::sync::{Arc, Mutex};

use crate::backend::{Backend, LlmRequest};
use crate::envelope::IntentEnvelope;
use crate::error::{BackendError, ReplayError};
use crate::transcript::{request_digest, Transcript, TranscriptEntry};

/// Longest accepted user prompt, in bytes; anything bigger is rejected by
/// the guardrail before it reaches a backend.
const MAX_PROMPT_BYTES: usize = 1 << 16;

/// Prompt substrings the guardrail treats as injection attempts.
const ABUSE_MARKERS: [&str; 3] = [
    "ignore previous instructions",
    "ignore all previous instructions",
    "disregard your system prompt",
];

/// Retries transient backend failures with capped exponential backoff.
/// Non-transient errors and envelope replies pass through untouched; on
/// exhaustion the *last* backend error is surfaced.
pub struct Retry<B> {
    inner: B,
    max_attempts: usize,
    base_delay_ms: u64,
}

impl<B: Backend> Retry<B> {
    /// Wraps `inner`, allowing up to `max_attempts` total attempts per
    /// request with a 10 ms base backoff (doubled per retry, capped at
    /// one second).
    pub fn new(inner: B, max_attempts: usize) -> Retry<B> {
        assert!(max_attempts >= 1, "at least one attempt required");
        let obs = clarify_obs::global();
        let _ = obs.counter("llm.mw.retry.attempts");
        let _ = obs.counter("llm.mw.retry.exhausted");
        Retry {
            inner,
            max_attempts,
            base_delay_ms: 10,
        }
    }

    /// Overrides the base backoff delay (tests use zero).
    pub fn with_base_delay_ms(mut self, ms: u64) -> Retry<B> {
        self.base_delay_ms = ms;
        self
    }

    fn backoff_ms(&self, retry_index: u32) -> u64 {
        const CAP_MS: u64 = 1000;
        self.base_delay_ms
            .saturating_mul(1u64 << retry_index.min(10))
            .min(CAP_MS)
    }
}

impl<B: Backend> Backend for Retry<B> {
    fn complete(&mut self, request: &LlmRequest) -> Result<IntentEnvelope, BackendError> {
        let obs = clarify_obs::global();
        let mut last = None;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                obs.counter("llm.mw.retry.attempts").incr();
                let ms = self.backoff_ms(attempt as u32 - 1);
                if ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
            match self.inner.complete(request) {
                Ok(envelope) => return Ok(envelope),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        obs.counter("llm.mw.retry.exhausted").incr();
        Err(last.expect("at least one attempt ran"))
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Schema and abuse checks on both sides of the backend boundary:
/// rejects empty, oversized, or injection-marked prompts before they
/// reach the backend, and rejects out-of-schema envelopes before they
/// reach the pipeline. A [`BackendError::Guardrail`] is never retried —
/// the pipeline punts without invoking the verifier.
pub struct Guardrail<B> {
    inner: B,
}

impl<B: Backend> Guardrail<B> {
    /// Wraps `inner`.
    pub fn new(inner: B) -> Guardrail<B> {
        let _ = clarify_obs::global().counter("llm.mw.guardrail.rejected");
        Guardrail { inner }
    }

    fn check_request(request: &LlmRequest) -> Result<(), BackendError> {
        if request.user.trim().is_empty() {
            return Err(BackendError::Guardrail("the prompt is empty".into()));
        }
        if request.user.len() > MAX_PROMPT_BYTES {
            return Err(BackendError::Guardrail(format!(
                "the prompt exceeds {MAX_PROMPT_BYTES} bytes"
            )));
        }
        let lowered = request.user.to_ascii_lowercase();
        for marker in ABUSE_MARKERS {
            if lowered.contains(marker) {
                return Err(BackendError::Guardrail(format!(
                    "the prompt contains the injection marker '{marker}'"
                )));
            }
        }
        Ok(())
    }
}

impl<B: Backend> Backend for Guardrail<B> {
    fn complete(&mut self, request: &LlmRequest) -> Result<IntentEnvelope, BackendError> {
        let _span = clarify_obs::span!("llm_backend");
        let obs = clarify_obs::global();
        if let Err(e) = Guardrail::<B>::check_request(request) {
            obs.counter("llm.mw.guardrail.rejected").incr();
            return Err(e);
        }
        let envelope = self.inner.complete(request)?;
        if let Err(e) = envelope.validate() {
            obs.counter("llm.mw.guardrail.rejected").incr();
            return Err(BackendError::Guardrail(e.to_string()));
        }
        if envelope.task != request.task {
            obs.counter("llm.mw.guardrail.rejected").incr();
            return Err(BackendError::Guardrail(format!(
                "envelope answers task '{}' but the request was '{}'",
                envelope.task.keyword(),
                request.task.keyword()
            )));
        }
        Ok(envelope)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Appends every successful exchange to a shared [`Transcript`] sink.
/// Failed requests are not recorded: a transcript holds only what the
/// base backend actually answered, so replaying it cannot re-introduce
/// transport failures.
pub struct Recording<B> {
    inner: B,
    sink: Arc<Mutex<Transcript>>,
}

impl<B: Backend> Recording<B> {
    /// Wraps `inner`, appending exchanges to `sink`.
    pub fn new(inner: B, sink: Arc<Mutex<Transcript>>) -> Recording<B> {
        let _ = clarify_obs::global().counter("llm.mw.record.entries");
        Recording { inner, sink }
    }
}

impl<B: Backend> Backend for Recording<B> {
    fn complete(&mut self, request: &LlmRequest) -> Result<IntentEnvelope, BackendError> {
        let envelope = self.inner.complete(request)?;
        self.sink
            .lock()
            .expect("transcript sink poisoned")
            .entries
            .push(TranscriptEntry::from_exchange(request, &envelope));
        clarify_obs::global()
            .counter("llm.mw.record.entries")
            .incr();
        Ok(envelope)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// A terminal backend that answers requests from a recorded transcript.
///
/// Each request is matched against the next entry by
/// [`request_digest`]; a digest mismatch or an exhausted transcript is a
/// [`BackendError::Replay`], which aborts the session before any
/// configuration commit — a replayed run either reproduces the recording
/// exactly or stops. The transcript is shared (`Arc`) so every `clarify
/// serve` session replays from its own cursor over one loaded file.
pub struct ReplayBackend {
    transcript: Arc<Transcript>,
    cursor: usize,
}

impl ReplayBackend {
    /// Creates a replay backend over `transcript`, starting at entry 0.
    pub fn new(transcript: Arc<Transcript>) -> ReplayBackend {
        let obs = clarify_obs::global();
        let _ = obs.counter("llm.mw.replay.hits");
        let _ = obs.counter("llm.mw.replay.misses");
        ReplayBackend {
            transcript,
            cursor: 0,
        }
    }

    /// Entries served so far.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl Backend for ReplayBackend {
    fn complete(&mut self, request: &LlmRequest) -> Result<IntentEnvelope, BackendError> {
        let obs = clarify_obs::global();
        let Some(entry) = self.transcript.entries.get(self.cursor) else {
            obs.counter("llm.mw.replay.misses").incr();
            return Err(BackendError::Replay(ReplayError::Exhausted {
                at: self.cursor,
            }));
        };
        let live = request_digest(request.task, &request.user, request.feedback.as_deref());
        if live != entry.request_digest {
            obs.counter("llm.mw.replay.misses").incr();
            return Err(BackendError::Replay(ReplayError::Mismatch {
                at: self.cursor,
                expected: entry.request_digest,
                got: live,
            }));
        }
        self.cursor += 1;
        obs.counter("llm.mw.replay.hits").incr();
        Ok(entry.envelope.clone())
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}
