//! The schema-constrained backend contract.
//!
//! Every backend — deterministic parser, fault injector, transcript
//! replay, or a future live LLM — answers a request with an
//! [`IntentEnvelope`]: a versioned, task-tagged document whose payload is
//! constrained by a fixed schema. The envelope is validated *before* it
//! reaches the pipeline ([`IntentEnvelope::validate`], enforced by the
//! guardrail middleware and defensively re-checked in the pipeline), so
//! out-of-schema output is rejected at the boundary instead of surfacing
//! as a parse error three layers deeper.
//!
//! The JSON form ([`IntentEnvelope::to_json`] / [`from_json`]) doubles as
//! the transcript wire format: a recorded envelope deserializes to a
//! byte-identical document, which is what makes offline replay exact.
//!
//! [`from_json`]: IntentEnvelope::from_json

use clarify_obs::json;

use crate::backend::TaskKind;

/// The envelope schema version this build writes and accepts.
pub const ENVELOPE_VERSION: u32 = 1;

/// Longest accepted payload text; anything bigger is out of schema.
const MAX_TEXT_BYTES: usize = 1 << 20;

/// Most free-form object references one envelope may carry.
const MAX_REFERENCES: usize = 64;

/// An envelope that does not conform to the backend contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError {
    /// What was out of schema.
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "envelope schema violation: {}", self.message)
    }
}

impl std::error::Error for SchemaError {}

fn schema(message: impl Into<String>) -> SchemaError {
    SchemaError {
        message: message.into(),
    }
}

/// The task-dependent body of an [`IntentEnvelope`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvelopePayload {
    /// A [`TaskKind::Classify`] verdict: `"route-map"` or `"acl"`.
    Classification {
        /// The query kind keyword.
        kind: String,
    },
    /// Synthesized IOS configuration text (route-map or ACL synthesis).
    Config {
        /// The configuration snippet.
        text: String,
    },
    /// The machine-readable spec in the line-based exchange format.
    Spec {
        /// The spec text.
        text: String,
    },
    /// The backend declined: the prompt was outside the constrained
    /// grammar (or a policy refusal from a live backend).
    Refusal {
        /// Why the request was refused.
        reason: String,
    },
}

impl EnvelopePayload {
    fn keyword(&self) -> &'static str {
        match self {
            EnvelopePayload::Classification { .. } => "classification",
            EnvelopePayload::Config { .. } => "config",
            EnvelopePayload::Spec { .. } => "spec",
            EnvelopePayload::Refusal { .. } => "refusal",
        }
    }
}

/// One backend reply: version, task echo, payload, and the free-form
/// object names the backend claims the payload relies on (resolved onto
/// canonical identities by [`Resolver`](crate::Resolver) downstream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntentEnvelope {
    /// Schema version ([`ENVELOPE_VERSION`] for documents this build
    /// produces).
    pub version: u32,
    /// The task this envelope answers.
    pub task: TaskKind,
    /// The task-dependent body.
    pub payload: EnvelopePayload,
    /// Free-form names of configuration objects the payload references.
    pub references: Vec<String>,
}

impl IntentEnvelope {
    /// A classification envelope.
    pub fn classification(kind: impl Into<String>) -> IntentEnvelope {
        IntentEnvelope {
            version: ENVELOPE_VERSION,
            task: TaskKind::Classify,
            payload: EnvelopePayload::Classification { kind: kind.into() },
            references: Vec::new(),
        }
    }

    /// A synthesized-configuration envelope carrying `references`.
    pub fn config(
        task: TaskKind,
        text: impl Into<String>,
        references: Vec<String>,
    ) -> IntentEnvelope {
        IntentEnvelope {
            version: ENVELOPE_VERSION,
            task,
            payload: EnvelopePayload::Config { text: text.into() },
            references,
        }
    }

    /// A spec envelope.
    pub fn spec(text: impl Into<String>) -> IntentEnvelope {
        IntentEnvelope {
            version: ENVELOPE_VERSION,
            task: TaskKind::ExtractSpec,
            payload: EnvelopePayload::Spec { text: text.into() },
            references: Vec::new(),
        }
    }

    /// A refusal envelope.
    pub fn refusal(task: TaskKind, reason: impl Into<String>) -> IntentEnvelope {
        IntentEnvelope {
            version: ENVELOPE_VERSION,
            task,
            payload: EnvelopePayload::Refusal {
                reason: reason.into(),
            },
            references: Vec::new(),
        }
    }

    /// Checks the envelope against the schema: known version, payload
    /// kind legal for the task, classification keyword in its closed set,
    /// size caps on text and references.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.version != ENVELOPE_VERSION {
            return Err(schema(format!(
                "version {} is not the supported version {ENVELOPE_VERSION}",
                self.version
            )));
        }
        match (&self.task, &self.payload) {
            (TaskKind::Classify, EnvelopePayload::Classification { kind }) => {
                if kind != "route-map" && kind != "acl" {
                    return Err(schema(format!(
                        "classification '{kind}' is not in the closed set {{route-map, acl}}"
                    )));
                }
            }
            (
                TaskKind::SynthesizeRouteMap | TaskKind::SynthesizeAcl,
                EnvelopePayload::Config { text },
            ) => {
                if text.trim().is_empty() {
                    return Err(schema("synthesized configuration is empty"));
                }
                if text.len() > MAX_TEXT_BYTES {
                    return Err(schema(format!(
                        "synthesized configuration exceeds {MAX_TEXT_BYTES} bytes"
                    )));
                }
            }
            (TaskKind::ExtractSpec, EnvelopePayload::Spec { text }) => {
                if text.trim().is_empty() {
                    return Err(schema("extracted spec is empty"));
                }
                if text.len() > MAX_TEXT_BYTES {
                    return Err(schema(format!(
                        "extracted spec exceeds {MAX_TEXT_BYTES} bytes"
                    )));
                }
            }
            (_, EnvelopePayload::Refusal { reason }) => {
                if reason.trim().is_empty() {
                    return Err(schema("refusal carries no reason"));
                }
            }
            (task, payload) => {
                return Err(schema(format!(
                    "payload '{}' is not legal for task '{}'",
                    payload.keyword(),
                    task.keyword()
                )));
            }
        }
        if self.references.len() > MAX_REFERENCES {
            return Err(schema(format!(
                "{} references exceed the cap of {MAX_REFERENCES}",
                self.references.len()
            )));
        }
        for r in &self.references {
            if r.trim().is_empty() || r.len() > 256 {
                return Err(schema("reference names must be non-empty and short"));
            }
        }
        Ok(())
    }

    /// Renders the envelope as one deterministic JSON object (no
    /// trailing newline; field order is fixed).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"version\": {}, ", self.version));
        out.push_str(&format!(
            "\"task\": {}, ",
            json::escape(self.task.keyword())
        ));
        out.push_str(&format!(
            "\"payload\": {}, ",
            json::escape(self.payload.keyword())
        ));
        match &self.payload {
            EnvelopePayload::Classification { kind } => {
                out.push_str(&format!("\"kind\": {}, ", json::escape(kind)));
            }
            EnvelopePayload::Config { text } | EnvelopePayload::Spec { text } => {
                out.push_str(&format!("\"text\": {}, ", json::escape(text)));
            }
            EnvelopePayload::Refusal { reason } => {
                out.push_str(&format!("\"reason\": {}, ", json::escape(reason)));
            }
        }
        out.push_str("\"references\": [");
        for (i, r) in self.references.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json::escape(r));
        }
        out.push_str("]}");
        out
    }

    /// Parses and validates an envelope document.
    pub fn from_json(text: &str) -> Result<IntentEnvelope, SchemaError> {
        let value = json::parse(text).map_err(schema)?;
        IntentEnvelope::from_value(&value)
    }

    /// Parses and validates an envelope from an already-parsed JSON value
    /// (transcripts embed envelopes inside a larger document).
    pub fn from_value(value: &json::Value) -> Result<IntentEnvelope, SchemaError> {
        let fields = value.as_object("envelope").map_err(schema)?;
        let mut version = None;
        let mut task = None;
        let mut payload_kind = None;
        let mut kind = None;
        let mut text = None;
        let mut reason = None;
        let mut references = Vec::new();
        for (k, v) in fields {
            match k.as_str() {
                "version" => version = Some(v.as_u64(k).map_err(schema)?),
                "task" => {
                    let s = v.as_str(k).map_err(schema)?;
                    task = Some(
                        TaskKind::from_keyword(s)
                            .ok_or_else(|| schema(format!("unknown task keyword '{s}'")))?,
                    );
                }
                "payload" => payload_kind = Some(v.as_str(k).map_err(schema)?.to_string()),
                "kind" => kind = Some(v.as_str(k).map_err(schema)?.to_string()),
                "text" => text = Some(v.as_str(k).map_err(schema)?.to_string()),
                "reason" => reason = Some(v.as_str(k).map_err(schema)?.to_string()),
                "references" => {
                    for r in v.as_array(k).map_err(schema)? {
                        references.push(r.as_str("reference").map_err(schema)?.to_string());
                    }
                }
                other => return Err(schema(format!("unknown envelope key '{other}'"))),
            }
        }
        let version = version.ok_or_else(|| schema("missing 'version'"))? as u32;
        let task = task.ok_or_else(|| schema("missing 'task'"))?;
        let payload_kind = payload_kind.ok_or_else(|| schema("missing 'payload'"))?;
        let payload = match payload_kind.as_str() {
            "classification" => EnvelopePayload::Classification {
                kind: kind.ok_or_else(|| schema("classification missing 'kind'"))?,
            },
            "config" => EnvelopePayload::Config {
                text: text.ok_or_else(|| schema("config payload missing 'text'"))?,
            },
            "spec" => EnvelopePayload::Spec {
                text: text.ok_or_else(|| schema("spec payload missing 'text'"))?,
            },
            "refusal" => EnvelopePayload::Refusal {
                reason: reason.ok_or_else(|| schema("refusal missing 'reason'"))?,
            },
            other => return Err(schema(format!("unknown payload kind '{other}'"))),
        };
        let envelope = IntentEnvelope {
            version,
            task,
            payload,
            references,
        };
        envelope.validate()?;
        Ok(envelope)
    }
}
