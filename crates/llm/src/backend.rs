//! LLM backends: the [`Backend`] trait (the envelope contract), the
//! deterministic semantic backend, and the fault-injecting wrapper.

use clarify_rng::{Rng, StdRng};

use clarify_analysis::StanzaSpec;
use clarify_netconfig::RouteMapSet;

use crate::envelope::IntentEnvelope;
use crate::error::BackendError;
use crate::intent::{is_acl_prompt, AclIntent, RouteMapIntent};

/// Which of the pipeline's prompts a request carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Classify the query as route-map or ACL synthesis (step 1 of Fig. 1).
    Classify,
    /// Synthesize a single route-map stanza in IOS syntax.
    SynthesizeRouteMap,
    /// Synthesize a single ACL entry in IOS syntax.
    SynthesizeAcl,
    /// Extract the machine-readable spec from the user prompt.
    ExtractSpec,
}

impl TaskKind {
    /// The stable keyword used in envelopes and transcripts.
    pub fn keyword(&self) -> &'static str {
        match self {
            TaskKind::Classify => "classify",
            TaskKind::SynthesizeRouteMap => "synthesize-route-map",
            TaskKind::SynthesizeAcl => "synthesize-acl",
            TaskKind::ExtractSpec => "extract-spec",
        }
    }

    /// Parses a [`keyword`](TaskKind::keyword) back into the kind.
    pub fn from_keyword(s: &str) -> Option<TaskKind> {
        match s {
            "classify" => Some(TaskKind::Classify),
            "synthesize-route-map" => Some(TaskKind::SynthesizeRouteMap),
            "synthesize-acl" => Some(TaskKind::SynthesizeAcl),
            "extract-spec" => Some(TaskKind::ExtractSpec),
            _ => None,
        }
    }
}

/// One request to the LLM: system prompt, few-shot examples, user text.
#[derive(Clone, Debug)]
pub struct LlmRequest {
    /// The task this request performs.
    pub task: TaskKind,
    /// System prompt retrieved from the prompt database.
    pub system: String,
    /// Few-shot examples `(user, assistant)`.
    pub examples: Vec<(String, String)>,
    /// The user's prompt.
    pub user: String,
    /// Verifier feedback from the previous failed attempt, if any.
    pub feedback: Option<String>,
}

/// Anything that can play the LLM's role in the pipeline.
///
/// A backend answers every request with a schema-constrained
/// [`IntentEnvelope`] or a typed [`BackendError`]; free text never crosses
/// this boundary. The deterministic [`SemanticBackend`], the
/// [`FaultyBackend`] wrapper, and the transcript
/// [`ReplayBackend`](crate::ReplayBackend) all implement this
/// one trait, as does every middleware layer in
/// the middleware module — so a stack of layers is itself a backend, and
/// swapping stacks never touches the pipeline, the verifier, or the
/// disambiguators.
pub trait Backend {
    /// Completes one request.
    fn complete(&mut self, request: &LlmRequest) -> Result<IntentEnvelope, BackendError>;

    /// A short name for logs and experiment output. Middleware layers
    /// delegate to the innermost backend.
    fn name(&self) -> &'static str {
        "backend"
    }
}

impl<B: Backend + ?Sized> Backend for Box<B> {
    fn complete(&mut self, request: &LlmRequest) -> Result<IntentEnvelope, BackendError> {
        (**self).complete(request)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A boxed backend stack, as built by [`BackendStack`](crate::BackendStack).
/// `Send` so `clarify serve` sessions can migrate across worker threads.
pub type DynBackend = Box<dyn Backend + Send>;

/// A deterministic grammar-directed "LLM": parses the constrained English
/// intent and emits exactly correct IOS configuration / spec text. Plays
/// the part of the paper's GPT-4, which synthesized every stanza correctly
/// in a single pass on the evaluation workload.
#[derive(Clone, Debug, Default)]
pub struct SemanticBackend;

impl SemanticBackend {
    /// Creates the backend.
    pub fn new() -> SemanticBackend {
        SemanticBackend
    }
}

/// Renders a [`StanzaSpec`] in the line-based exchange format the pipeline
/// parses back (the JSON of the paper is produced separately for display).
pub(crate) fn render_route_spec(spec: &StanzaSpec) -> String {
    let mut out = String::new();
    out.push_str(if spec.permit {
        "action permit\n"
    } else {
        "action deny\n"
    });
    for r in &spec.prefixes {
        out.push_str(&format!("prefix {r}\n"));
    }
    for c in &spec.communities {
        out.push_str(&format!("community {c}\n"));
    }
    for p in &spec.as_paths {
        out.push_str(&format!("as-path {p}\n"));
    }
    if let Some(v) = spec.local_pref {
        out.push_str(&format!("match local-preference {v}\n"));
    }
    if let Some(v) = spec.metric {
        out.push_str(&format!("match metric {v}\n"));
    }
    if let Some(v) = spec.tag {
        out.push_str(&format!("match tag {v}\n"));
    }
    for s in &spec.sets {
        out.push_str(&format!("{}\n", render_set(s)));
    }
    out
}

fn render_set(s: &RouteMapSet) -> String {
    match s {
        RouteMapSet::Metric(v) => format!("set metric {v}"),
        RouteMapSet::LocalPref(v) => format!("set local-preference {v}"),
        RouteMapSet::Weight(v) => format!("set weight {v}"),
        RouteMapSet::Tag(v) => format!("set tag {v}"),
        RouteMapSet::NextHop(ip) => format!("set ip next-hop {ip}"),
        RouteMapSet::CommunityAdd(cs) => format!(
            "set community {} additive",
            cs.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        ),
        RouteMapSet::CommunityReplace(cs) => format!(
            "set community {}",
            cs.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        ),
    }
}

/// Ancillary object names defined by a synthesized snippet, in
/// definition order — the free-form references the resolution layer
/// checks against the parsed configuration.
fn snippet_references(cfg: &clarify_netconfig::Config) -> Vec<String> {
    let mut refs: Vec<String> = Vec::new();
    refs.extend(cfg.prefix_lists.keys().cloned());
    refs.extend(cfg.as_path_lists.keys().cloned());
    refs.extend(cfg.community_lists.keys().cloned());
    refs
}

impl Backend for SemanticBackend {
    fn complete(&mut self, request: &LlmRequest) -> Result<IntentEnvelope, BackendError> {
        let envelope = match request.task {
            TaskKind::Classify => {
                if is_acl_prompt(&request.user) {
                    IntentEnvelope::classification("acl")
                } else {
                    IntentEnvelope::classification("route-map")
                }
            }
            TaskKind::SynthesizeRouteMap => match RouteMapIntent::parse(&request.user) {
                Ok(intent) => match intent.to_snippet() {
                    Ok((cfg, _)) => IntentEnvelope::config(
                        request.task,
                        cfg.to_string(),
                        snippet_references(&cfg),
                    ),
                    Err(e) => IntentEnvelope::refusal(request.task, e.to_string()),
                },
                Err(e) => IntentEnvelope::refusal(request.task, e.to_string()),
            },
            TaskKind::SynthesizeAcl => match AclIntent::parse(&request.user) {
                Ok(intent) => IntentEnvelope::config(
                    request.task,
                    format!("ip access-list extended NEW_RULE\n{}\n", intent.to_entry()),
                    Vec::new(),
                ),
                Err(e) => IntentEnvelope::refusal(request.task, e.to_string()),
            },
            TaskKind::ExtractSpec => {
                if is_acl_prompt(&request.user) {
                    match AclIntent::parse(&request.user) {
                        Ok(intent) => IntentEnvelope::spec(format!(
                            "ip access-list extended SPEC\n{}\n",
                            intent.to_entry()
                        )),
                        Err(e) => IntentEnvelope::refusal(request.task, e.to_string()),
                    }
                } else {
                    match RouteMapIntent::parse(&request.user).and_then(|i| i.to_spec()) {
                        Ok(spec) => IntentEnvelope::spec(render_route_spec(&spec)),
                        Err(e) => IntentEnvelope::refusal(request.task, e.to_string()),
                    }
                }
            }
        };
        Ok(envelope)
    }

    fn name(&self) -> &'static str {
        "semantic"
    }
}

/// The kinds of corruption the fault injector can apply to a synthesized
/// configuration, modelling characteristic LLM mistakes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An off-by-one in a prefix-length bound (`le 23` → `le 22`).
    OffByOneBound,
    /// A wrong value in a set clause (`set metric 55` → `set metric 56`).
    WrongSetValue,
    /// Permit/deny flipped on the stanza.
    WrongAction,
    /// Outright syntax garbage appended.
    SyntaxError,
}

const ALL_FAULTS: [FaultKind; 4] = [
    FaultKind::OffByOneBound,
    FaultKind::WrongSetValue,
    FaultKind::WrongAction,
    FaultKind::SyntaxError,
];

/// Wraps a backend and corrupts synthesized configuration payloads with
/// probability `error_rate` per call, using a seeded RNG for
/// reproducibility. Classification, spec extraction, and refusals are
/// left intact (the paper's user checks the spec by hand, so the
/// verification loop assumes it).
///
/// `FaultyBackend` is itself just a [`Backend`] — the standard middleware
/// stack wraps it like any other, which is what `--backend faulty` does.
pub struct FaultyBackend<B> {
    inner: B,
    error_rate: f64,
    rng: StdRng,
    injected: usize,
    heeds_feedback: bool,
}

impl<B: Backend> FaultyBackend<B> {
    /// Creates a faulty wrapper with the given error rate in `[0, 1]`.
    pub fn new(inner: B, error_rate: f64, seed: u64) -> FaultyBackend<B> {
        assert!((0.0..=1.0).contains(&error_rate), "rate out of range");
        FaultyBackend {
            inner,
            error_rate,
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
            heeds_feedback: false,
        }
    }

    /// Makes the simulated LLM *repair on feedback*: a request that
    /// carries verifier feedback from a failed attempt is answered
    /// correctly. Models an LLM that reliably fixes its output once the
    /// verifier pinpoints the error — the behaviour the paper's feedback
    /// cycle banks on — and enables the E7 feedback ablation.
    pub fn heeding_feedback(mut self) -> FaultyBackend<B> {
        self.heeds_feedback = true;
        self
    }

    /// Number of corruptions injected so far.
    pub fn injected(&self) -> usize {
        self.injected
    }

    fn corrupt(&mut self, text: &str) -> String {
        // Try fault kinds starting from a random one until one applies.
        let start = self.rng.gen_range(0..ALL_FAULTS.len());
        for k in 0..ALL_FAULTS.len() {
            let kind = ALL_FAULTS[(start + k) % ALL_FAULTS.len()];
            if let Some(out) = apply_fault(kind, text) {
                self.injected += 1;
                return out;
            }
        }
        text.to_string()
    }
}

/// Applies one fault kind to IOS text, or `None` if it is inapplicable.
pub(crate) fn apply_fault(kind: FaultKind, text: &str) -> Option<String> {
    match kind {
        FaultKind::OffByOneBound => {
            // Find " le N" and decrement N.
            let idx = text.find(" le ")?;
            let rest = &text[idx + 4..];
            let num: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            let n: u32 = num.parse().ok()?;
            if n == 0 {
                return None;
            }
            Some(format!(
                "{} le {}{}",
                &text[..idx],
                n - 1,
                &rest[num.len()..]
            ))
        }
        FaultKind::WrongSetValue => {
            let idx = text
                .find("set metric ")
                .map(|i| i + 11)
                .or_else(|| text.find("set local-preference ").map(|i| i + 21))?;
            let rest = &text[idx..];
            let num: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            let n: u32 = num.parse().ok()?;
            Some(format!("{}{}{}", &text[..idx], n + 1, &rest[num.len()..]))
        }
        FaultKind::WrongAction => {
            if let Some(idx) = text.find(" permit ") {
                // Only flip route-map / ACL rule actions, not list entries:
                // good enough for fault injection either way.
                Some(format!("{} deny {}", &text[..idx], &text[idx + 8..]))
            } else {
                text.find(" deny ")
                    .map(|idx| format!("{} permit {}", &text[..idx], &text[idx + 6..]))
            }
        }
        FaultKind::SyntaxError => Some(format!("{text}this is not valid IOS syntax\n")),
    }
}

impl<B: Backend> Backend for FaultyBackend<B> {
    fn complete(&mut self, request: &LlmRequest) -> Result<IntentEnvelope, BackendError> {
        let envelope = self.inner.complete(request)?;
        if self.heeds_feedback && request.feedback.is_some() {
            return Ok(envelope);
        }
        match (&request.task, &envelope.payload) {
            (
                TaskKind::SynthesizeRouteMap | TaskKind::SynthesizeAcl,
                crate::envelope::EnvelopePayload::Config { text },
            ) if self.rng.gen::<f64>() < self.error_rate => {
                let corrupted = self.corrupt(text);
                Ok(IntentEnvelope::config(
                    request.task,
                    corrupted,
                    envelope.references.clone(),
                ))
            }
            _ => Ok(envelope),
        }
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}
