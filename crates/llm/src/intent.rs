//! The constrained natural-language intent grammar.
//!
//! Real deployments constrain prompt phrasing through few-shot examples;
//! our simulated LLM makes that constraint explicit: an intent is parsed
//! from English by a deterministic grammar, and every intent renders back
//! to a canonical prompt ([`RouteMapIntent::render_prompt`]) in the same
//! style as the paper's example — parsing is the inverse of rendering,
//! which tests enforce by round-trip.

use std::net::Ipv4Addr;

use clarify_analysis::StanzaSpec;
use clarify_netconfig::{
    AclEntry, Action, AddrMatch, AsPathList, AsPathListEntry, CommunityList, CommunityListEntry,
    Config, PrefixList, PrefixListEntry, RouteMapMatch, RouteMapSet, RouteMapStanza,
};
use clarify_nettypes::{Community, PortRange, Prefix, PrefixRange, Protocol};

/// Why a prompt could not be understood.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntentError {
    /// Description of the unparseable part.
    pub message: String,
}

impl IntentError {
    fn new(message: impl Into<String>) -> Self {
        IntentError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for IntentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for IntentError {}

/// An internal inconsistency between intent *classification* and intent
/// *construction*: the set-clause classifier recognized an attribute
/// keyword that the builder has no constructor for.
///
/// This arm used to be an `unreachable!()`. It is statically dead only
/// while the classifier's keyword list and the builder's match stay in
/// lock-step; a corrupted classification (the fault-injection backend) or
/// ordinary drift between the two makes it live, and a panic there takes
/// down the whole evaluation run. As a structured error it converts into
/// [`IntentError`], so the pipeline reports the request as
/// unsynthesizable and moves on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassifyError {
    /// The classified attribute keyword with no constructor.
    pub field: String,
}

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "classified set attribute '{}' has no constructor; \
             the classification was inconsistent or corrupted",
            self.field
        )
    }
}

impl std::error::Error for ClassifyError {}

impl From<ClassifyError> for IntentError {
    fn from(e: ClassifyError) -> IntentError {
        IntentError::new(e.to_string())
    }
}

/// How a prompt constrains the mask length of a prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefixConstraint {
    /// Only the exact prefix.
    Exact,
    /// `mask length less than or equal to N`.
    Le(u8),
    /// `mask length greater than or equal to N`.
    Ge(u8),
    /// `mask length between N and M`.
    Between(u8, u8),
}

/// One attribute assignment the new stanza should perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetIntent {
    /// Set MED.
    Metric(u32),
    /// Set LOCAL_PREF.
    LocalPref(u32),
    /// Set Cisco weight.
    Weight(u16),
    /// Set the route tag.
    Tag(u32),
    /// Set the next hop.
    NextHop(Ipv4Addr),
    /// Add a community (additive).
    AddCommunity(Community),
}

/// A parsed route-map synthesis intent.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RouteMapIntent {
    /// Permit (true) or deny.
    pub permit: bool,
    /// Matched prefixes with their length constraints.
    pub prefixes: Vec<(Prefix, PrefixConstraint)>,
    /// Communities the route must carry (each matched via `_N:M_`).
    pub communities: Vec<Community>,
    /// Required originating AS (`_N$`).
    pub origin_as: Option<u32>,
    /// Required transit AS anywhere in the path (`_N_`).
    pub transit_as: Option<u32>,
    /// Exact local-preference match.
    pub match_local_pref: Option<u32>,
    /// Exact metric match.
    pub match_metric: Option<u32>,
    /// Exact tag match.
    pub match_tag: Option<u32>,
    /// Attribute assignments.
    pub sets: Vec<SetIntent>,
    /// True when the prompt said "all routes" (empty match section).
    pub match_all: bool,
}

/// Address side of an ACL intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddrIntent {
    /// Any address.
    Any,
    /// One host.
    Host(Ipv4Addr),
    /// A subnet.
    Net(Prefix),
}

impl AddrIntent {
    fn to_match(self) -> AddrMatch {
        match self {
            AddrIntent::Any => AddrMatch::Any,
            AddrIntent::Host(h) => AddrMatch::Host(h),
            AddrIntent::Net(p) => AddrMatch::Net(p),
        }
    }
}

/// A parsed ACL synthesis intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AclIntent {
    /// Permit (true) or deny.
    pub permit: bool,
    /// Protocol to match (`Ip` = any).
    pub protocol: Protocol,
    /// Source address.
    pub src: AddrIntent,
    /// Destination address.
    pub dst: AddrIntent,
    /// Source-port constraint.
    pub src_ports: PortRange,
    /// Destination-port constraint.
    pub dst_ports: PortRange,
}

impl Default for AclIntent {
    fn default() -> Self {
        AclIntent {
            permit: true,
            protocol: Protocol::Ip,
            src: AddrIntent::Any,
            dst: AddrIntent::Any,
            src_ports: PortRange::ANY,
            dst_ports: PortRange::ANY,
        }
    }
}

// ---------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------

/// Lowercases, fuses multi-word keywords, and splits into sentences of
/// tokens.
fn sentences(prompt: &str) -> Vec<Vec<String>> {
    let lower = prompt.to_lowercase();
    let fused = lower
        .replace("local preference", "local-preference")
        .replace("local-preference value", "local-preference")
        .replace("next hop", "next-hop")
        .replace("as path", "as-path")
        .replace("med value", "med");
    // Split into sentences at '.' followed by whitespace or end-of-input;
    // dots inside IP addresses are followed by digits and survive.
    let mut sents: Vec<String> = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = fused.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '.' {
            let next = chars.get(i + 1);
            if next.is_none() || next.map(|n| n.is_whitespace()) == Some(true) {
                sents.push(std::mem::take(&mut cur));
                continue;
            }
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        sents.push(cur);
    }
    sents
        .into_iter()
        .map(|s| {
            s.split_whitespace()
                .map(|t| {
                    t.trim_matches(|c| matches!(c, ',' | ';' | '"' | '(' | ')'))
                        .to_string()
                })
                .filter(|t| !t.is_empty())
                .collect()
        })
        .filter(|v: &Vec<String>| !v.is_empty())
        .collect()
}

fn is_prefix_token(t: &str) -> Option<Prefix> {
    if t.contains('/') {
        t.parse().ok()
    } else {
        None
    }
}

fn is_community_token(t: &str) -> Option<Community> {
    if t.contains(':') {
        t.parse().ok()
    } else {
        None
    }
}

fn is_ip_token(t: &str) -> Option<Ipv4Addr> {
    t.parse().ok()
}

fn num(t: &str) -> Option<u32> {
    t.parse().ok()
}

/// True when the prompt describes packet filtering rather than routing
/// policy — the classifier the pipeline's first LLM call implements.
pub(crate) fn is_acl_prompt(prompt: &str) -> bool {
    let l = prompt.to_lowercase();
    ["packet", "access-list", "access list", "acl", "traffic"]
        .iter()
        .any(|k| l.contains(k))
}

fn parse_action(tokens: &[String]) -> Option<bool> {
    for t in tokens {
        match t.as_str() {
            "permits" | "permit" | "allows" | "allow" | "accepts" | "accept" => return Some(true),
            "denies" | "deny" | "blocks" | "block" | "rejects" | "reject" | "drops" | "drop" => {
                return Some(false)
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------
// Route-map intent
// ---------------------------------------------------------------------

impl RouteMapIntent {
    /// Parses a route-map synthesis prompt written in the canonical
    /// constrained English (see [`RouteMapIntent::render_prompt`]).
    pub fn parse(prompt: &str) -> Result<RouteMapIntent, IntentError> {
        let sents = sentences(prompt);
        if sents.is_empty() {
            return Err(IntentError::new("empty prompt"));
        }
        let mut intent = RouteMapIntent::default();
        let mut action: Option<bool> = None;

        for tokens in &sents {
            let is_set_sentence = tokens.iter().any(|t| t == "set" || t == "setting")
                || tokens.iter().any(|t| t == "added" || t == "add");
            if action.is_none() {
                action = parse_action(tokens);
            }
            if is_set_sentence {
                Self::parse_sets(tokens, &mut intent)?;
            } else {
                Self::parse_matches(tokens, &mut intent)?;
            }
        }

        intent.permit =
            action.ok_or_else(|| IntentError::new("no permit/deny action in the prompt"))?;
        let empty_match = intent.prefixes.is_empty()
            && intent.communities.is_empty()
            && intent.origin_as.is_none()
            && intent.transit_as.is_none()
            && intent.match_local_pref.is_none()
            && intent.match_metric.is_none()
            && intent.match_tag.is_none();
        if empty_match && !intent.match_all {
            return Err(IntentError::new(
                "no match condition recognized (say 'all routes' for an unconditional stanza)",
            ));
        }
        Ok(intent)
    }

    fn parse_matches(tokens: &[String], intent: &mut RouteMapIntent) -> Result<(), IntentError> {
        // "all routes"
        for w in tokens.windows(2) {
            if w[0] == "all" && w[1] == "routes" {
                intent.match_all = true;
            }
        }
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(p) = is_prefix_token(t) {
                let constraint = Self::length_constraint(&tokens[i + 1..], p)?;
                intent.prefixes.push((p, constraint));
            } else if let Some(c) = is_community_token(t) {
                intent.communities.push(c);
            } else if t == "as" || t == "asn" {
                if let Some(n) = tokens.get(i + 1).and_then(|t| num(t)) {
                    // Look backwards for the verb.
                    let back: Vec<&str> = tokens[..i]
                        .iter()
                        .rev()
                        .take(4)
                        .map(|s| s.as_str())
                        .collect();
                    if back
                        .iter()
                        .any(|&w| w == "originating" || w == "originated" || w == "origin")
                    {
                        intent.origin_as = Some(n);
                    } else if back
                        .iter()
                        .any(|&w| w == "through" || w == "via" || w == "transiting")
                    {
                        intent.transit_as = Some(n);
                    } else {
                        return Err(IntentError::new(format!(
                            "AS {n} mentioned without 'originating from' or 'passing through'"
                        )));
                    }
                    i += 1;
                }
            } else if t == "local-preference" {
                if let Some(n) = next_number(&tokens[i + 1..]) {
                    intent.match_local_pref = Some(n);
                }
            } else if t == "metric" || t == "med" {
                if let Some(n) = next_number(&tokens[i + 1..]) {
                    intent.match_metric = Some(n);
                }
            } else if t == "tag" {
                if let Some(n) = next_number(&tokens[i + 1..]) {
                    intent.match_tag = Some(n);
                }
            }
            i += 1;
        }
        Ok(())
    }

    /// Parses the words after a prefix for a mask-length constraint.
    fn length_constraint(rest: &[String], p: Prefix) -> Result<PrefixConstraint, IntentError> {
        // Stop scanning at the next prefix token (a second clause).
        let window: Vec<&str> = rest
            .iter()
            .take_while(|t| is_prefix_token(t).is_none())
            .take(14)
            .map(|s| s.as_str())
            .collect();
        let joined = window.join(" ");
        if !joined.contains("mask length") && !joined.contains("or longer") {
            return Ok(PrefixConstraint::Exact);
        }
        if joined.contains("or longer") {
            return Ok(PrefixConstraint::Ge(p.len()));
        }
        let nums: Vec<u8> = window.iter().filter_map(|t| t.parse::<u8>().ok()).collect();
        if joined.contains("between") {
            if nums.len() >= 2 {
                return Ok(PrefixConstraint::Between(nums[0], nums[1]));
            }
            return Err(IntentError::new(
                "mask length between N and M: missing bounds",
            ));
        }
        if joined.contains("less than or equal to") || joined.contains("at most") {
            if let Some(&n) = nums.first() {
                return Ok(PrefixConstraint::Le(n));
            }
        }
        if joined.contains("greater than or equal to") || joined.contains("at least") {
            if let Some(&n) = nums.first() {
                return Ok(PrefixConstraint::Ge(n));
            }
        }
        if joined.contains("exactly") {
            if let Some(&n) = nums.first() {
                return Ok(PrefixConstraint::Between(n, n));
            }
        }
        Err(IntentError::new(format!(
            "unrecognized mask length constraint after {p}"
        )))
    }

    fn parse_sets(tokens: &[String], intent: &mut RouteMapIntent) -> Result<(), IntentError> {
        // "the community N:M should be added" / "add the community N:M"
        if tokens.iter().any(|t| t == "added" || t == "add") {
            for t in tokens {
                if let Some(c) = is_community_token(t) {
                    intent.sets.push(SetIntent::AddCommunity(c));
                }
            }
        }
        let has_set = tokens.iter().any(|t| t == "set" || t == "setting");
        if !has_set {
            return Ok(());
        }
        // Field keyword anywhere in the sentence; value after "to".
        let field = tokens.iter().find_map(|t| match t.as_str() {
            "med" | "metric" => Some("metric"),
            "local-preference" => Some("local-preference"),
            "weight" => Some("weight"),
            "tag" => Some("tag"),
            "next-hop" => Some("next-hop"),
            _ => None,
        });
        let Some(field) = field else {
            return Err(IntentError::new("'set' without a recognizable attribute"));
        };
        if field == "next-hop" {
            let ip = tokens
                .iter()
                .filter(|t| !t.contains('/'))
                .find_map(|t| is_ip_token(t))
                .ok_or_else(|| IntentError::new("set next-hop without an address"))?;
            intent.sets.push(SetIntent::NextHop(ip));
            return Ok(());
        }
        let to_pos = tokens
            .iter()
            .position(|t| t == "to")
            .ok_or_else(|| IntentError::new(format!("set {field} without 'to <value>'")))?;
        let value = next_number(&tokens[to_pos + 1..])
            .ok_or_else(|| IntentError::new(format!("set {field} without a numeric value")))?;
        intent.sets.push(Self::build_set(field, value)?);
        Ok(())
    }

    /// Builds the set clause for a classified attribute keyword.
    ///
    /// Total over its input: a keyword the classifier emitted but this
    /// builder does not know is a [`ClassifyError`], not a panic — the
    /// pipeline punts on the request instead of crashing.
    pub(crate) fn build_set(field: &str, value: u32) -> Result<SetIntent, IntentError> {
        Ok(match field {
            "metric" => SetIntent::Metric(value),
            "local-preference" => SetIntent::LocalPref(value),
            "weight" => {
                let w = u16::try_from(value)
                    .map_err(|_| IntentError::new(format!("weight {value} exceeds 65535")))?;
                SetIntent::Weight(w)
            }
            "tag" => SetIntent::Tag(value),
            other => {
                return Err(ClassifyError {
                    field: other.to_string(),
                }
                .into())
            }
        })
    }

    /// Renders the canonical prompt, the inverse of [`RouteMapIntent::parse`].
    ///
    /// Example output (matching the paper's §2.1 prompt):
    /// `Write a route-map stanza that permits routes containing the prefix
    /// 100.0.0.0/16 with mask length less than or equal to 23 and tagged
    /// with the community 300:3. Their MED value should be set to 55.`
    pub fn render_prompt(&self) -> String {
        let mut clauses: Vec<String> = Vec::new();
        for (p, c) in &self.prefixes {
            let mut s = format!("containing the prefix {p}");
            match c {
                PrefixConstraint::Exact => {}
                PrefixConstraint::Le(n) => {
                    s.push_str(&format!(" with mask length less than or equal to {n}"))
                }
                PrefixConstraint::Ge(n) if *n == p.len() => s.push_str(" or longer"),
                PrefixConstraint::Ge(n) => {
                    s.push_str(&format!(" with mask length greater than or equal to {n}"))
                }
                PrefixConstraint::Between(a, b) if a == b => {
                    s.push_str(&format!(" with mask length exactly {a}"))
                }
                PrefixConstraint::Between(a, b) => {
                    s.push_str(&format!(" with mask length between {a} and {b}"))
                }
            }
            clauses.push(s);
        }
        for c in &self.communities {
            clauses.push(format!("tagged with the community {c}"));
        }
        if let Some(n) = self.origin_as {
            clauses.push(format!("originating from AS {n}"));
        }
        if let Some(n) = self.transit_as {
            clauses.push(format!("passing through AS {n}"));
        }
        if let Some(n) = self.match_local_pref {
            clauses.push(format!("with local preference {n}"));
        }
        if let Some(n) = self.match_metric {
            clauses.push(format!("with metric {n}"));
        }
        if let Some(n) = self.match_tag {
            clauses.push(format!("with tag {n}"));
        }
        let action = if self.permit { "permits" } else { "denies" };
        let mut out = if clauses.is_empty() {
            format!("Write a route-map stanza that {action} all routes")
        } else {
            format!(
                "Write a route-map stanza that {action} routes {}",
                clauses.join(" and ")
            )
        };
        out.push('.');
        for s in &self.sets {
            let sentence = match s {
                SetIntent::Metric(v) => format!(" Their MED value should be set to {v}."),
                SetIntent::LocalPref(v) => {
                    format!(" Their local preference should be set to {v}.")
                }
                SetIntent::Weight(v) => format!(" Their weight should be set to {v}."),
                SetIntent::Tag(v) => format!(" Their tag should be set to {v}."),
                SetIntent::NextHop(ip) => format!(" Their next hop should be set to {ip}."),
                SetIntent::AddCommunity(c) => format!(" The community {c} should be added."),
            };
            out.push_str(&sentence);
        }
        out
    }

    fn prefix_ranges(&self) -> Result<Vec<PrefixRange>, IntentError> {
        self.prefixes
            .iter()
            .map(|(p, c)| {
                let (ge, le) = match c {
                    PrefixConstraint::Exact => (None, None),
                    PrefixConstraint::Le(n) => (None, Some(*n)),
                    PrefixConstraint::Ge(n) => (Some(*n), None),
                    PrefixConstraint::Between(a, b) => (Some(*a), Some(*b)),
                };
                PrefixRange::with_bounds(*p, ge, le).map_err(|e| IntentError::new(e.message))
            })
            .collect()
    }

    /// Synthesizes the snippet configuration the (perfect) LLM emits: one
    /// route-map with one stanza plus its ancillary lists, using the
    /// paper's naming style (`COM_LIST`, `PREFIX_100`, `SET_METRIC`).
    pub fn to_snippet(&self) -> Result<(Config, String), IntentError> {
        let mut cfg = Config::new();
        let mut matches: Vec<RouteMapMatch> = Vec::new();

        let ranges = self.prefix_ranges()?;
        if !ranges.is_empty() {
            let name = format!("PREFIX_{}", self.prefixes[0].0.addr().octets()[0]);
            let pl = PrefixList {
                name: name.clone(),
                entries: ranges
                    .iter()
                    .enumerate()
                    .map(|(i, r)| PrefixListEntry {
                        seq: (i as u32 + 1) * 10,
                        action: Action::Permit,
                        range: *r,
                    })
                    .collect(),
            };
            cfg.prefix_lists.insert(name.clone(), pl);
            matches.push(RouteMapMatch::PrefixList(vec![name]));
        }
        // One list (and one match clause) per community: "tagged with A and
        // B" means the route carries both, and distinct match clauses AND
        // together while names within one clause OR.
        for (k, c) in self.communities.iter().enumerate() {
            let name = if k == 0 {
                "COM_LIST".to_string()
            } else {
                format!("COM_LIST{}", k + 1)
            };
            let cl = CommunityList {
                name: name.clone(),
                entries: vec![CommunityListEntry {
                    action: Action::Permit,
                    regex: clarify_automata::Regex::parse(&format!("_{c}_"))
                        .expect("community pattern is valid"),
                }],
            };
            cfg.community_lists.insert(name.clone(), cl);
            matches.push(RouteMapMatch::Community(vec![name]));
        }
        let mut path_patterns: Vec<String> = Vec::new();
        if let Some(n) = self.origin_as {
            path_patterns.push(format!("_{n}$"));
        }
        if let Some(n) = self.transit_as {
            path_patterns.push(format!("_{n}_"));
        }
        if !path_patterns.is_empty() {
            let name = "AS_LIST".to_string();
            let al = AsPathList {
                name: name.clone(),
                entries: path_patterns
                    .iter()
                    .map(|p| AsPathListEntry {
                        action: Action::Permit,
                        regex: clarify_automata::Regex::parse(p).expect("as-path pattern is valid"),
                    })
                    .collect(),
            };
            cfg.as_path_lists.insert(name.clone(), al);
            matches.push(RouteMapMatch::AsPath(vec![name]));
        }
        if let Some(v) = self.match_local_pref {
            matches.push(RouteMapMatch::LocalPref(v));
        }
        if let Some(v) = self.match_metric {
            matches.push(RouteMapMatch::Metric(v));
        }
        if let Some(v) = self.match_tag {
            matches.push(RouteMapMatch::Tag(v));
        }

        let mut sets: Vec<RouteMapSet> = Vec::new();
        let mut added: Vec<Community> = Vec::new();
        for s in &self.sets {
            match s {
                SetIntent::Metric(v) => sets.push(RouteMapSet::Metric(*v)),
                SetIntent::LocalPref(v) => sets.push(RouteMapSet::LocalPref(*v)),
                SetIntent::Weight(v) => sets.push(RouteMapSet::Weight(*v)),
                SetIntent::Tag(v) => sets.push(RouteMapSet::Tag(*v)),
                SetIntent::NextHop(ip) => sets.push(RouteMapSet::NextHop(*ip)),
                SetIntent::AddCommunity(c) => added.push(*c),
            }
        }
        if !added.is_empty() {
            sets.push(RouteMapSet::CommunityAdd(added));
        }

        let map_name = self.map_name();
        let stanza = RouteMapStanza {
            seq: 10,
            action: if self.permit {
                Action::Permit
            } else {
                Action::Deny
            },
            matches,
            sets,
        };
        cfg.route_maps.insert(
            map_name.clone(),
            clarify_netconfig::RouteMap {
                name: map_name.clone(),
                stanzas: vec![stanza],
            },
        );
        Ok((cfg, map_name))
    }

    /// The route-map name the synthesizer chooses, in the paper's style.
    pub fn map_name(&self) -> String {
        if let Some(s) = self.sets.first() {
            return match s {
                SetIntent::Metric(_) => "SET_METRIC".to_string(),
                SetIntent::LocalPref(_) => "SET_LOCALPREF".to_string(),
                SetIntent::Weight(_) => "SET_WEIGHT".to_string(),
                SetIntent::Tag(_) => "SET_TAG".to_string(),
                SetIntent::NextHop(_) => "SET_NEXTHOP".to_string(),
                SetIntent::AddCommunity(_) => "ADD_COMMUNITY".to_string(),
            };
        }
        if self.permit {
            "PERMIT_ROUTES".to_string()
        } else {
            "DENY_ROUTES".to_string()
        }
    }

    /// The machine-readable spec the extractor emits for this intent.
    pub fn to_spec(&self) -> Result<StanzaSpec, IntentError> {
        let mut sets: Vec<RouteMapSet> = Vec::new();
        let mut added: Vec<Community> = Vec::new();
        for s in &self.sets {
            match s {
                SetIntent::Metric(v) => sets.push(RouteMapSet::Metric(*v)),
                SetIntent::LocalPref(v) => sets.push(RouteMapSet::LocalPref(*v)),
                SetIntent::Weight(v) => sets.push(RouteMapSet::Weight(*v)),
                SetIntent::Tag(v) => sets.push(RouteMapSet::Tag(*v)),
                SetIntent::NextHop(ip) => sets.push(RouteMapSet::NextHop(*ip)),
                SetIntent::AddCommunity(c) => added.push(*c),
            }
        }
        if !added.is_empty() {
            sets.push(RouteMapSet::CommunityAdd(added));
        }
        let mut as_paths = Vec::new();
        if let Some(n) = self.origin_as {
            as_paths.push(format!("_{n}$"));
        }
        if let Some(n) = self.transit_as {
            as_paths.push(format!("_{n}_"));
        }
        Ok(StanzaSpec {
            permit: self.permit,
            prefixes: self.prefix_ranges()?,
            communities: self.communities.iter().map(|c| format!("_{c}_")).collect(),
            as_paths,
            local_pref: self.match_local_pref,
            metric: self.match_metric,
            tag: self.match_tag,
            sets,
        })
    }
}

fn next_number(rest: &[String]) -> Option<u32> {
    rest.iter().take(4).find_map(|t| num(t))
}

// ---------------------------------------------------------------------
// ACL intent
// ---------------------------------------------------------------------

impl AclIntent {
    /// Parses an ACL synthesis prompt.
    pub fn parse(prompt: &str) -> Result<AclIntent, IntentError> {
        let sents = sentences(prompt);
        let tokens: Vec<String> = sents.into_iter().flatten().collect();
        if tokens.is_empty() {
            return Err(IntentError::new("empty prompt"));
        }
        let mut intent = AclIntent {
            permit: parse_action(&tokens)
                .ok_or_else(|| IntentError::new("no permit/deny action in the prompt"))?,
            ..Default::default()
        };
        for t in &tokens {
            match t.as_str() {
                "tcp" => intent.protocol = Protocol::Tcp,
                "udp" => intent.protocol = Protocol::Udp,
                "icmp" => intent.protocol = Protocol::Icmp,
                _ => {}
            }
        }
        let mut i = 0;
        while i < tokens.len() {
            match tokens[i].as_str() {
                "from" => {
                    let (a, used) = Self::parse_addr(&tokens[i + 1..])?;
                    intent.src = a;
                    i += used;
                }
                "to" if i + 1 < tokens.len() && tokens[i + 1] != "port" => {
                    // A "to" inside "ports 80 to 443" never reaches here:
                    // parse_ports consumes the whole range. Anything else
                    // after "to" must be an address; a typo becoming a
                    // silent `any` would be a permissive filter.
                    let (a, used) = Self::parse_addr(&tokens[i + 1..])?;
                    intent.dst = a;
                    i += used;
                }
                "source" | "destination"
                    if tokens.get(i + 1).map(|t| t.starts_with("port")) == Some(true) =>
                {
                    let (range, used) = Self::parse_ports(&tokens[i + 2..])?;
                    if tokens[i] == "source" {
                        intent.src_ports = range;
                    } else {
                        intent.dst_ports = range;
                    }
                    i += 1 + used;
                }
                _ => {}
            }
            i += 1;
        }
        if intent.protocol == Protocol::Icmp
            && (!intent.src_ports.is_any() || !intent.dst_ports.is_any())
        {
            return Err(IntentError::new("ICMP rules cannot constrain ports"));
        }
        Ok(intent)
    }

    fn parse_addr(rest: &[String]) -> Result<(AddrIntent, usize), IntentError> {
        match rest.first().map(|s| s.as_str()) {
            Some("any") => Ok((AddrIntent::Any, 1)),
            Some("host") => {
                let ip = rest
                    .get(1)
                    .and_then(|t| is_ip_token(t))
                    .ok_or_else(|| IntentError::new("'host' without an address"))?;
                Ok((AddrIntent::Host(ip), 2))
            }
            Some("the") if rest.get(1).map(|s| s.as_str()) == Some("subnet") => {
                let p = rest
                    .get(2)
                    .and_then(|t| is_prefix_token(t))
                    .ok_or_else(|| IntentError::new("'the subnet' without a prefix"))?;
                Ok((AddrIntent::Net(p), 3))
            }
            Some(t) => {
                if let Some(p) = is_prefix_token(t) {
                    Ok((AddrIntent::Net(p), 1))
                } else if let Some(ip) = is_ip_token(t) {
                    Ok((AddrIntent::Host(ip), 1))
                } else {
                    Err(IntentError::new(format!("unrecognized address '{t}'")))
                }
            }
            None => Err(IntentError::new("missing address after from/to")),
        }
    }

    fn parse_ports(rest: &[String]) -> Result<(PortRange, usize), IntentError> {
        let lo = rest
            .first()
            .and_then(|t| t.parse::<u16>().ok())
            .ok_or_else(|| IntentError::new("port without a number"))?;
        if rest.get(1).map(|s| s.as_str()) == Some("to") {
            let hi = rest
                .get(2)
                .and_then(|t| t.parse::<u16>().ok())
                .ok_or_else(|| IntentError::new("port range without an upper bound"))?;
            if lo > hi {
                return Err(IntentError::new("inverted port range"));
            }
            Ok((PortRange::new(lo, hi), 3))
        } else {
            Ok((PortRange::eq(lo), 1))
        }
    }

    /// Renders the canonical ACL prompt.
    pub fn render_prompt(&self) -> String {
        let action = if self.permit { "permits" } else { "denies" };
        let proto = match self.protocol {
            Protocol::Ip => "".to_string(),
            p => format!("{p} "),
        };
        let addr = |a: &AddrIntent| match a {
            AddrIntent::Any => "any".to_string(),
            AddrIntent::Host(ip) => format!("host {ip}"),
            AddrIntent::Net(p) => format!("the subnet {p}"),
        };
        let mut out = format!(
            "Write an access-list rule that {action} {proto}packets from {} to {}",
            addr(&self.src),
            addr(&self.dst)
        );
        let mut port_clauses = Vec::new();
        if !self.src_ports.is_any() {
            port_clauses.push(if self.src_ports.lo == self.src_ports.hi {
                format!("source port {}", self.src_ports.lo)
            } else {
                format!(
                    "source ports {} to {}",
                    self.src_ports.lo, self.src_ports.hi
                )
            });
        }
        if !self.dst_ports.is_any() {
            port_clauses.push(if self.dst_ports.lo == self.dst_ports.hi {
                format!("destination port {}", self.dst_ports.lo)
            } else {
                format!(
                    "destination ports {} to {}",
                    self.dst_ports.lo, self.dst_ports.hi
                )
            });
        }
        if !port_clauses.is_empty() {
            out.push_str(&format!(" with {}", port_clauses.join(" and ")));
        }
        out.push('.');
        out
    }

    /// The ACL entry the (perfect) LLM synthesizes for this intent.
    pub fn to_entry(&self) -> AclEntry {
        AclEntry {
            action: if self.permit {
                Action::Permit
            } else {
                Action::Deny
            },
            protocol: self.protocol,
            src: self.src.to_match(),
            src_ports: self.src_ports,
            dst: self.dst.to_match(),
            dst_ports: self.dst_ports,
        }
    }
}
